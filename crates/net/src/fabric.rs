//! The in-process message fabric: named nodes, seeded fault injection,
//! optional wire latency, per-node metrics.

use crate::envelope::{Envelope, MessageId, NodeId};
use crate::fault::{
    ChaosTarget, FaultAction, FaultPolicy, FaultSchedule, LatencyModel, LinkOverride,
};
use crate::metrics::{MetricsSnapshot, NodeCounters, EPHEMERAL_AGGREGATE};
use crate::transport::{
    ConnectError, Endpoint, Inbox, Mailbox, RawEndpoint, RecvError, ReplyDemux, SendError,
    Transport, TransportHandle,
};
use crossbeam::channel;
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfserv_xml::Element;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Static configuration of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Default link latency.
    pub latency: LatencyModel,
    /// Default message-loss probability (0.0 – 1.0).
    pub drop_probability: f64,
    /// RNG seed driving jitter and loss, for reproducible experiments.
    pub seed: u64,
}

impl NetworkConfig {
    /// Zero-latency, lossless fabric: measures pure software overhead.
    pub fn instant() -> Self {
        NetworkConfig {
            latency: LatencyModel::Instant,
            drop_probability: 0.0,
            seed: 42,
        }
    }

    /// LAN-like: 0.2–1 ms latency, lossless.
    pub fn lan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Uniform(Duration::from_micros(200), Duration::from_millis(1)),
            drop_probability: 0.0,
            seed: 42,
        }
    }

    /// WAN-like: 5–25 ms latency, lossless. The original demo ran service
    /// providers across the Internet; this is the shape the travel-scenario
    /// walkthrough uses.
    pub fn wan() -> Self {
        NetworkConfig {
            latency: LatencyModel::Uniform(Duration::from_millis(5), Duration::from_millis(25)),
            drop_probability: 0.0,
            seed: 42,
        }
    }

    /// Builder: replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replaces the loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }
}

struct Scheduled {
    deliver_at: Instant,
    envelope: Envelope,
    size: usize,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on delivery time.
        other.deliver_at.cmp(&self.deliver_at)
    }
}

#[derive(Default)]
struct DeliveryQueue {
    heap: Mutex<BinaryHeap<Scheduled>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

struct Inner {
    cfg: NetworkConfig,
    /// Live delivery targets (mailbox + rpc reply demultiplexer per node).
    nodes: RwLock<HashMap<NodeId, Inbox>>,
    /// Counters persist even after a node disconnects so post-run snapshots
    /// see the whole experiment.
    counters: RwLock<HashMap<NodeId, Arc<NodeCounters>>>,
    fault: RwLock<FaultPolicy>,
    /// Installed chaos schedule, consulted on every dispatch after the
    /// static fault policy.
    chaos: RwLock<Option<Arc<FaultSchedule>>>,
    rng: Mutex<StdRng>,
    next_msg: AtomicU64,
    next_anon: AtomicU64,
    /// Replies discarded as stale (late/duplicate) across all nodes.
    stale_replies: Arc<AtomicU64>,
    delivery: Arc<DeliveryQueue>,
    /// Whether the delivery thread exists. Spawned eagerly for non-instant
    /// latency models, lazily when a chaos schedule (whose delay/reorder/
    /// duplicate actions need the heap) is installed on an instant fabric.
    delivery_started: AtomicBool,
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.delivery.shutdown.store(true, Ordering::SeqCst);
        self.delivery.cv.notify_all();
    }
}

/// An in-process message fabric. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
}

impl Network {
    /// Creates a fabric with the given configuration. If the latency model
    /// is not instant, a delivery thread is spawned; it exits automatically
    /// when the last [`Network`] handle is dropped.
    pub fn new(cfg: NetworkConfig) -> Self {
        let mut fault = FaultPolicy::default();
        fault.drop_probability = cfg.drop_probability;
        let inner = Arc::new(Inner {
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            cfg,
            nodes: RwLock::new(HashMap::new()),
            counters: RwLock::new(HashMap::new()),
            fault: RwLock::new(fault),
            chaos: RwLock::new(None),
            next_msg: AtomicU64::new(1),
            next_anon: AtomicU64::new(1),
            stale_replies: Arc::new(AtomicU64::new(0)),
            delivery: Arc::new(DeliveryQueue::default()),
            delivery_started: AtomicBool::new(false),
        });
        let net = Network { inner };
        if !net.inner.cfg.latency.is_instant() {
            net.ensure_delivery_thread();
        }
        net
    }

    /// Connects a named node, returning its endpoint. Fails if the name is
    /// already connected. Names containing `~` are reserved for
    /// transport-generated ephemeral endpoints and are rejected (their
    /// counters are pruned on drop, which would silently lose a real
    /// node's metrics).
    pub fn connect(&self, name: impl Into<NodeId>) -> Result<Endpoint, ConnectError> {
        let node = name.into();
        if node.as_str().contains('~') {
            return Err(ConnectError::ReservedName(node));
        }
        self.connect_node(node)
    }

    fn connect_node(&self, node: NodeId) -> Result<Endpoint, ConnectError> {
        let (tx, rx) = channel::unbounded();
        let demux = ReplyDemux::new(Arc::clone(&self.inner.stale_replies));
        {
            let mut nodes = self.inner.nodes.write();
            if nodes.contains_key(&node) {
                return Err(ConnectError::NameTaken(node));
            }
            nodes.insert(node.clone(), Inbox::new(tx, Arc::clone(&demux)));
        }
        self.inner
            .counters
            .write()
            .entry(node.clone())
            .or_insert_with(|| Arc::new(NodeCounters::default()));
        let raw = FabricEndpoint {
            node,
            net: self.clone(),
            mailbox: Mailbox::new(rx),
        };
        Ok(Endpoint::from_raw(
            Box::new(raw),
            TransportHandle::new(self.clone()),
            demux,
        ))
    }

    /// Connects a node with a generated unique name beginning with `prefix`
    /// (auxiliary identities: demo clients, control senders — the rpc path
    /// no longer creates ephemeral endpoints).
    pub fn connect_anonymous(&self, prefix: &str) -> Endpoint {
        loop {
            let n = self.inner.next_anon.fetch_add(1, Ordering::Relaxed);
            if let Ok(ep) = self.connect_node(NodeId::new(format!("{prefix}~{n}"))) {
                return ep;
            }
        }
    }

    /// True when a node of this name is currently connected.
    pub fn is_connected(&self, name: &str) -> bool {
        self.inner.nodes.read().contains_key(&NodeId::new(name))
    }

    /// Names of all currently connected nodes, sorted.
    pub fn node_names(&self) -> Vec<NodeId> {
        let mut names: Vec<NodeId> = self.inner.nodes.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of all per-node counters (including disconnected nodes).
    pub fn metrics(&self) -> MetricsSnapshot {
        let counters = self.inner.counters.read();
        MetricsSnapshot::collect(counters.iter().map(|(k, v)| (k, v.as_ref())))
    }

    /// Resets all counters to zero.
    pub fn reset_metrics(&self) {
        for c in self.inner.counters.read().values() {
            c.reset();
        }
    }

    /// Kills a node: all traffic to and from it is dropped until
    /// [`Network::revive`].
    pub fn kill(&self, node: &NodeId) {
        self.inner.fault.write().kill(node);
    }

    /// Revives a killed node.
    pub fn revive(&self, node: &NodeId) {
        self.inner.fault.write().revive(node);
    }

    /// True when the node is currently killed.
    pub fn is_dead(&self, node: &NodeId) -> bool {
        self.inner.fault.read().is_dead(node)
    }

    /// Partitions two nodes (both directions).
    pub fn partition(&self, a: &NodeId, b: &NodeId) {
        self.inner.fault.write().partition(a, b);
    }

    /// Heals a partition.
    pub fn heal(&self, a: &NodeId, b: &NodeId) {
        self.inner.fault.write().heal(a, b);
    }

    /// Heals all partitions.
    pub fn heal_all(&self) {
        self.inner.fault.write().heal_all();
    }

    /// Sets the fabric-wide drop probability.
    pub fn set_drop_probability(&self, p: f64) {
        self.inner.fault.write().drop_probability = p;
    }

    /// Overrides latency/loss on one directed link.
    pub fn set_link(&self, from: &NodeId, to: &NodeId, link: LinkOverride) {
        self.inner.fault.write().set_link(from, to, link);
    }

    /// Installs a chaos schedule: every subsequent dispatch consults it
    /// (after the static [`FaultPolicy`]) and applies the sampled action —
    /// drop, delay, duplicate, or reorder. Timed node events on the
    /// schedule are *not* applied here; drive them with a
    /// [`crate::ChaosController`] targeting this network.
    pub fn install_chaos(&self, schedule: Arc<FaultSchedule>) {
        // Delay/reorder/duplicate actions ride the delivery heap, which an
        // instant-latency fabric never started.
        self.ensure_delivery_thread();
        *self.inner.chaos.write() = Some(schedule);
    }

    /// Removes the installed chaos schedule; traffic flows normally again.
    pub fn clear_chaos(&self) {
        *self.inner.chaos.write() = None;
    }

    fn ensure_delivery_thread(&self) {
        if !self.inner.delivery_started.swap(true, Ordering::SeqCst) {
            spawn_delivery_thread(
                Arc::downgrade(&self.inner),
                Arc::clone(&self.inner.delivery),
            );
        }
    }

    fn next_message_id(&self) -> MessageId {
        MessageId(self.inner.next_msg.fetch_add(1, Ordering::Relaxed))
    }

    fn counters_for(&self, node: &NodeId) -> Arc<NodeCounters> {
        let counters = self.inner.counters.read();
        if let Some(c) = counters.get(node) {
            return Arc::clone(c);
        }
        drop(counters);
        Arc::clone(
            self.inner
                .counters
                .write()
                .entry(node.clone())
                .or_insert_with(|| Arc::new(NodeCounters::default())),
        )
    }

    fn dispatch(&self, envelope: Envelope) -> Result<MessageId, SendError> {
        let id = envelope.id;
        let from = envelope.from.clone();
        let to = envelope.to.clone();
        let size = envelope.wire_size();

        if !self.inner.nodes.read().contains_key(&to) {
            return Err(SendError::UnknownNode(to));
        }
        {
            let fault = self.inner.fault.read();
            if fault.is_dead(&from) {
                return Err(SendError::SenderDead(from));
            }
            self.counters_for(&from).record_send(size);
            if fault.is_blocked(&from, &to) {
                self.counters_for(&to).record_drop();
                return Ok(id);
            }
            let p = fault.effective_drop(&from, &to);
            if p > 0.0 && self.inner.rng.lock().gen::<f64>() < p {
                self.counters_for(&to).record_drop();
                return Ok(id);
            }
        }
        // The chaos schedule sees the message after the static policy let
        // it through. Delay and reorder both become heap entries; a
        // duplicate schedules its copy and falls through so the original
        // takes the normal path.
        let chaos_action = self
            .inner
            .chaos
            .read()
            .as_ref()
            .map(|s| s.decide(&from, &to, &envelope.kind));
        match chaos_action {
            Some(FaultAction::Drop) => {
                self.counters_for(&to).record_drop();
                return Ok(id);
            }
            Some(FaultAction::Delay(d)) | Some(FaultAction::Reorder(d)) => {
                self.schedule_delayed(envelope, size, d);
                return Ok(id);
            }
            Some(FaultAction::Duplicate(d)) => {
                self.schedule_delayed(envelope.clone(), size, d);
            }
            Some(FaultAction::Deliver) | None => {}
        }
        let latency = {
            let fault = self.inner.fault.read();
            fault
                .link(&from, &to)
                .and_then(|l| l.latency)
                .unwrap_or(self.inner.cfg.latency)
        };
        let delay = latency.sample(&mut *self.inner.rng.lock());
        if delay.is_zero() {
            self.deliver_now(envelope, size);
        } else {
            self.schedule_delayed(envelope, size, delay);
        }
        Ok(id)
    }

    fn schedule_delayed(&self, envelope: Envelope, size: usize, delay: Duration) {
        let mut heap = self.inner.delivery.heap.lock();
        heap.push(Scheduled {
            deliver_at: Instant::now() + delay,
            envelope,
            size,
        });
        self.inner.delivery.cv.notify_one();
    }

    fn deliver_now(&self, envelope: Envelope, size: usize) {
        let to = envelope.to.clone();
        // Re-check death at delivery time: a node killed while the message
        // was in flight never sees it.
        if self.inner.fault.read().is_dead(&to) {
            self.delivery_counters_for(&to).record_drop();
            return;
        }
        // Hold the nodes lock across record + deliver: endpoint Drop needs
        // the write lock to deregister, so while we hold the read lock the
        // inbox cannot disappear (the delivery is infallible) and the
        // receiver cannot consume the message, disconnect, and fold its
        // ephemeral counters before the receive is recorded.
        let nodes = self.inner.nodes.read();
        match nodes.get(&to) {
            Some(inbox) => {
                self.counters_for(&to).record_receive(size);
                let _ = inbox.deliver(envelope);
            }
            None => {
                drop(nodes);
                self.delivery_counters_for(&to).record_drop();
            }
        }
    }

    /// Counters slot to charge a delivery-time drop to. Ephemeral (`~`)
    /// nodes whose entry was already folded away must not be resurrected
    /// (a late message to a dropped `~` client endpoint would otherwise
    /// leak a permanent counters entry per occurrence); their drops go to
    /// the aggregate slot instead.
    fn delivery_counters_for(&self, node: &NodeId) -> Arc<NodeCounters> {
        if node.as_str().contains('~') && !self.inner.counters.read().contains_key(node) {
            return self.counters_for(&NodeId::new(EPHEMERAL_AGGREGATE));
        }
        self.counters_for(node)
    }
}

fn spawn_delivery_thread(inner: Weak<Inner>, queue: Arc<DeliveryQueue>) {
    std::thread::Builder::new()
        .name("selfserv-net-delivery".to_string())
        .spawn(move || loop {
            if queue.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let due: Option<(Envelope, usize)> = {
                let mut heap = queue.heap.lock();
                loop {
                    if queue.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match heap.peek() {
                        None => {
                            // Periodic wake so the thread notices a fully
                            // dropped Network even without traffic.
                            queue.cv.wait_for(&mut heap, Duration::from_millis(200));
                            if inner.upgrade().is_none() {
                                return;
                            }
                        }
                        Some(top) => {
                            let now = Instant::now();
                            if top.deliver_at <= now {
                                let s = heap.pop().expect("peeked");
                                break Some((s.envelope, s.size));
                            }
                            let wait = top.deliver_at - now;
                            queue.cv.wait_for(&mut heap, wait);
                        }
                    }
                }
            };
            if let Some((envelope, size)) = due {
                match inner.upgrade() {
                    Some(strong) => Network { inner: strong }.deliver_now(envelope, size),
                    None => return,
                }
            }
        })
        .expect("spawn delivery thread");
}

/// The fabric's raw endpoint: a registered mailbox plus a handle back to
/// the [`Network`] for dispatch. Wrapped by the transport-agnostic
/// [`Endpoint`].
struct FabricEndpoint {
    node: NodeId,
    net: Network,
    mailbox: Mailbox,
}

impl RawEndpoint for FabricEndpoint {
    fn node(&self) -> &NodeId {
        &self.node
    }

    fn send(
        &self,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let envelope = Envelope {
            id: self.net.next_message_id(),
            from: self.node.clone(),
            to,
            kind,
            correlation,
            body,
        };
        self.net.dispatch(envelope)
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        self.mailbox.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.mailbox.recv_timeout(timeout)
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.mailbox.try_recv()
    }

    fn pending(&self) -> usize {
        self.mailbox.pending()
    }
}

impl Drop for FabricEndpoint {
    fn drop(&mut self) {
        self.net.inner.nodes.write().remove(&self.node);
        crate::metrics::fold_ephemeral(&mut self.net.inner.counters.write(), &self.node);
    }
}

impl ChaosTarget for Network {
    fn crash(&self, node: &NodeId) {
        Network::kill(self, node);
    }

    fn restart(&self, node: &NodeId) {
        Network::revive(self, node);
    }
}

impl Transport for Network {
    fn connect(&self, name: NodeId) -> Result<Endpoint, ConnectError> {
        Network::connect(self, name)
    }

    fn connect_anonymous(&self, prefix: &str) -> Endpoint {
        Network::connect_anonymous(self, prefix)
    }

    fn is_connected(&self, name: &str) -> bool {
        Network::is_connected(self, name)
    }

    fn node_names(&self) -> Vec<NodeId> {
        Network::node_names(self)
    }

    fn next_message_id(&self) -> MessageId {
        Network::next_message_id(self)
    }

    fn send_prepared(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<(), SendError> {
        let envelope = Envelope {
            id,
            from: from.clone(),
            to,
            kind,
            correlation,
            body,
        };
        self.dispatch(envelope).map(|_| ())
    }

    fn revive(&self, node: &NodeId) {
        Network::revive(self, node);
    }

    fn metrics(&self) -> MetricsSnapshot {
        Network::metrics(self)
    }

    fn reset_metrics(&self) {
        Network::reset_metrics(self)
    }

    fn handle(&self) -> TransportHandle {
        TransportHandle::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::RpcError;

    fn body() -> Element {
        Element::new("ping")
    }

    #[test]
    fn basic_send_receive() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        a.send("b", "hello", body().with_attr("n", "1")).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, "hello");
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(env.body.attr("n"), Some("1"));
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        assert!(matches!(
            a.send("ghost", "x", body()),
            Err(SendError::UnknownNode(_))
        ));
    }

    #[test]
    fn duplicate_name_rejected() {
        let net = Network::new(NetworkConfig::instant());
        let _a = net.connect("a").unwrap();
        assert!(net.connect("a").is_err());
    }

    #[test]
    fn disconnect_frees_name() {
        let net = Network::new(NetworkConfig::instant());
        {
            let _a = net.connect("a").unwrap();
            assert!(net.is_connected("a"));
        }
        assert!(!net.is_connected("a"));
        net.connect("a").unwrap();
    }

    #[test]
    fn fifo_per_link_in_instant_mode() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        for i in 0..100 {
            a.send("b", "seq", Element::new("n").with_attr("i", i.to_string()))
                .unwrap();
        }
        for i in 0..100 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.body.attr("i"), Some(i.to_string().as_str()));
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = NetworkConfig {
            latency: LatencyModel::Fixed(Duration::from_millis(30)),
            drop_probability: 0.0,
            seed: 1,
        };
        let net = Network::new(cfg);
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        let t0 = Instant::now();
        a.send("b", "x", body()).unwrap();
        let env = b.recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(env.kind, "x");
        assert!(
            elapsed >= Duration::from_millis(25),
            "delivered too early: {elapsed:?}"
        );
    }

    #[test]
    fn messages_ordered_by_deadline_not_send_order() {
        let net = Network::new(NetworkConfig {
            latency: LatencyModel::Fixed(Duration::from_millis(40)),
            drop_probability: 0.0,
            seed: 1,
        });
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        // Slow message first, then a fast override link message.
        net.set_link(
            a.node(),
            b.node(),
            LinkOverride {
                latency: Some(LatencyModel::Instant),
                drop_probability: None,
            },
        );
        a.send("b", "fast", body()).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, "fast");
    }

    #[test]
    fn drop_probability_loses_messages_deterministically() {
        let net = Network::new(
            NetworkConfig::instant()
                .with_drop_probability(0.5)
                .with_seed(7),
        );
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        for _ in 0..200 {
            a.send("b", "x", body()).unwrap();
        }
        let mut delivered = 0;
        while b.try_recv().is_some() {
            delivered += 1;
        }
        assert!(
            delivered > 50 && delivered < 150,
            "delivered {delivered}/200"
        );
        let m = net.metrics();
        assert_eq!(m.node("b").unwrap().received, delivered as u64);
        assert_eq!(m.node("b").unwrap().dropped_inbound, 200 - delivered as u64);
        // Same seed → same outcome.
        let net2 = Network::new(
            NetworkConfig::instant()
                .with_drop_probability(0.5)
                .with_seed(7),
        );
        let a2 = net2.connect("a").unwrap();
        let b2 = net2.connect("b").unwrap();
        for _ in 0..200 {
            a2.send("b", "x", body()).unwrap();
        }
        let mut delivered2 = 0;
        while b2.try_recv().is_some() {
            delivered2 += 1;
        }
        assert_eq!(delivered, delivered2);
    }

    #[test]
    fn partition_blocks_then_heals() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        net.partition(a.node(), b.node());
        a.send("b", "lost", body()).unwrap();
        assert!(b.try_recv().is_none());
        net.heal(a.node(), b.node());
        a.send("b", "found", body()).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().kind,
            "found"
        );
    }

    #[test]
    fn killed_node_receives_nothing_and_cannot_send() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        let _ = &b;
        net.kill(b.node());
        a.send("b", "x", body()).unwrap();
        assert!(b.try_recv().is_none());
        assert!(matches!(
            b.send("a", "y", body()),
            Err(SendError::SenderDead(_))
        ));
        net.revive(b.node());
        a.send("b", "x2", body()).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().kind, "x2");
    }

    #[test]
    fn metrics_track_messages_and_bytes() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        let c = net.connect("c").unwrap();
        a.send("b", "x", Element::new("payload").with_text("hello world"))
            .unwrap();
        a.send("b", "x", body()).unwrap();
        a.send("c", "x", body()).unwrap();
        let _ = (&b, &c);
        let m = net.metrics();
        let ma = m.node("a").unwrap();
        let mb = m.node("b").unwrap();
        assert_eq!(ma.sent, 3);
        assert_eq!(mb.received, 2);
        assert!(ma.bytes_sent > 0);
        assert!(ma.bytes_sent > mb.bytes_received);
        assert_eq!(m.busiest().unwrap().node.as_str(), "a");
        net.reset_metrics();
        assert_eq!(net.metrics().total_sent(), 0);
    }

    #[test]
    fn reply_correlates() {
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        let req_id = a.send("b", "req", body()).unwrap();
        let req = b.recv_timeout(Duration::from_secs(1)).unwrap();
        b.reply(&req, "resp", Element::new("ok")).unwrap();
        let resp = a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(resp.correlation, Some(req_id));
        assert_eq!(resp.kind, "resp");
    }

    #[test]
    fn rpc_round_trip() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        let handle = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        let resp = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(resp.kind, "pong");
        handle.join().unwrap();
    }

    #[test]
    fn rpc_times_out_when_server_silent() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let _server = net.connect("server").unwrap();
        let err = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_millis(50),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn rpc_to_unknown_node_fails_fast() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let err = client
            .rpc(
                "ghost",
                "ping",
                Element::new("ping"),
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert!(matches!(err, RpcError::Send(SendError::UnknownNode(_))));
    }

    #[test]
    fn rpc_traffic_attributed_to_caller_node() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        let handle = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(2),
            )
            .unwrap();
        handle.join().unwrap();
        let m = net.metrics();
        assert_eq!(m.total_sent(), m.total_received());
        // The request was sent — and the reply received — by the caller's
        // own persistent node; no ephemeral endpoint ever existed.
        let c = m.node("client").unwrap();
        assert_eq!(c.sent, 1);
        assert_eq!(c.received, 1);
        assert!(
            !m.nodes.iter().any(|n| n.node.as_str().contains('~')),
            "rpc must not create ephemeral nodes: {:?}",
            m.nodes
        );
        assert_eq!(client.demux().pending_rpcs(), 0, "slot retired");
    }

    #[test]
    fn ephemeral_counters_fold_into_aggregate() {
        let net = Network::new(NetworkConfig::instant());
        let sink = net.connect("sink").unwrap();
        {
            let tmp = net.connect_anonymous("client");
            tmp.send("sink", "x", body()).unwrap();
            sink.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        let m = net.metrics();
        // The anonymous endpoint is gone, but its traffic was folded into
        // the aggregate slot: fabric totals stay conserved.
        assert_eq!(m.total_sent(), m.total_received());
        let agg = m.node(EPHEMERAL_AGGREGATE).unwrap();
        assert_eq!(agg.sent, 1, "anonymous sender's traffic folded");
        assert!(!net.is_connected("client~1"), "anonymous endpoint pruned");
    }

    #[test]
    fn concurrent_rpcs_from_one_endpoint_do_not_cross() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        const N: usize = 16;
        // The server collects all requests first, then answers them in
        // reverse arrival order — every reply would hit the wrong caller
        // if correlation ids could cross.
        let server_thread = std::thread::spawn(move || {
            let mut reqs = Vec::new();
            for _ in 0..N {
                reqs.push(server.recv().unwrap());
            }
            for req in reqs.iter().rev() {
                let tag = req.body.attr("tag").unwrap().to_string();
                server
                    .reply(req, "pong", Element::new("pong").with_attr("tag", tag))
                    .unwrap();
            }
        });
        std::thread::scope(|s| {
            for i in 0..N {
                let sender = client.sender();
                s.spawn(move || {
                    let reply = sender
                        .rpc(
                            "server",
                            "ping",
                            Element::new("ping").with_attr("tag", i.to_string()),
                            Duration::from_secs(5),
                        )
                        .unwrap();
                    assert_eq!(reply.body.attr("tag"), Some(i.to_string().as_str()));
                });
            }
        });
        server_thread.join().unwrap();
        assert_eq!(client.demux().pending_rpcs(), 0);
    }

    #[test]
    fn late_reply_is_discarded_and_does_not_poison_next_rpc() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        // First rpc times out; the server answers *afterwards* (stale).
        let server_thread = std::thread::spawn(move || {
            let slow = server.recv().unwrap();
            std::thread::sleep(Duration::from_millis(80));
            server.reply(&slow, "pong", Element::new("late")).unwrap();
            // Second rpc answered promptly.
            let fast = server.recv().unwrap();
            server.reply(&fast, "pong", Element::new("fresh")).unwrap();
        });
        let err = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        std::thread::sleep(Duration::from_millis(100));
        let reply = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.body.name, "fresh", "stale reply must not surface");
        assert!(
            client.try_recv().is_none(),
            "stale reply must not leak into recv"
        );
        server_thread.join().unwrap();
    }

    #[test]
    fn send_discard_reply_drops_the_ack() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        let id = client
            .sender()
            .send_discard_reply("server", "event", body())
            .unwrap();
        let req = server.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(req.id, id);
        // The server acks; the pre-tombstoned id swallows it.
        server.reply(&req, "ack", Element::new("ok")).unwrap();
        assert!(
            client.try_recv().is_none(),
            "ack must not queue in the sender's mailbox"
        );
        // An ordinary correlated exchange on the same endpoint still works.
        server
            .send_correlated(
                "client",
                "other",
                Element::new("x"),
                Some(MessageId(999_999)),
            )
            .unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(1)).unwrap().kind,
            "other"
        );
    }

    #[test]
    fn uncorrelated_traffic_flows_to_recv_during_rpc() {
        let net = Network::new(NetworkConfig::instant());
        let client = net.connect("client").unwrap();
        let server = net.connect("server").unwrap();
        let server_thread = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            // Unrelated notification first, then the correlated reply.
            server
                .send("client", "notify", Element::new("aside"))
                .unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        let reply = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.kind, "pong");
        let aside = client.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(aside.kind, "notify", "uncorrelated message kept for recv");
        server_thread.join().unwrap();
    }

    #[test]
    fn chaos_schedule_drops_delays_and_duplicates_on_instant_fabric() {
        use crate::fault::{ChaosConfig, KindRule};
        let net = Network::new(NetworkConfig::instant());
        let a = net.connect("a").unwrap();
        let b = net.connect("b").unwrap();
        let cfg = ChaosConfig::default()
            .rule(KindRule::for_kind("lost").drop(1.0))
            .rule(KindRule::for_kind("twin").duplicate(1.0))
            .rule(KindRule::for_kind("slow").delay(
                1.0,
                Duration::from_millis(20),
                Duration::from_millis(30),
            ));
        let schedule = FaultSchedule::sample(5, cfg);
        net.install_chaos(Arc::clone(&schedule));
        a.send("b", "lost", body()).unwrap();
        assert!(
            b.recv_timeout(Duration::from_millis(100)).is_err(),
            "dropped by chaos"
        );
        a.send("b", "twin", body()).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().kind, "twin");
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().kind,
            "twin",
            "duplicate copy arrives via the delivery heap"
        );
        let t0 = Instant::now();
        a.send("b", "slow", body()).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "delayed by chaos: {:?}",
            t0.elapsed()
        );
        assert_eq!(schedule.fault_count(), 3);
        net.clear_chaos();
        a.send("b", "lost", body()).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().kind,
            "lost",
            "cleared schedule no longer faults"
        );
    }

    #[test]
    fn anonymous_names_are_unique() {
        let net = Network::new(NetworkConfig::instant());
        let e1 = net.connect_anonymous("tmp");
        let e2 = net.connect_anonymous("tmp");
        assert_ne!(e1.node(), e2.node());
    }

    #[test]
    fn node_names_sorted() {
        let net = Network::new(NetworkConfig::instant());
        let _c = net.connect("c").unwrap();
        let _a = net.connect("a").unwrap();
        let names: Vec<String> = net
            .node_names()
            .iter()
            .map(|n| n.as_str().to_string())
            .collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn many_nodes_cross_traffic() {
        let net = Network::new(NetworkConfig::instant());
        let nodes: Vec<Endpoint> = (0..16)
            .map(|i| net.connect(format!("n{i}")).unwrap())
            .collect();
        for (i, ep) in nodes.iter().enumerate() {
            for j in 0..16 {
                if i != j {
                    ep.send(format!("n{j}"), "x", body()).unwrap();
                }
            }
        }
        for ep in &nodes {
            let mut got = 0;
            while ep.try_recv().is_some() {
                got += 1;
            }
            assert_eq!(got, 15);
        }
        assert_eq!(net.metrics().total_sent(), 16 * 15);
    }
}
