//! Message envelopes: addressed XML documents.

use selfserv_xml::Element;
use std::fmt;
use std::sync::Arc;

/// Name of a node on the fabric (a coordinator, wrapper, community,
/// registry, or client). Cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(Arc<str>);

impl NodeId {
    /// Wraps a name.
    pub fn new(s: impl AsRef<str>) -> Self {
        NodeId(Arc::from(s.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

impl From<String> for NodeId {
    fn from(s: String) -> Self {
        NodeId::new(s)
    }
}

/// Fabric-unique message identifier (used for reply correlation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An addressed XML message: the only thing that travels between SELF-SERV
/// components.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Fabric-assigned id.
    pub id: MessageId,
    /// Sender node. This doubles as the **reply address**: `reply` and the
    /// rpc machinery send correlated responses back to `from` by name, so
    /// on transports that carry frames between processes the field is what
    /// makes a cross-process round trip routable.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Message kind tag (e.g. `notify`, `invoke`, `reply`, `uddi.find`).
    /// Receivers dispatch on this.
    pub kind: String,
    /// For replies: the id of the request being answered.
    pub correlation: Option<MessageId>,
    /// XML payload.
    pub body: Element,
}

impl Envelope {
    /// A synthetic, transport-less envelope: carries `body` as if `node`
    /// had sent it to itself. Never touches a transport (no metrics, no
    /// delivery) — it exists so off-wire results (e.g. a pool task's
    /// outcome delivered through a runtime completion event) travel in the
    /// same shape as wire traffic. The id is `MessageId(0)` and there is
    /// no correlation.
    pub fn synthetic(node: NodeId, kind: impl Into<String>, body: Element) -> Envelope {
        Envelope {
            id: MessageId(0),
            from: node.clone(),
            to: node,
            kind: kind.into(),
            correlation: None,
            body,
        }
    }

    /// Encodes the whole envelope as one XML element (the on-wire form of
    /// the TCP transport, and the basis of byte accounting).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("envelope")
            .with_attr("id", self.id.0.to_string())
            .with_attr("from", self.from.as_str())
            .with_attr("to", self.to.as_str())
            .with_attr("kind", &self.kind);
        if let Some(c) = self.correlation {
            e.set_attr("correlation", c.0.to_string());
        }
        e.push_child(self.body.clone());
        e
    }

    /// Decodes the on-wire form.
    pub fn from_xml(e: &Element) -> Result<Self, String> {
        if e.name != "envelope" {
            return Err(format!("expected <envelope>, got <{}>", e.name));
        }
        let id = e
            .require_attr("id")?
            .parse::<u64>()
            .map_err(|err| format!("bad envelope id: {err}"))?;
        let correlation = match e.attr("correlation") {
            Some(c) => Some(MessageId(
                c.parse::<u64>()
                    .map_err(|err| format!("bad correlation: {err}"))?,
            )),
            None => None,
        };
        let body = e
            .child_elements()
            .next()
            .cloned()
            .ok_or_else(|| "envelope has no body element".to_string())?;
        Ok(Envelope {
            id: MessageId(id),
            from: NodeId::new(e.require_attr("from")?),
            to: NodeId::new(e.require_attr("to")?),
            kind: e.require_attr("kind")?.to_string(),
            correlation,
            body,
        })
    }

    /// Size in bytes of the serialized envelope — what the metrics layer
    /// charges to each link.
    pub fn wire_size(&self) -> usize {
        self.to_xml().to_xml().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope {
            id: MessageId(7),
            from: "coordinator.AB".into(),
            to: "coordinator.CR".into(),
            kind: "notify".into(),
            correlation: Some(MessageId(3)),
            body: Element::new("completed").with_attr("state", "AB"),
        }
    }

    #[test]
    fn node_id_basics() {
        let n = NodeId::new("svc.dfb");
        assert_eq!(n.as_str(), "svc.dfb");
        assert_eq!(n.to_string(), "svc.dfb");
        assert_eq!(n.clone(), n);
        assert_eq!(NodeId::from("x".to_string()), NodeId::from("x"));
    }

    #[test]
    fn envelope_round_trip() {
        let env = sample();
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn envelope_without_correlation_round_trips() {
        let mut env = sample();
        env.correlation = None;
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Envelope::from_xml(&Element::new("notenvelope")).is_err());
        let no_body = Element::new("envelope")
            .with_attr("id", "1")
            .with_attr("from", "a")
            .with_attr("to", "b")
            .with_attr("kind", "k");
        assert!(Envelope::from_xml(&no_body).is_err());
        let bad_id = Element::new("envelope")
            .with_attr("id", "xyz")
            .with_attr("from", "a")
            .with_attr("to", "b")
            .with_attr("kind", "k")
            .with_child(Element::new("x"));
        assert!(Envelope::from_xml(&bad_id).is_err());
    }

    #[test]
    fn wire_size_is_positive_and_monotone() {
        let small = sample();
        let mut big = sample();
        big.body = Element::new("completed").with_text("x".repeat(512));
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn message_id_display() {
        assert_eq!(MessageId(42).to_string(), "m42");
    }
}
