//! The peer directory: a versioned, mergeable `name → address` map.
//!
//! [`crate::TcpTransport`] used to keep a raw `HashMap<NodeId, SocketAddr>`
//! that an operator filled by hand (`register_peer`, both directions, for
//! every pair of processes). The directory replaces that map with a state
//! that *converges*: every entry carries a per-name **version counter**
//! and the id of the **hub that owns it** (the process whose listener the
//! address points at), and two directories combine with a deterministic
//! last-writer-wins [`PeerDirectory::merge_remote`] that is commutative,
//! idempotent, and associative — the algebra gossip anti-entropy needs so
//! any exchange order reaches the same directory on every hub
//! (property-tested in `selfserv-discovery`).
//!
//! Departures and failures are **tombstones**, not removals: dropping a
//! local endpoint (or evicting a dead hub's names) bumps the entry's
//! version and marks it evicted, so the fact that a name is gone
//! propagates through the same merge as the fact that it exists. A local
//! re-bind writes over its own tombstone with a higher version, so names
//! stay reusable.
//!
//! Liveness is layered on top: eviction is durable and versioned (it
//! gossips), while **suspicion** is a local, unversioned overlay — one
//! hub's timeout observation must not masquerade as cluster-wide truth.
//! Consumers that only need "should I still pick this peer?" take the
//! directory through the [`LivenessProbe`] trait (e.g. community member
//! selection).
//!
//! ## Known limitations
//!
//! Node names are one global namespace with no arbiter. **Binding the
//! same name on two hubs is an operator error the system cannot
//! resolve**: each hub's self-defense re-asserts its own live endpoint
//! over the other's claims, so the two directories exchange one
//! correcting delta per gossip round and never converge on that name
//! (every other name still converges). The directory *detects* this:
//! repeated live reasserts are counted per name and the discovery sweep
//! drains them ([`PeerDirectory::take_conflicts`]) into operator-visible
//! [`PeerStatus::NameConflict`] events — but resolution stays with the
//! operator. Likewise, entries owned by hubs that run **no discovery
//! node** — or registered by hand
//! ([`crate::TcpTransport::register_peer`], owner
//! [`HubId::UNKNOWN`]) — sit outside failure detection: nothing probes,
//! suspects, or evicts them, so after their process dies they stay
//! routable-looking until overwritten or manually re-registered.
//! Address-level probing for detector-less owners is a ROADMAP item.

use crate::envelope::NodeId;
use parking_lot::RwLock;
use selfserv_xml::Element;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one transport hub (one process's [`crate::TcpTransport`]).
/// Generated at hub creation from wall-clock entropy plus a process-local
/// counter; `0` is reserved for entries registered by hand
/// ([`crate::TcpTransport::register_peer`]) whose owning hub is unknown —
/// the failure detector never suspects or evicts hub `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HubId(pub u64);

impl HubId {
    /// The sentinel owner of manually registered entries.
    pub const UNKNOWN: HubId = HubId(0);

    /// Generates a hub id unlikely to collide across processes: wall-clock
    /// nanoseconds mixed (splitmix64) with a process-local counter.
    pub fn generate() -> HubId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        let mut x = nanos
            .wrapping_add(
                COUNTER
                    .fetch_add(1, Ordering::Relaxed)
                    .wrapping_mul(0x9e37_79b9),
            )
            .wrapping_add(std::process::id() as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        if x == 0 {
            x = 1; // never collide with HubId::UNKNOWN
        }
        HubId(x)
    }

    /// Parses the hex form produced by `Display`.
    pub fn parse(s: &str) -> Option<HubId> {
        u64::from_str_radix(s, 16).ok().map(HubId)
    }
}

impl fmt::Display for HubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A peer's liveness as this hub currently believes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Reachable (or never observed to be anything else).
    Alive,
    /// Missed heartbeats past the suspicion timeout — still routable, but
    /// selection policies should prefer alternatives.
    Suspected,
    /// Declared dead: the entry is tombstoned, lookups fail, and the
    /// eviction gossips to every hub.
    Evicted,
    /// Two hubs persistently claim the same name — an operator error the
    /// merge cannot resolve (each hub re-asserts its own live endpoint, so
    /// the directories trade correcting deltas forever). Never returned by
    /// [`PeerDirectory`]'s `status_of`; carried only by
    /// [`LivenessEvent`]s so operators see the misconfiguration instead of
    /// silent gossip churn. The event's `hub` is the *conflicting
    /// claimant*, its `names` the contested name.
    NameConflict,
}

impl PeerStatus {
    /// Wire name (used by the directory codec and liveness events).
    pub fn name(self) -> &'static str {
        match self {
            PeerStatus::Alive => "alive",
            PeerStatus::Suspected => "suspected",
            PeerStatus::Evicted => "evicted",
            PeerStatus::NameConflict => "conflict",
        }
    }

    /// Parses the wire name.
    pub fn from_name(s: &str) -> Option<PeerStatus> {
        Some(match s {
            "alive" => PeerStatus::Alive,
            "suspected" => PeerStatus::Suspected,
            "evicted" => PeerStatus::Evicted,
            "conflict" => PeerStatus::NameConflict,
            _ => return None,
        })
    }
}

/// Answers liveness queries by node name. Implemented by
/// [`PeerDirectory`]; community servers take it as `Arc<dyn
/// LivenessProbe>` so member selection can skip the dead without the
/// community crate knowing anything about transports or gossip.
pub trait LivenessProbe: Send + Sync {
    /// The believed status of `name`. Unknown names are `Alive` (absence
    /// of evidence is not evidence of death — a member may live on a
    /// transport with no failure detection at all, e.g. the fabric).
    fn status_of(&self, name: &str) -> PeerStatus;
}

/// One directory entry: where a name lives, who owns it, and how fresh
/// the claim is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// The listener address of the name's endpoint.
    pub addr: SocketAddr,
    /// The hub the name is (or was) connected on.
    pub owner: HubId,
    /// Per-name version counter: bumped by the owning hub on every
    /// (re-)bind and drop, and by an evicting hub's tombstone.
    pub version: u64,
    /// Tombstone: the name is gone (endpoint dropped or owner evicted).
    pub evicted: bool,
}

impl DirectoryEntry {
    /// Total, deterministic dominance order for last-writer-wins merges:
    /// higher version wins; ties break on (evicted, owner, addr) so that
    /// any two replicas pick the same winner regardless of arrival order.
    /// Allocation-free: this runs on the transport's per-frame receive
    /// path.
    fn merge_key(&self) -> (u64, bool, u64, SocketAddr) {
        (self.version, self.evicted, self.owner.0, self.addr)
    }

    /// True when `other` should replace `self` in a merge.
    pub fn loses_to(&self, other: &DirectoryEntry) -> bool {
        self.merge_key() < other.merge_key()
    }
}

/// What a merge changed (the material for liveness events and gossip
/// effectiveness accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryChange {
    /// A name this hub had never heard of (or held an older claim for)
    /// is now bound.
    Learned(NodeId),
    /// A name was tombstoned by the merge.
    Evicted(NodeId),
    /// A remote claim tried to overwrite a name whose endpoint is alive
    /// on this hub; the local entry was re-asserted with a higher version
    /// (the next gossip round propagates the correction).
    Reasserted(NodeId),
}

struct DirectoryInner {
    hub: HubId,
    entries: RwLock<HashMap<NodeId, DirectoryEntry>>,
    /// Local suspicion overlay (never gossiped, never versioned).
    suspected_owners: RwLock<HashSet<HubId>>,
    /// Per-name count of *live* remote claims re-asserted over a locally
    /// alive endpoint — evidence of two hubs binding the same name. A
    /// one-off reassert is normal (stale tombstones during eviction
    /// recovery); a count that keeps climbing is a cross-hub conflict.
    /// Keyed by name; the value is the latest conflicting claimant and
    /// the running count. Leaf lock: never held while another directory
    /// lock is taken.
    conflicts: RwLock<HashMap<NodeId, (HubId, u64)>>,
}

/// The shared, versioned name → address directory of one hub. Cheap to
/// clone (all clones view the same state).
#[derive(Clone)]
pub struct PeerDirectory {
    inner: Arc<DirectoryInner>,
}

impl PeerDirectory {
    /// An empty directory owned by `hub`.
    pub fn new(hub: HubId) -> PeerDirectory {
        PeerDirectory {
            inner: Arc::new(DirectoryInner {
                hub,
                entries: RwLock::new(HashMap::new()),
                suspected_owners: RwLock::new(HashSet::new()),
                conflicts: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The owning hub's id.
    pub fn hub(&self) -> HubId {
        self.inner.hub
    }

    /// Binds a locally connected name to its listener address, writing
    /// over any tombstone with a higher version. Fails (returning the
    /// standing entry) when a live entry already claims the name —
    /// local or remote, exactly like the raw registry did.
    pub fn bind_local(&self, name: NodeId, addr: SocketAddr) -> Result<(), DirectoryEntry> {
        let mut entries = self.inner.entries.write();
        let version = match entries.get(&name) {
            Some(e) if !e.evicted => return Err(e.clone()),
            Some(e) => e.version + 1,
            None => 1,
        };
        entries.insert(
            name,
            DirectoryEntry {
                addr,
                owner: self.inner.hub,
                version,
                evicted: false,
            },
        );
        Ok(())
    }

    /// Tombstones a locally owned name when its endpoint drops — but only
    /// if the entry still points at `addr` (a remote claim may have
    /// replaced it, and that claim is not ours to bury).
    pub fn remove_local(&self, name: &NodeId, addr: SocketAddr) {
        let mut entries = self.inner.entries.write();
        let Some(e) = entries.get_mut(name) else {
            return;
        };
        if e.evicted || e.addr != addr || e.owner != self.inner.hub {
            return;
        }
        // Ephemeral `~` endpoints never gossip (see `snapshot`), so their
        // tombstones would only accumulate — delete outright.
        if name.as_str().contains('~') {
            entries.remove(name);
        } else {
            e.version += 1;
            e.evicted = true;
        }
    }

    /// Merges one remote claim (a gossip entry, a handshake snapshot row,
    /// or a piggybacked sender address) under last-writer-wins — with one
    /// owner-side exception: a claim that would shadow or bury a name
    /// whose endpoint is **alive on this hub** is refused, and the local
    /// entry is re-asserted with a version above the intruder's so the
    /// correction out-gossips the stale claim. This is also what makes
    /// [`crate::TcpTransport::register_peer`] safe: a manual registration
    /// can never silently shadow a locally connected name.
    pub fn merge_entry(&self, name: NodeId, incoming: DirectoryEntry) -> Option<DirectoryChange> {
        // Fast path under the read lock: in steady state (every TCP frame
        // piggybacks its sender's claim, and the claim almost never
        // changes) the incoming entry is already dominated, and reader
        // threads must not serialize on the write lock per frame. The
        // write path re-checks, so a race just retries the comparison.
        {
            let entries = self.inner.entries.read();
            if let Some(current) = entries.get(&name) {
                if !current.loses_to(&incoming) {
                    return None;
                }
            }
        }
        let mut entries = self.inner.entries.write();
        match entries.get_mut(&name) {
            None => {
                let change = if incoming.evicted {
                    DirectoryChange::Evicted(name.clone())
                } else {
                    DirectoryChange::Learned(name.clone())
                };
                entries.insert(name, incoming);
                Some(change)
            }
            Some(current) => {
                if !current.loses_to(&incoming) {
                    return None;
                }
                // A name whose endpoint is alive on this hub yields to no
                // remote claim at all — not even a same-address one (it
                // would swap the entry's owner and orphan the eventual
                // tombstone when the endpoint drops).
                let locally_alive = current.owner == self.inner.hub && !current.evicted;
                if locally_alive {
                    current.version = incoming.version + 1;
                    // A *live* claim from a real peer hub over our own live
                    // endpoint is conflict evidence (a tombstone is just
                    // eviction recovery); count it for the failure
                    // detector's sweep to surface once it persists.
                    if !incoming.evicted
                        && incoming.owner != self.inner.hub
                        && incoming.owner != HubId::UNKNOWN
                    {
                        drop(entries);
                        let mut conflicts = self.inner.conflicts.write();
                        let slot = conflicts.entry(name.clone()).or_insert((incoming.owner, 0));
                        *slot = (incoming.owner, slot.1 + 1);
                    }
                    return Some(DirectoryChange::Reasserted(name));
                }
                let change = if incoming.evicted {
                    DirectoryChange::Evicted(name.clone())
                } else {
                    DirectoryChange::Learned(name.clone())
                };
                *current = incoming;
                Some(change)
            }
        }
    }

    /// Merges a batch of remote claims, returning every change applied.
    pub fn merge_remote(
        &self,
        incoming: impl IntoIterator<Item = (NodeId, DirectoryEntry)>,
    ) -> Vec<DirectoryChange> {
        incoming
            .into_iter()
            .filter_map(|(name, entry)| self.merge_entry(name, entry))
            .collect()
    }

    /// An operator's by-hand registration
    /// ([`crate::TcpTransport::register_peer`]): last-call-wins under one
    /// lock — the entry is overwritten with a version above the standing
    /// one, whatever its owner, so two racing registrations resolve to
    /// whichever ran last (not to a merge tie-break). The one exception
    /// is a name whose endpoint is alive on this hub: the registration is
    /// refused (returns `false`) rather than hijacking local traffic.
    pub fn register_manual(&self, name: NodeId, addr: SocketAddr) -> bool {
        let mut entries = self.inner.entries.write();
        match entries.get_mut(&name) {
            Some(e) if e.owner == self.inner.hub && !e.evicted => false,
            Some(e) => {
                e.addr = addr;
                e.owner = HubId::UNKNOWN;
                e.version += 1;
                e.evicted = false;
                true
            }
            None => {
                entries.insert(
                    name,
                    DirectoryEntry {
                        addr,
                        owner: HubId::UNKNOWN,
                        version: 1,
                        evicted: false,
                    },
                );
                true
            }
        }
    }

    /// Drops a remote **ephemeral** (`~`) entry that proved unreachable at
    /// `addr`. Remote ephemeral entries are learned from piggybacked
    /// frame claims and are invisible to gossip (no snapshot rows, so no
    /// tombstones can ever retire them) — a failed send is their only
    /// end-of-life signal. Named entries are left alone: one transient
    /// send failure must not erase what gossip and eviction own.
    pub fn prune_unreachable_ephemeral(&self, name: &NodeId, addr: SocketAddr) {
        if !name.as_str().contains('~') {
            return;
        }
        let mut entries = self.inner.entries.write();
        if let Some(e) = entries.get(name) {
            if e.owner != self.inner.hub && e.addr == addr {
                entries.remove(name);
            }
        }
    }

    /// The routable address of `name` (none for unknown or evicted names).
    pub fn lookup(&self, name: &NodeId) -> Option<SocketAddr> {
        self.inner
            .entries
            .read()
            .get(name)
            .filter(|e| !e.evicted)
            .map(|e| e.addr)
    }

    /// True when a live (non-tombstoned) entry binds `name`.
    pub fn is_bound(&self, name: &str) -> bool {
        self.inner
            .entries
            .read()
            .get(&NodeId::new(name))
            .is_some_and(|e| !e.evicted)
    }

    /// The full entry for `name`, tombstoned or not.
    pub fn entry(&self, name: &str) -> Option<DirectoryEntry> {
        self.inner.entries.read().get(&NodeId::new(name)).cloned()
    }

    /// All live names, sorted.
    pub fn names(&self) -> Vec<NodeId> {
        let mut names: Vec<NodeId> = self
            .inner
            .entries
            .read()
            .iter()
            .filter(|(_, e)| !e.evicted)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// The gossip-able view: every entry except ephemeral `~` names
    /// (transport-local client identities; exporting them would gossip
    /// short-lived endpoints forever). Includes tombstones — departures
    /// must travel as far as arrivals.
    pub fn snapshot(&self) -> Vec<(NodeId, DirectoryEntry)> {
        let mut rows: Vec<(NodeId, DirectoryEntry)> = self
            .inner
            .entries
            .read()
            .iter()
            .filter(|(n, _)| !n.as_str().contains('~'))
            .map(|(n, e)| (n.clone(), e.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Entries of this directory that strictly dominate (or are absent
    /// from) a peer's snapshot — the *delta* half of push-pull gossip: the
    /// receiver of a full snapshot answers with exactly what the sender is
    /// missing.
    pub fn delta_against(
        &self,
        theirs: &[(NodeId, DirectoryEntry)],
    ) -> Vec<(NodeId, DirectoryEntry)> {
        let theirs: HashMap<&NodeId, &DirectoryEntry> =
            theirs.iter().map(|(n, e)| (n, e)).collect();
        self.snapshot()
            .into_iter()
            .filter(|(name, entry)| match theirs.get(name) {
                None => true,
                Some(remote) => remote.loses_to(entry),
            })
            .collect()
    }

    /// Marks (or clears) local suspicion of every name owned by `hub`.
    /// Returns the affected live names. Suspicion is a local overlay — it
    /// does not version, tombstone, or gossip anything.
    pub fn set_suspected(&self, hub: HubId, suspected: bool) -> Vec<NodeId> {
        if hub == self.inner.hub || hub == HubId::UNKNOWN {
            return Vec::new();
        }
        {
            let mut owners = self.inner.suspected_owners.write();
            if suspected {
                owners.insert(hub);
            } else {
                owners.remove(&hub);
            }
        }
        self.names_owned_by(hub)
    }

    /// Evicts every name owned by `hub`: tombstones with bumped versions
    /// (so the eviction gossips), suspicion cleared. Returns the evicted
    /// names. The local hub and the manual-registration sentinel cannot
    /// be evicted.
    pub fn evict_owner(&self, hub: HubId) -> Vec<NodeId> {
        if hub == self.inner.hub || hub == HubId::UNKNOWN {
            return Vec::new();
        }
        self.inner.suspected_owners.write().remove(&hub);
        let mut evicted = Vec::new();
        let mut entries = self.inner.entries.write();
        // The dead hub's ephemeral entries (learned from piggybacked
        // claims) are deleted outright: they never gossip, so a tombstone
        // would linger forever without ever propagating anything.
        entries.retain(|name, e| !(e.owner == hub && name.as_str().contains('~')));
        for (name, e) in entries.iter_mut() {
            if e.owner == hub && !e.evicted {
                e.version += 1;
                e.evicted = true;
                evicted.push(name.clone());
            }
        }
        evicted.sort();
        evicted
    }

    /// Drains every name whose conflict count has reached `threshold`:
    /// names where live claims from another hub keep being re-asserted
    /// over an endpoint alive here — two hubs bound the same name.
    /// Returns `(name, conflicting claimant, count)` sorted by name;
    /// under-threshold counts keep accumulating for a later sweep. The
    /// caller (the discovery sweep) turns each row into an operator-visible
    /// [`PeerStatus::NameConflict`] event.
    pub fn take_conflicts(&self, threshold: u64) -> Vec<(NodeId, HubId, u64)> {
        let mut conflicts = self.inner.conflicts.write();
        let ripe: Vec<NodeId> = conflicts
            .iter()
            .filter(|(_, (_, count))| *count >= threshold)
            .map(|(name, _)| name.clone())
            .collect();
        let mut out: Vec<(NodeId, HubId, u64)> = ripe
            .into_iter()
            .filter_map(|name| {
                conflicts
                    .remove(&name)
                    .map(|(claimant, count)| (name, claimant, count))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Live names owned by `hub`, sorted.
    pub fn names_owned_by(&self, hub: HubId) -> Vec<NodeId> {
        let mut names: Vec<NodeId> = self
            .inner
            .entries
            .read()
            .iter()
            .filter(|(_, e)| e.owner == hub && !e.evicted)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Order-independent fingerprint of the gossip-able state (the `~`-free
    /// entry set, including tombstones). Two hubs whose directories have
    /// converged report equal fingerprints; the convergence tests and the
    /// gossip bench poll this.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for (name, e) in self.inner.entries.read().iter() {
            if name.as_str().contains('~') {
                continue;
            }
            let mut h = DefaultHasher::new();
            name.as_str().hash(&mut h);
            e.addr.to_string().hash(&mut h);
            e.owner.0.hash(&mut h);
            e.version.hash(&mut h);
            e.evicted.hash(&mut h);
            acc ^= h.finish();
        }
        acc
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .entries
            .read()
            .values()
            .filter(|e| !e.evicted)
            .count()
    }

    /// True when no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl LivenessProbe for PeerDirectory {
    fn status_of(&self, name: &str) -> PeerStatus {
        let owner = {
            let entries = self.inner.entries.read();
            match entries.get(&NodeId::new(name)) {
                Some(e) if e.evicted => return PeerStatus::Evicted,
                Some(e) => e.owner,
                None => return PeerStatus::Alive,
            }
        };
        if self.inner.suspected_owners.read().contains(&owner) {
            PeerStatus::Suspected
        } else {
            PeerStatus::Alive
        }
    }
}

impl fmt::Debug for PeerDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeerDirectory")
            .field("hub", &self.inner.hub)
            .field("live_entries", &self.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Wire codec: directory rows and liveness events as XML elements
// ---------------------------------------------------------------------------

/// Encodes one directory row as an `<entry>` element (the gossip and
/// handshake payload row format).
pub fn entry_to_xml(name: &NodeId, e: &DirectoryEntry) -> Element {
    let mut el = Element::new("entry")
        .with_attr("name", name.as_str())
        .with_attr("addr", e.addr.to_string())
        .with_attr("owner", e.owner.to_string())
        .with_attr("version", e.version.to_string());
    if e.evicted {
        el.set_attr("evicted", "1");
    }
    el
}

/// Decodes an `<entry>` element. Malformed rows decode to `None` and are
/// skipped by receivers (one bad row must not poison a whole exchange).
pub fn entry_from_xml(el: &Element) -> Option<(NodeId, DirectoryEntry)> {
    if el.name != "entry" {
        return None;
    }
    Some((
        NodeId::new(el.attr("name")?),
        DirectoryEntry {
            addr: el.attr("addr")?.parse().ok()?,
            owner: HubId::parse(el.attr("owner")?)?,
            version: el.attr("version")?.parse().ok()?,
            evicted: el.attr("evicted") == Some("1"),
        },
    ))
}

/// The message kind liveness events travel under (discovery → monitor).
pub const LIVENESS_KIND: &str = "discovery.liveness";

/// A liveness transition observed by a failure detector: one peer hub and
/// the names it owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessEvent {
    /// The peer hub whose status changed.
    pub hub: HubId,
    /// Its new status.
    pub status: PeerStatus,
    /// The live names owned by that hub at transition time.
    pub names: Vec<NodeId>,
}

impl LivenessEvent {
    /// Wire form (body of a [`LIVENESS_KIND`] envelope).
    pub fn to_xml(&self) -> Element {
        Element::new("liveness")
            .with_attr("hub", self.hub.to_string())
            .with_attr("status", self.status.name())
            .with_children(
                self.names
                    .iter()
                    .map(|n| Element::new("node").with_attr("name", n.as_str())),
            )
    }

    /// Decodes the wire form.
    pub fn from_xml(el: &Element) -> Option<LivenessEvent> {
        if el.name != "liveness" {
            return None;
        }
        Some(LivenessEvent {
            hub: HubId::parse(el.attr("hub")?)?,
            status: PeerStatus::from_name(el.attr("status")?)?,
            names: el
                .child_elements()
                .filter(|c| c.name == "node")
                .filter_map(|c| c.attr("name").map(NodeId::new))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn dir() -> PeerDirectory {
        PeerDirectory::new(HubId(0xA))
    }

    fn remote(port: u16, owner: u64, version: u64, evicted: bool) -> DirectoryEntry {
        DirectoryEntry {
            addr: addr(port),
            owner: HubId(owner),
            version,
            evicted,
        }
    }

    #[test]
    fn bind_lookup_remove_rebind() {
        let d = dir();
        d.bind_local(NodeId::new("a"), addr(1000)).unwrap();
        assert_eq!(d.lookup(&NodeId::new("a")), Some(addr(1000)));
        assert!(d.is_bound("a"));
        // A second live bind collides.
        assert!(d.bind_local(NodeId::new("a"), addr(1001)).is_err());
        // Drop tombstones; the name frees and version grows.
        d.remove_local(&NodeId::new("a"), addr(1000));
        assert!(!d.is_bound("a"));
        assert!(d.entry("a").unwrap().evicted);
        let v = d.entry("a").unwrap().version;
        d.bind_local(NodeId::new("a"), addr(1002)).unwrap();
        assert_eq!(d.lookup(&NodeId::new("a")), Some(addr(1002)));
        assert!(d.entry("a").unwrap().version > v);
    }

    #[test]
    fn remove_respects_address_and_owner() {
        let d = dir();
        d.bind_local(NodeId::new("a"), addr(1000)).unwrap();
        // Wrong address: not ours to bury.
        d.remove_local(&NodeId::new("a"), addr(9999));
        assert!(d.is_bound("a"));
        // Remote-owned entries are never tombstoned by local drops.
        d.merge_entry(NodeId::new("r"), remote(2000, 0xB, 5, false));
        d.remove_local(&NodeId::new("r"), addr(2000));
        assert!(d.is_bound("r"));
    }

    #[test]
    fn ephemeral_names_removed_without_tombstones() {
        let d = dir();
        d.bind_local(NodeId::new("client~1"), addr(1500)).unwrap();
        d.remove_local(&NodeId::new("client~1"), addr(1500));
        assert!(d.entry("client~1").is_none());
        assert!(d.snapshot().iter().all(|(n, _)| !n.as_str().contains('~')));
    }

    #[test]
    fn merge_is_last_writer_wins() {
        let d = dir();
        assert!(matches!(
            d.merge_entry(NodeId::new("x"), remote(2000, 0xB, 3, false)),
            Some(DirectoryChange::Learned(_))
        ));
        // Older claim loses.
        assert!(d
            .merge_entry(NodeId::new("x"), remote(2001, 0xC, 2, false))
            .is_none());
        assert_eq!(d.lookup(&NodeId::new("x")), Some(addr(2000)));
        // Newer claim wins.
        d.merge_entry(NodeId::new("x"), remote(2002, 0xC, 4, false));
        assert_eq!(d.lookup(&NodeId::new("x")), Some(addr(2002)));
        // Newer tombstone evicts.
        assert!(matches!(
            d.merge_entry(NodeId::new("x"), remote(2002, 0xC, 5, true)),
            Some(DirectoryChange::Evicted(_))
        ));
        assert!(!d.is_bound("x"));
        // Idempotent: replaying the same claim changes nothing.
        assert!(d
            .merge_entry(NodeId::new("x"), remote(2002, 0xC, 5, true))
            .is_none());
    }

    #[test]
    fn repeated_live_reasserts_accumulate_as_name_conflicts() {
        let d = dir();
        d.bind_local(NodeId::new("shared"), addr(1000)).unwrap();
        // Tombstone reasserts (eviction recovery) are NOT conflict
        // evidence, however many arrive.
        for v in 10..20 {
            d.merge_entry(NodeId::new("shared"), remote(1000, 0xB, v * 100, true));
        }
        assert!(d.take_conflicts(1).is_empty());
        // Live claims from a real peer hub are. Each needs a dominating
        // version (the previous reassert out-versioned it).
        let mut version = d.entry("shared").unwrap().version;
        for _ in 0..3 {
            version += 1;
            let change = d.merge_entry(NodeId::new("shared"), remote(7777, 0xB, version, false));
            assert!(matches!(change, Some(DirectoryChange::Reasserted(_))));
            version = d.entry("shared").unwrap().version;
        }
        // Under threshold: nothing drains, the count keeps building.
        assert!(d.take_conflicts(4).is_empty());
        version += 1;
        d.merge_entry(NodeId::new("shared"), remote(7777, 0xB, version, false));
        let ripe = d.take_conflicts(4);
        assert_eq!(ripe.len(), 1);
        let (name, claimant, count) = &ripe[0];
        assert_eq!(name.as_str(), "shared");
        assert_eq!(*claimant, HubId(0xB));
        assert_eq!(*count, 4);
        // Drained: the slate is clean until new claims arrive.
        assert!(d.take_conflicts(1).is_empty());
        // Claims from the manual-registration sentinel never count.
        version = d.entry("shared").unwrap().version + 1;
        d.merge_entry(NodeId::new("shared"), remote(8888, 0, version, false));
        assert!(d.take_conflicts(1).is_empty());
    }

    #[test]
    fn locally_alive_names_reassert_over_remote_claims() {
        let d = dir();
        d.bind_local(NodeId::new("mine"), addr(1000)).unwrap();
        let before = d.entry("mine").unwrap();
        // A remote claim with a dominating version tries to remap the name.
        let change = d.merge_entry(NodeId::new("mine"), remote(6666, 0xB, 99, false));
        assert!(matches!(change, Some(DirectoryChange::Reasserted(_))));
        let after = d.entry("mine").unwrap();
        assert_eq!(after.addr, before.addr, "local mapping survives");
        assert_eq!(after.owner, d.hub());
        assert!(after.version > 99, "re-assertion out-versions the intruder");
        // Same for a remote tombstone: local liveness wins.
        let change = d.merge_entry(NodeId::new("mine"), remote(1000, 0xB, 200, true));
        assert!(matches!(change, Some(DirectoryChange::Reasserted(_))));
        assert!(d.is_bound("mine"));
        // And for a *same-address* claim under a foreign owner (e.g. a
        // register_peer made elsewhere, gossiped back): adopting it would
        // swap the owner and orphan the eventual drop-tombstone.
        let v = d.entry("mine").unwrap().version;
        let change = d.merge_entry(
            NodeId::new("mine"),
            DirectoryEntry {
                addr: d.entry("mine").unwrap().addr,
                owner: HubId::UNKNOWN,
                version: v + 50,
                evicted: false,
            },
        );
        assert!(matches!(change, Some(DirectoryChange::Reasserted(_))));
        assert_eq!(d.entry("mine").unwrap().owner, d.hub());
        // The drop path still works: the entry is ours to tombstone.
        let addr_mine = d.entry("mine").unwrap().addr;
        d.remove_local(&NodeId::new("mine"), addr_mine);
        assert!(!d.is_bound("mine"));
    }

    #[test]
    fn suspicion_is_an_overlay_eviction_is_durable() {
        let d = dir();
        d.merge_entry(NodeId::new("svc.x"), remote(2000, 0xB, 1, false));
        d.merge_entry(NodeId::new("svc.y"), remote(2001, 0xB, 1, false));
        assert_eq!(d.status_of("svc.x"), PeerStatus::Alive);
        let marked = d.set_suspected(HubId(0xB), true);
        assert_eq!(marked.len(), 2);
        assert_eq!(d.status_of("svc.x"), PeerStatus::Suspected);
        // Suspicion never shows in the gossip snapshot.
        assert!(d.snapshot().iter().all(|(_, e)| !e.evicted));
        d.set_suspected(HubId(0xB), false);
        assert_eq!(d.status_of("svc.y"), PeerStatus::Alive);
        // Eviction tombstones with bumped versions.
        let evicted = d.evict_owner(HubId(0xB));
        assert_eq!(evicted.len(), 2);
        assert_eq!(d.status_of("svc.x"), PeerStatus::Evicted);
        assert!(d.entry("svc.x").unwrap().version > 1);
        assert!(d.lookup(&NodeId::new("svc.x")).is_none());
        // Local hub and the manual sentinel are never evictable.
        d.bind_local(NodeId::new("me"), addr(1)).unwrap();
        assert!(d.evict_owner(d.hub()).is_empty());
        assert!(d.evict_owner(HubId::UNKNOWN).is_empty());
    }

    #[test]
    fn register_manual_is_last_call_wins_but_never_shadows_local() {
        let d = dir();
        assert!(d.register_manual(NodeId::new("x"), addr(1)));
        assert!(d.register_manual(NodeId::new("x"), addr(2)));
        assert_eq!(
            d.lookup(&NodeId::new("x")),
            Some(addr(2)),
            "second registration wins regardless of merge tie-breaks"
        );
        // It also overrides a standing high-version gossip claim (the
        // operator's correction must not lose an LWW comparison).
        d.merge_entry(NodeId::new("g"), remote(3, 0xB, 50, false));
        assert!(d.register_manual(NodeId::new("g"), addr(4)));
        assert_eq!(d.lookup(&NodeId::new("g")), Some(addr(4)));
        assert!(d.entry("g").unwrap().version > 50);
        // But never a locally connected name.
        d.bind_local(NodeId::new("mine"), addr(9)).unwrap();
        assert!(!d.register_manual(NodeId::new("mine"), addr(10)));
        assert_eq!(d.lookup(&NodeId::new("mine")), Some(addr(9)));
    }

    #[test]
    fn ephemeral_remote_entries_prune_on_unreachability_and_eviction() {
        let d = dir();
        d.merge_entry(NodeId::new("cli~b-1"), remote(1, 0xB, 1, false));
        d.merge_entry(NodeId::new("cli~b-2"), remote(2, 0xB, 1, false));
        d.merge_entry(NodeId::new("svc.x"), remote(3, 0xB, 1, false));
        d.bind_local(NodeId::new("own~a-1"), addr(4)).unwrap();
        // Named entries and local/mismatched ephemerals are left alone.
        d.prune_unreachable_ephemeral(&NodeId::new("svc.x"), addr(3));
        d.prune_unreachable_ephemeral(&NodeId::new("own~a-1"), addr(4));
        d.prune_unreachable_ephemeral(&NodeId::new("cli~b-1"), addr(999));
        assert!(d.is_bound("svc.x"));
        assert!(d.is_bound("own~a-1"));
        assert!(d.is_bound("cli~b-1"));
        // A remote ephemeral that failed at its recorded address goes.
        d.prune_unreachable_ephemeral(&NodeId::new("cli~b-1"), addr(1));
        assert!(d.entry("cli~b-1").is_none());
        // Evicting the owner deletes its ephemerals outright (no
        // tombstone — they never gossip) and tombstones its named entry.
        let evicted = d.evict_owner(HubId(0xB));
        assert_eq!(evicted, vec![NodeId::new("svc.x")]);
        assert!(d.entry("cli~b-2").is_none());
        assert!(d.entry("svc.x").unwrap().evicted);
    }

    #[test]
    fn delta_against_returns_exactly_the_missing_rows() {
        let a = dir();
        let b = PeerDirectory::new(HubId(0xB));
        a.merge_entry(NodeId::new("only-a"), remote(1, 0xC, 1, false));
        a.merge_entry(NodeId::new("newer-on-a"), remote(2, 0xC, 5, false));
        b.merge_entry(NodeId::new("newer-on-a"), remote(2, 0xC, 3, false));
        b.merge_entry(NodeId::new("only-b"), remote(3, 0xD, 1, false));
        let delta = a.delta_against(&b.snapshot());
        let names: Vec<&str> = delta.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["newer-on-a", "only-a"]);
        // Applying the delta converges b toward a for those rows.
        b.merge_remote(delta);
        assert_eq!(b.entry("newer-on-a").unwrap().version, 5);
        assert!(b.is_bound("only-a"));
    }

    #[test]
    fn fingerprints_agree_exactly_when_converged() {
        let a = dir();
        let b = PeerDirectory::new(HubId(0xB));
        a.merge_entry(NodeId::new("x"), remote(1, 0xC, 1, false));
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.merge_entry(NodeId::new("x"), remote(1, 0xC, 1, false));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Ephemeral names never affect the fingerprint.
        a.bind_local(NodeId::new("cli~9"), addr(7)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn entry_codec_round_trip() {
        let name = NodeId::new("svc.alpha");
        let e = remote(4242, 0xBEEF, 17, true);
        let decoded = entry_from_xml(&entry_to_xml(&name, &e)).unwrap();
        assert_eq!(decoded, (name, e));
        assert!(entry_from_xml(&Element::new("not-entry")).is_none());
        assert!(entry_from_xml(&Element::new("entry").with_attr("name", "x")).is_none());
    }

    #[test]
    fn liveness_event_codec_round_trip() {
        let ev = LivenessEvent {
            hub: HubId(0xCAFE),
            status: PeerStatus::Suspected,
            names: vec![NodeId::new("svc.a"), NodeId::new("svc.b")],
        };
        assert_eq!(LivenessEvent::from_xml(&ev.to_xml()), Some(ev));
        assert!(LivenessEvent::from_xml(&Element::new("other")).is_none());
    }

    #[test]
    fn hub_ids_generate_unique_and_round_trip() {
        let a = HubId::generate();
        let b = HubId::generate();
        assert_ne!(a, HubId::UNKNOWN);
        assert_ne!(a, b);
        assert_eq!(HubId::parse(&a.to_string()), Some(a));
        assert_eq!(HubId::parse("zz"), None);
    }
}
