//! The TCP data plane's outbound side: per-connection frame queues
//! drained by gather-writing connection writers.
//!
//! The old send path wrote each frame under the destination's pool mutex —
//! `write_all(len)` + `write_all(payload)` + `flush`, two-plus syscalls per
//! frame, serialized across every local sender. This module replaces it
//! with one [`ConnQueue`] per destination address: senders *enqueue*
//! serialized frames (enqueue order defines wire order) and return
//! immediately; a per-connection writer thread owns the socket and drains
//! the queue in batches, emitting each batch as a single `writev` of
//! length-prefix + payload [`IoSlice`]s and flushing only on queue-drain
//! boundaries. A 64-frame burst is a handful of syscalls instead of ~128.
//!
//! **Backpressure.** The queue is bounded in frames and bytes. A sender
//! hitting the bound blocks on the queue's `space` condvar until the
//! writer frees room, and errors out after [`ENQUEUE_TIMEOUT`] — queue
//! growth is never unbounded.
//!
//! **Deferred errors.** `Ok` from enqueue means *accepted by the
//! transport*, not delivered (the contract `Endpoint::send` has always
//! documented). When the writer fails — connect refused, both write
//! attempts dead — it records the error, drops the queued frames
//! (counted in [`TransportIoStats::frames_dropped`]), and exits; the
//! *next* send to that destination returns the error (triggering the
//! caller's unreachable-peer pruning) and the one after that starts a
//! fresh writer, matching the old path's reconnect-per-send cadence.
//!
//! **Burst gathering.** A writer that just wrote and sees more frames
//! already queued is chasing a producer mid-burst. Instead of consuming
//! 1–2 frames per wakeup (a near-1:1 syscall chase), it yields for up to
//! [`GATHER_WINDOW`] while the queue grows toward [`GATHER_MIN`] before
//! draining again. A lone frame never waits: the gather only runs when
//! the queue is non-empty right after a write.
//!
//! **Idle retirement.** A writer whose queue stays empty for
//! [`WRITER_IDLE_RETIRE`] retires: it clears its alive flag and exits,
//! dropping the socket, so a hub talking to many mostly-quiet peers
//! carries writer threads proportional to *active* destinations rather
//! than ever-contacted ones. Retirement is not a failure — no error is
//! parked, nothing is dropped — and the next send to the destination
//! lazily respawns a fresh writer through the ordinary spawn path.

use crate::metrics::TransportIoStats;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline for establishing an outbound connection. Off loopback, a dead
/// peer usually blackholes SYNs rather than refusing them, and the OS
/// default connect timeout (~2 minutes on Linux) is far too long to stall
/// a connection writer while discovery probes an unreachable hub.
pub(crate) const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Queue depth bound, in frames.
pub(crate) const MAX_QUEUED_FRAMES: usize = 1024;

/// Queue depth bound, in queued wire bytes — catches few-but-huge frames
/// long before [`MAX_QUEUED_FRAMES`] would.
pub(crate) const MAX_QUEUED_BYTES: usize = 8 * 1024 * 1024;

/// How long a sender may block waiting for queue space before the send
/// fails with backpressure.
const ENQUEUE_TIMEOUT: Duration = Duration::from_secs(5);

/// Frames per writev batch: 2 iovecs each stays well under Linux
/// `IOV_MAX` (1024).
const MAX_BATCH_FRAMES: usize = 256;

/// Queue depth at which the mid-burst gather stops waiting and drains.
const GATHER_MIN: usize = 16;

/// Upper bound on one mid-burst gather pause.
const GATHER_WINDOW: Duration = Duration::from_micros(50);

/// How long a writer waits on an empty queue before retiring (exiting
/// and freeing its thread + socket). The next send respawns one.
pub(crate) const WRITER_IDLE_RETIRE: Duration = Duration::from_secs(5);

/// Consecutive no-growth polls after which a gather concludes the
/// producer has gone quiet and drains early. Polls are lock-free reads
/// separated by `yield_now`, so an actively enqueueing producer shows
/// growth within a poll or two on an idle machine — and within one
/// rescheduling on a fully loaded core, where every extra poll is a pair
/// of context switches. Keep this small: a too-patient gather costs more
/// in switches than it saves in syscalls.
const GATHER_IDLE_POLLS: u32 = 8;

/// Hub-wide data-plane counters feeding
/// [`crate::metrics::MetricsSnapshot::io`]. Updated lock-free by the
/// connection writers.
#[derive(Debug, Default)]
pub(crate) struct IoCounters {
    writev_calls: AtomicU64,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    flushes: AtomicU64,
    frames_dropped: AtomicU64,
    max_batch_frames: AtomicU64,
    backpressure_waits: AtomicU64,
}

impl IoCounters {
    pub(crate) fn snapshot(&self) -> TransportIoStats {
        TransportIoStats {
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            max_batch_frames: self.max_batch_frames.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.writev_calls.store(0, Ordering::Relaxed);
        self.frames_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.frames_dropped.store(0, Ordering::Relaxed);
        self.max_batch_frames.store(0, Ordering::Relaxed);
        self.backpressure_waits.store(0, Ordering::Relaxed);
    }
}

/// One serialized envelope awaiting the wire: its 4-byte big-endian
/// length prefix and the XML payload, kept separate so a batch turns into
/// `IoSlice`s without re-copying.
pub(crate) struct Frame {
    prefix: [u8; 4],
    payload: Vec<u8>,
}

impl Frame {
    pub(crate) fn new(payload: Vec<u8>) -> Frame {
        Frame {
            prefix: (payload.len() as u32).to_be_bytes(),
            payload,
        }
    }

    fn wire_len(&self) -> usize {
        4 + self.payload.len()
    }
}

struct QueueState {
    queue: VecDeque<Frame>,
    /// Wire bytes represented by `queue`.
    queued_bytes: usize,
    /// A writer thread exists for this queue (spawned by the enqueue that
    /// found none; cleared by the writer as it exits).
    writer_alive: bool,
    /// The writer is parked on `work` (lets enqueue skip the notify when
    /// the writer is mid-drain anyway).
    writer_parked: bool,
    /// Terminal: the destination's endpoint dropped or the hub is going
    /// away. The writer drains what is queued, then exits; new sends fail.
    shutdown: bool,
    /// A writer failure not yet reported: taken by the next send, which
    /// fails with it (deferred-error semantics — see the module docs).
    error: Option<String>,
    /// Writer generation. [`ConnQueue::kill`] bumps it to orphan the
    /// running writer: a writer whose captured epoch no longer matches
    /// exits at its next queue touch without mutating state, so the killed
    /// generation can never race the fresh writer a later send spawns.
    epoch: u64,
}

/// The outbound queue of one pooled connection (one destination address).
pub(crate) struct ConnQueue {
    state: Mutex<QueueState>,
    /// Empty-queue park time after which the writer retires (tests
    /// shorten it).
    idle_retire: Duration,
    /// Queue length mirror for the gather heuristic's polling: reading it
    /// must not touch the state mutex, or the poll loop would contend
    /// with the very producer it is waiting for.
    depth: AtomicUsize,
    /// Senders waiting for queue space.
    space: Condvar,
    /// The writer waiting for frames (or shutdown).
    work: Condvar,
}

/// What [`ConnQueue::accept`] decided about writer lifecycle.
#[derive(Debug)]
enum Accepted {
    /// Frame queued; a writer is already running.
    Queued,
    /// Frame queued and the caller must spawn the writer thread, passing
    /// it the epoch it belongs to.
    SpawnWriter(u64),
}

impl ConnQueue {
    pub(crate) fn new() -> ConnQueue {
        Self::with_idle_retire(WRITER_IDLE_RETIRE)
    }

    /// A queue whose writer retires after `idle_retire` of emptiness.
    pub(crate) fn with_idle_retire(idle_retire: Duration) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                queued_bytes: 0,
                writer_alive: false,
                writer_parked: false,
                shutdown: false,
                error: None,
                epoch: 0,
            }),
            idle_retire,
            depth: AtomicUsize::new(0),
            space: Condvar::new(),
            work: Condvar::new(),
        }
    }

    /// Queues one frame for `addr`, spawning the connection writer if none
    /// is running. Blocks (bounded) when the queue is full; fails on
    /// shutdown, on backpressure timeout, or with a deferred writer error
    /// from an earlier send.
    pub(crate) fn enqueue(
        self: &Arc<Self>,
        addr: SocketAddr,
        payload: Vec<u8>,
        io: &Arc<IoCounters>,
    ) -> std::io::Result<()> {
        match self.accept(payload, ENQUEUE_TIMEOUT, io)? {
            Accepted::Queued => {}
            Accepted::SpawnWriter(epoch) => {
                let conn = Arc::clone(self);
                let io = Arc::clone(io);
                std::thread::Builder::new()
                    .name(format!("selfserv-tcp-writer-{addr}"))
                    .spawn(move || writer_loop(&conn, addr, &io, epoch))
                    .expect("spawn tcp connection writer");
            }
        }
        Ok(())
    }

    /// The lock-and-queue half of [`ConnQueue::enqueue`], with the
    /// backpressure wait bounded by `timeout` (tests shorten it). Split
    /// from the thread spawn so queue semantics are testable without
    /// sockets.
    fn accept(
        &self,
        payload: Vec<u8>,
        timeout: Duration,
        io: &IoCounters,
    ) -> std::io::Result<Accepted> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        let mut waited = false;
        loop {
            if let Some(e) = state.error.take() {
                // Deferred writer failure: this send reports it (and the
                // caller prunes the peer); the next send starts fresh.
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, e));
            }
            if state.shutdown {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "connection closed",
                ));
            }
            if state.queue.len() < MAX_QUEUED_FRAMES && state.queued_bytes < MAX_QUEUED_BYTES {
                break;
            }
            // Backpressure: wait (bounded) for the writer to free room.
            // Counted once per blocked send, however many wakeups it takes.
            if !waited {
                waited = true;
                io.backpressure_waits.fetch_add(1, Ordering::Relaxed);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.space.wait_for(&mut state, remaining).timed_out() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    format!(
                        "outbound queue full ({} frames / {} bytes) for {timeout:?}: \
                         destination not draining",
                        state.queue.len(),
                        state.queued_bytes
                    ),
                ));
            }
        }
        let frame = Frame::new(payload);
        state.queued_bytes += frame.wire_len();
        state.queue.push_back(frame);
        self.depth.store(state.queue.len(), Ordering::Relaxed);
        if state.writer_alive {
            if state.writer_parked {
                self.work.notify_one();
            }
            Ok(Accepted::Queued)
        } else {
            state.writer_alive = true;
            Ok(Accepted::SpawnWriter(state.epoch))
        }
    }

    /// Marks the connection closed: the writer drains what is already
    /// queued and exits; senders blocked on space (and all future sends)
    /// fail. Does not wait for the drain.
    pub(crate) fn shutdown(&self) {
        let mut state = self.state.lock();
        state.shutdown = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Chaos hook: abruptly severs the connection. Unlike
    /// [`ConnQueue::shutdown`], nothing drains — queued frames are dropped
    /// (counted in `frames_dropped`), the running writer is orphaned by an
    /// epoch bump (it exits at its next queue touch, closing its socket
    /// and, with it, the peer's reader thread), and `reason` is parked as
    /// the deferred error: the next send reports `BrokenPipe` (triggering
    /// the caller's unreachable-peer pruning) and the one after that
    /// spawns a fresh writer — the exact path a mid-burst peer death
    /// exercises.
    pub(crate) fn kill(&self, reason: &str, io: &IoCounters) {
        let mut state = self.state.lock();
        state.epoch += 1;
        io.frames_dropped
            .fetch_add(state.queue.len() as u64, Ordering::Relaxed);
        state.queue.clear();
        state.queued_bytes = 0;
        self.depth.store(0, Ordering::Relaxed);
        state.error = Some(reason.to_string());
        state.writer_alive = false;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Queue length right now, read lock-free from the mirror (the gather
    /// heuristic's probe, the writer's drain-boundary check, and the
    /// hub-wide queued-frames gauge; updated under the state lock, so it
    /// never lags a settled queue).
    pub(crate) fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Takes the next batch to write, parking until frames arrive. `None`
    /// means the writer exits: shutdown with a drained queue, the
    /// writer's epoch was retired by [`ConnQueue::kill`], or the queue
    /// sat empty for the idle window and the writer retires (the next
    /// send respawns one).
    fn next_batch(&self, epoch: u64) -> Option<Vec<Frame>> {
        let mut state = self.state.lock();
        loop {
            if state.epoch != epoch {
                // Killed. A successor writer may already be running, so
                // leave all state (including `writer_alive`) alone.
                return None;
            }
            if !state.queue.is_empty() {
                let take = state.queue.len().min(MAX_BATCH_FRAMES);
                let batch: Vec<Frame> = state.queue.drain(..take).collect();
                state.queued_bytes -= batch.iter().map(Frame::wire_len).sum::<usize>();
                self.depth.store(state.queue.len(), Ordering::Relaxed);
                self.space.notify_all();
                return Some(batch);
            }
            if state.shutdown {
                state.writer_alive = false;
                return None;
            }
            state.writer_parked = true;
            let timed_out = self.work.wait_for(&mut state, self.idle_retire).timed_out();
            state.writer_parked = false;
            if timed_out && state.queue.is_empty() && !state.shutdown && state.epoch == epoch {
                // Idle retirement: free the slot so the next send spawns
                // a successor. Not a failure — no error is parked.
                state.writer_alive = false;
                return None;
            }
        }
    }

    /// Records a fatal writer failure: the queued frames are dropped (the
    /// `unsent` count from the failed batch plus whatever is still
    /// queued), the error is parked for the next sender, and the writer
    /// slot frees so that sender's successor can start a fresh one. A
    /// writer whose epoch was retired only counts its in-hand frames — the
    /// queue now belongs to its successor.
    fn fail(&self, epoch: u64, unsent: usize, err: &std::io::Error, io: &IoCounters) {
        let mut state = self.state.lock();
        if state.epoch != epoch {
            io.frames_dropped
                .fetch_add(unsent as u64, Ordering::Relaxed);
            return;
        }
        let dropped = unsent + state.queue.len();
        io.frames_dropped
            .fetch_add(dropped as u64, Ordering::Relaxed);
        state.queue.clear();
        state.queued_bytes = 0;
        self.depth.store(0, Ordering::Relaxed);
        state.error = Some(err.to_string());
        state.writer_alive = false;
        self.space.notify_all();
    }
}

/// The per-connection writer: owns the socket, drains the queue in
/// batches, gathers mid-burst, writes each batch as one (or few, under
/// short writes) `writev`, flushes on drain boundaries, reconnects once
/// per established stream on write failure.
fn writer_loop(conn: &Arc<ConnQueue>, addr: SocketAddr, io: &Arc<IoCounters>, epoch: u64) {
    let mut stream: Option<TcpStream> = None;
    let mut just_wrote = false;
    loop {
        if just_wrote {
            gather(conn);
        }
        let Some(batch) = conn.next_batch(epoch) else {
            return; // shutdown with a drained queue, or killed (epoch retired)
        };
        // Connect outside the queue lock: senders keep enqueueing while we
        // dial (the whole point of the asynchronous write path).
        let established = stream.is_some();
        if stream.is_none() {
            match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    stream = Some(s);
                }
                Err(e) => {
                    conn.fail(epoch, batch.len(), &e, io);
                    return;
                }
            }
        }
        let mut pos = 0;
        if let Err(_first) = write_batch(stream.as_mut().expect("connected"), &batch, &mut pos, io)
        {
            // A stream that carried earlier batches may simply have been
            // closed by a restarted peer: reconnect once and resend from
            // the first frame the old socket did not fully accept. A
            // freshly connected stream failing gets no retry.
            let rest = &batch[completed_frames(&batch, pos)..];
            if !established {
                conn.fail(epoch, rest.len(), &_first, io);
                return;
            }
            match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                Ok(mut s) => {
                    s.set_nodelay(true).ok();
                    let mut pos = 0;
                    match write_batch(&mut s, rest, &mut pos, io) {
                        Ok(()) => stream = Some(s),
                        Err(e) => {
                            conn.fail(epoch, rest.len() - completed_frames(rest, pos), &e, io);
                            return;
                        }
                    }
                }
                Err(e) => {
                    conn.fail(epoch, rest.len(), &e, io);
                    return;
                }
            }
        }
        io.frames_sent
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        io.bytes_sent.fetch_add(
            batch.iter().map(Frame::wire_len).sum::<usize>() as u64,
            Ordering::Relaxed,
        );
        io.max_batch_frames
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        // Flush on queue-drain boundaries only: mid-burst batches flow
        // into the next writev.
        if conn.len() == 0 {
            if let Some(s) = stream.as_mut() {
                if s.flush().is_ok() {
                    io.flushes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        just_wrote = true;
    }
}

/// Mid-burst gather: when frames are already queued right after a write,
/// the producer is still bursting — yield briefly while the queue grows
/// toward [`GATHER_MIN`] so the burst coalesces into few writevs instead
/// of a near-1:1 syscall chase. Returns immediately when the queue is
/// empty (lone frames never wait) or the producer pauses.
fn gather(conn: &ConnQueue) {
    let mut seen = conn.len();
    if seen == 0 {
        return;
    }
    let deadline = Instant::now() + GATHER_WINDOW;
    let mut idle_polls = 0u32;
    while seen < GATHER_MIN && Instant::now() < deadline {
        std::thread::yield_now();
        let now = conn.len();
        if now > seen {
            seen = now;
            idle_polls = 0;
        } else {
            // The producer went quiet: a pause many polls long means the
            // burst (or this stretch of it) is over — drain what we have
            // instead of sitting out the window.
            idle_polls += 1;
            if idle_polls >= GATHER_IDLE_POLLS {
                return;
            }
        }
    }
}

/// Builds the `IoSlice` list for `batch` starting at wire offset `pos`
/// (skipping fully and partially written leading bytes).
fn gather_slices(batch: &[Frame], pos: usize) -> Vec<IoSlice<'_>> {
    let mut slices = Vec::with_capacity((batch.len() * 2).min(64));
    let mut skip = pos;
    for frame in batch {
        if skip >= frame.wire_len() {
            skip -= frame.wire_len();
            continue;
        }
        if skip < 4 {
            slices.push(IoSlice::new(&frame.prefix[skip..]));
            slices.push(IoSlice::new(&frame.payload));
        } else {
            slices.push(IoSlice::new(&frame.payload[skip - 4..]));
        }
        skip = 0;
    }
    slices
}

/// Number of leading frames of `batch` fully covered by `pos` written
/// bytes — the resume boundary after a mid-batch write failure.
fn completed_frames(batch: &[Frame], pos: usize) -> usize {
    let mut remaining = pos;
    let mut done = 0;
    for frame in batch {
        if remaining < frame.wire_len() {
            break;
        }
        remaining -= frame.wire_len();
        done += 1;
    }
    done
}

/// Writes `batch` from wire offset `*pos` to completion, advancing `*pos`
/// by whatever each `write_vectored` accepts — short writevs (partial
/// writes) resume mid-frame, mid-prefix included. Each vectored call is
/// one counted syscall.
fn write_batch(
    w: &mut impl Write,
    batch: &[Frame],
    pos: &mut usize,
    io: &IoCounters,
) -> std::io::Result<()> {
    let total: usize = batch.iter().map(Frame::wire_len).sum();
    while *pos < total {
        let slices = gather_slices(batch, *pos);
        let n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "writev accepted zero bytes",
            ));
        }
        io.writev_calls.fetch_add(1, Ordering::Relaxed);
        *pos += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn frames(payloads: &[&str]) -> Vec<Frame> {
        payloads
            .iter()
            .map(|p| Frame::new(p.as_bytes().to_vec()))
            .collect()
    }

    fn wire_image(batch: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in batch {
            out.extend_from_slice(&f.prefix);
            out.extend_from_slice(&f.payload);
        }
        out
    }

    /// A `Write` that accepts at most `cap` bytes per vectored call — the
    /// short-writev adversary.
    struct ShortWriter {
        written: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.written.extend_from_slice(&buf[..n]);
            self.calls += 1;
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.calls += 1;
            let mut budget = self.cap;
            let mut n = 0;
            for buf in bufs {
                let take = buf.len().min(budget);
                self.written.extend_from_slice(&buf[..take]);
                n += take;
                budget -= take;
                if budget == 0 {
                    break;
                }
            }
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn batch_writes_as_single_vectored_call_when_accepted_whole() {
        let batch = frames(&["alpha", "bravo", "charlie"]);
        let io = IoCounters::default();
        let mut w = ShortWriter {
            written: Vec::new(),
            cap: usize::MAX,
            calls: 0,
        };
        let mut pos = 0;
        write_batch(&mut w, &batch, &mut pos, &io).unwrap();
        assert_eq!(w.written, wire_image(&batch));
        assert_eq!(w.calls, 1, "a cooperative sink needs exactly one writev");
        assert_eq!(io.snapshot().writev_calls, 1);
    }

    #[test]
    fn short_writes_resume_mid_frame_and_mid_prefix() {
        let batch = frames(&["alpha", "bravo", "charlie"]);
        let total = wire_image(&batch).len();
        // Every cap from 1 byte (resumes inside length prefixes) upward
        // must reproduce the exact wire image.
        for cap in [1, 2, 3, 5, 7, 11] {
            let io = IoCounters::default();
            let mut w = ShortWriter {
                written: Vec::new(),
                cap,
                calls: 0,
            };
            let mut pos = 0;
            write_batch(&mut w, &batch, &mut pos, &io).unwrap();
            assert_eq!(w.written, wire_image(&batch), "cap {cap}");
            assert_eq!(pos, total);
            assert_eq!(w.calls, total.div_ceil(cap), "cap {cap}");
        }
    }

    #[test]
    fn completed_frames_resume_boundary() {
        let batch = frames(&["aa", "bbbb", "c"]);
        // wire lens: 6, 8, 5
        assert_eq!(completed_frames(&batch, 0), 0);
        assert_eq!(completed_frames(&batch, 5), 0, "mid-frame is incomplete");
        assert_eq!(completed_frames(&batch, 6), 1);
        assert_eq!(completed_frames(&batch, 13), 1, "mid-second-frame");
        assert_eq!(completed_frames(&batch, 14), 2);
        assert_eq!(completed_frames(&batch, 19), 3);
    }

    #[test]
    fn backpressure_blocks_then_errors_at_full_queue() {
        let conn = ConnQueue::new();
        let io = IoCounters::default();
        // Fill to the frame bound without any writer running; mark the
        // writer alive so `accept` never asks us to spawn one.
        conn.state.lock().writer_alive = true;
        for _ in 0..MAX_QUEUED_FRAMES {
            conn.accept(b"x".to_vec(), Duration::from_millis(1), &io)
                .unwrap();
        }
        assert_eq!(io.snapshot().backpressure_waits, 0, "no waits while room");
        // Full: a bounded wait times out with a backpressure error.
        let err = conn
            .accept(b"overflow".to_vec(), Duration::from_millis(30), &io)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(conn.state.lock().queue.len(), MAX_QUEUED_FRAMES);
        assert_eq!(io.snapshot().backpressure_waits, 1, "blocked send counted");
    }

    #[test]
    fn backpressure_wakes_when_writer_frees_space() {
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        conn.state.lock().writer_alive = true;
        for _ in 0..MAX_QUEUED_FRAMES {
            conn.accept(b"x".to_vec(), Duration::from_millis(1), &io)
                .unwrap();
        }
        let sender = {
            let conn = Arc::clone(&conn);
            let io = Arc::clone(&io);
            std::thread::spawn(move || conn.accept(b"late".to_vec(), Duration::from_secs(10), &io))
        };
        // Give the sender time to block, then drain a batch like the
        // writer would.
        std::thread::sleep(Duration::from_millis(30));
        let batch = conn.next_batch(0).expect("queue is non-empty");
        assert!(!batch.is_empty());
        let accepted = sender.join().unwrap();
        assert!(matches!(accepted, Ok(Accepted::Queued)));
        assert_eq!(
            io.snapshot().backpressure_waits,
            1,
            "one wait even across multiple wakeups"
        );
    }

    #[test]
    fn byte_bound_backpressures_before_frame_bound() {
        let conn = ConnQueue::new();
        let io = IoCounters::default();
        conn.state.lock().writer_alive = true;
        // 4 MiB frames: the byte bound (8 MiB) trips after two frames,
        // far below MAX_QUEUED_FRAMES.
        for _ in 0..2 {
            conn.accept(vec![0u8; 4 << 20], Duration::from_millis(1), &io)
                .unwrap();
        }
        let err = conn
            .accept(vec![0u8; 16], Duration::from_millis(20), &io)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn shutdown_fails_new_sends_and_wakes_blocked_senders() {
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        conn.state.lock().writer_alive = true;
        for _ in 0..MAX_QUEUED_FRAMES {
            conn.accept(b"x".to_vec(), Duration::from_millis(1), &io)
                .unwrap();
        }
        let blocked = {
            let conn = Arc::clone(&conn);
            let io = Arc::clone(&io);
            std::thread::spawn(move || conn.accept(b"late".to_vec(), Duration::from_secs(10), &io))
        };
        std::thread::sleep(Duration::from_millis(30));
        conn.shutdown();
        let err = blocked.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        assert_eq!(
            conn.accept(b"new".to_vec(), Duration::from_millis(1), &io)
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::ConnectionAborted
        );
    }

    #[test]
    fn writer_drains_queue_on_shutdown() {
        // Real sockets: enqueue a pile of frames, immediately shut the
        // queue down, and assert every frame still reaches the listener —
        // shutdown drains, it does not discard.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut all = Vec::new();
            stream.read_to_end(&mut all).unwrap();
            all
        });
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        let mut expected = Vec::new();
        for i in 0..100 {
            let payload = format!("frame-{i}").into_bytes();
            expected.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            expected.extend_from_slice(&payload);
            conn.enqueue(addr, payload, &io).unwrap();
        }
        conn.shutdown();
        assert_eq!(reader.join().unwrap(), expected, "drained in order");
        assert_eq!(io.snapshot().frames_sent, 100);
        assert_eq!(io.snapshot().frames_dropped, 0);
        assert!(
            io.snapshot().writev_calls <= 100,
            "coalescing never exceeds one writev per frame"
        );
    }

    #[test]
    fn idle_writer_retires_and_next_send_respawns_it() {
        // One frame, then silence past the (shortened) idle window: the
        // writer retires cleanly. A later send to the same destination
        // must still deliver — via a lazily respawned writer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut images = Vec::new();
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut all = Vec::new();
                stream.read_to_end(&mut all).unwrap();
                images.push(all);
            }
            images
        });
        let conn = Arc::new(ConnQueue::with_idle_retire(Duration::from_millis(40)));
        let io = Arc::new(IoCounters::default());
        conn.enqueue(addr, b"first".to_vec(), &io).unwrap();
        let t0 = Instant::now();
        while conn.state.lock().writer_alive && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let state = conn.state.lock();
            assert!(!state.writer_alive, "idle writer retired");
            assert!(state.error.is_none(), "retirement is not a failure");
            assert!(!state.shutdown, "queue stays open");
            assert_eq!(state.epoch, 0, "retirement is not a kill");
        }
        conn.enqueue(addr, b"second".to_vec(), &io).unwrap();
        conn.shutdown();
        let images = reader.join().unwrap();
        assert_eq!(images[0], wire_image(&frames(&["first"])));
        assert_eq!(
            images[1],
            wire_image(&frames(&["second"])),
            "respawned writer delivers"
        );
        assert_eq!(io.snapshot().frames_sent, 2);
        assert_eq!(io.snapshot().frames_dropped, 0);
    }

    #[test]
    fn writer_failure_is_deferred_to_the_next_send() {
        // Port 1 refuses connections. The first enqueue is accepted (the
        // error has nowhere to surface yet); once the writer has died, the
        // next send reports the connect failure; the one after that starts
        // a fresh writer and is accepted again.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        conn.enqueue(addr, b"doomed".to_vec(), &io).unwrap();
        let t0 = Instant::now();
        while conn.state.lock().error.is_none() && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = conn.enqueue(addr, b"probe".to_vec(), &io).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(io.snapshot().frames_dropped, 1, "the doomed frame");
        // Error consumed: the next send retries with a fresh writer.
        conn.enqueue(addr, b"retry".to_vec(), &io).unwrap();
        conn.shutdown();
    }

    #[test]
    fn kill_drops_queue_defers_error_and_orphans_the_writer() {
        // A listener that accepts but never reads: the writer connects and
        // stalls with frames queued behind the kernel buffers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _hold = std::thread::spawn(move || listener.accept());
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        for i in 0..8 {
            conn.enqueue(addr, format!("burst-{i}").into_bytes(), &io)
                .unwrap();
        }
        conn.kill("chaos", &io);
        // Deferred error: the next send reports the kill as BrokenPipe.
        let err = conn.enqueue(addr, b"probe".to_vec(), &io).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(err.to_string(), "chaos");
        // The send after starts a fresh writer generation and is accepted.
        conn.enqueue(addr, b"fresh".to_vec(), &io).unwrap();
        {
            let state = conn.state.lock();
            assert_eq!(state.epoch, 1);
            assert!(state.writer_alive, "successor writer spawned");
        }
        conn.shutdown();
    }

    #[test]
    fn stale_writer_cannot_fail_the_successor_queue() {
        let conn = Arc::new(ConnQueue::new());
        let io = Arc::new(IoCounters::default());
        conn.state.lock().writer_alive = true;
        conn.accept(b"x".to_vec(), Duration::from_millis(5), &io)
            .unwrap();
        conn.kill("chaos", &io);
        let _ = conn.state.lock().error.take();
        conn.accept(b"next-gen".to_vec(), Duration::from_millis(5), &io)
            .unwrap();
        // A writer from epoch 0 reporting a failure after the kill must
        // not clear the successor's queue or park a stale error.
        let stale_err = std::io::Error::other("stale");
        conn.fail(0, 3, &stale_err, &io);
        let state = conn.state.lock();
        assert_eq!(state.queue.len(), 1, "successor queue untouched");
        assert!(state.error.is_none(), "no stale error parked");
        // But the stale writer's in-hand frames are still counted lost.
        assert_eq!(io.snapshot().frames_dropped, 1 + 3);
        // And a stale next_batch call exits without touching writer_alive.
        drop(state);
        assert!(conn.next_batch(0).is_none());
        assert!(conn.state.lock().writer_alive);
    }
}
