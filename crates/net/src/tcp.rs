//! TCP transport: the same envelopes over real sockets.
//!
//! The original platform exchanged its XML documents "through Java
//! sockets". This module carries [`Envelope`]s as length-prefixed XML over
//! `std::net` TCP and implements the full [`Transport`] seam, so every
//! SELF-SERV component — coordinators, wrappers, communities, registries,
//! the centralized baseline — runs over real sockets exactly as it runs
//! over the in-process fabric.
//!
//! * [`TcpTransport`] — one listener per connected node (loopback,
//!   ephemeral ports by default), a shared name → address registry, and a
//!   pool of persistent per-peer connections carrying many frames each.
//!   Request/response rides the caller's own listener: the request frame
//!   carries the caller's node name as the reply address and the reader
//!   thread demultiplexes the correlated reply to the blocked rpc, so an
//!   rpc costs two frames on pooled connections — no per-call listener,
//!   socket, or thread. [`TcpTransport::register_peer`] points names at
//!   other processes; registering names in both directions gives full rpc
//!   round trips across process boundaries.
//! * [`TcpEndpoint`] — the original minimal one-connection-per-message
//!   endpoint, kept for the low-level `tcp_demo` example and wire tests.
//!
//! Framing is `u32` big-endian length + UTF-8 XML. A frame longer than
//! `MAX_FRAME` poisons the stream position, so readers **close the
//! connection** on any malformed frame instead of trying to resynchronize
//! mid-stream.

use crate::envelope::{Envelope, MessageId, NodeId};
use crate::metrics::{MetricsSnapshot, NodeCounters};
use crate::transport::{
    ConnectError, Endpoint, Inbox, Mailbox, RawEndpoint, RecvError, ReplyDemux, SendError,
    Transport, TransportHandle,
};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use selfserv_xml::Element;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed XML frame.
pub fn write_frame(stream: &mut impl Write, envelope: &Envelope) -> std::io::Result<()> {
    write_raw_frame(stream, envelope.to_xml().to_xml().as_bytes())
}

/// Writes an already-serialized payload as one length-prefixed frame.
fn write_raw_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed XML frame.
///
/// Any error leaves the stream position undefined (an oversized length
/// prefix is rejected *without* consuming the body), so callers must treat
/// every error as fatal for the connection and close it — never continue
/// reading frames from the same stream.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Envelope> {
    read_frame_sized(stream).map(|(env, _)| env)
}

/// [`read_frame`] variant also returning the payload size in bytes (what
/// the metrics layer charges to the link).
fn read_frame_sized(stream: &mut impl Read) -> std::io::Result<(Envelope, usize)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit; closing connection"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let xml = selfserv_xml::parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let env = Envelope::from_xml(&xml)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok((env, len as usize))
}

// ---------------------------------------------------------------------------
// TcpTransport: the full Transport seam over real sockets
// ---------------------------------------------------------------------------

/// One destination's outbound connection; `None` until the first send (or
/// after a broken pipe).
type ConnectionSlot = Arc<Mutex<Option<TcpStream>>>;

struct Hub {
    /// Node name → listener address. Local connects insert here;
    /// [`TcpTransport::register_peer`] points names at remote processes.
    registry: RwLock<HashMap<NodeId, SocketAddr>>,
    /// Per-node traffic counters; persist after disconnect, like the
    /// fabric's.
    counters: RwLock<HashMap<NodeId, Arc<NodeCounters>>>,
    /// Persistent outbound connections, one slot per destination address,
    /// shared by every local sender (frames carry their own `from`). The
    /// connection lives *inside* the slot mutex so exactly one connection
    /// per destination ever carries frames — per-sender in-order delivery
    /// depends on all writers serializing through it.
    pool: Mutex<HashMap<SocketAddr, ConnectionSlot>>,
    next_msg: AtomicU64,
    next_anon: AtomicU64,
}

impl Hub {
    fn next_id(&self) -> MessageId {
        MessageId(self.next_msg.fetch_add(1, Ordering::Relaxed))
    }

    fn counters_for(&self, node: &NodeId) -> Arc<NodeCounters> {
        if let Some(c) = self.counters.read().get(node) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(node.clone())
                .or_insert_with(|| Arc::new(NodeCounters::default())),
        )
    }

    /// Writes one already-serialized frame to `addr` over the pooled
    /// connection, opening (or reopening, once) the connection as needed.
    /// Connecting happens while holding the destination's slot lock, so
    /// two concurrent first-senders cannot open two connections and race
    /// their frames through different reader threads out of order.
    fn send_frame(&self, addr: SocketAddr, payload: &[u8]) -> std::io::Result<()> {
        let slot: ConnectionSlot = {
            let mut pool = self.pool.lock();
            Arc::clone(pool.entry(addr).or_default())
        };
        let mut conn = slot.lock();
        if let Some(stream) = conn.as_mut() {
            if write_raw_frame(stream, payload).is_ok() {
                return Ok(());
            }
            // Broken pipe (peer restarted or dropped): reconnect below.
            *conn = None;
        }
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_raw_frame(&mut stream, payload)?;
        *conn = Some(stream);
        Ok(())
    }

    fn dispatch(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let addr = match self.registry.read().get(&to) {
            Some(a) => *a,
            None => return Err(SendError::UnknownNode(to)),
        };
        let envelope = Envelope {
            id,
            from: from.clone(),
            to,
            kind,
            correlation,
            body,
        };
        // Serialize exactly once: the frame bytes are also the byte count
        // the metrics layer charges, so sender and receiver sizes match by
        // construction.
        let xml = envelope.to_xml().to_xml();
        let payload = xml.as_bytes();
        // Enforce the frame limit on the *send* side: the receiver would
        // reject the length prefix and close the shared pooled connection,
        // losing this and possibly in-flight messages with no diagnostic.
        if payload.len() > MAX_FRAME as usize {
            return Err(SendError::Transport(format!(
                "envelope of {} bytes exceeds the {MAX_FRAME}-byte frame limit",
                payload.len()
            )));
        }
        self.send_frame(addr, payload)
            .map_err(|e| SendError::Transport(format!("send to {addr} failed: {e}")))?;
        self.counters_for(from).record_send(payload.len());
        Ok(envelope.id)
    }
}

/// A [`Transport`] over real TCP sockets. Cheap to clone (shared handle).
///
/// Every [`Transport::connect`] binds a loopback listener on an ephemeral
/// port and registers the node's address in the shared registry, so all
/// nodes of one `TcpTransport` can reach each other by name. For
/// multi-process deployments, exchange [`TcpTransport::addr_of`] results
/// out of band and register them with [`TcpTransport::register_peer`].
#[derive(Clone)]
pub struct TcpTransport {
    hub: Arc<Hub>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates an empty TCP transport.
    pub fn new() -> Self {
        TcpTransport {
            hub: Arc::new(Hub {
                registry: RwLock::new(HashMap::new()),
                counters: RwLock::new(HashMap::new()),
                pool: Mutex::new(HashMap::new()),
                next_msg: AtomicU64::new(1),
                next_anon: AtomicU64::new(1),
            }),
        }
    }

    /// The listener address of a locally connected (or registered) node.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.hub.registry.read().get(&NodeId::new(name)).copied()
    }

    /// Registers a remote node's address so local nodes can send to it by
    /// name (the cross-process analogue of the peer connecting locally).
    ///
    /// Request frames carry the caller's node name as the reply address,
    /// so once two hubs register each other's names (exchange
    /// [`TcpTransport::addr_of`] results out of band, both directions), an
    /// rpc from a node in one process to a node in the other completes a
    /// full round trip: the responder's `reply` is a named send back to
    /// the caller, whose reader thread demultiplexes it to the waiting
    /// rpc. One-way named sends need only the destination registered.
    pub fn register_peer(&self, name: impl Into<NodeId>, addr: SocketAddr) {
        self.hub.registry.write().insert(name.into(), addr);
    }

    fn connect_node(&self, name: NodeId) -> Result<Endpoint, ConnectError> {
        // Bind outside the registry lock: syscalls under the write lock
        // would stall every concurrent send's registry read. A collision
        // after binding just drops the fresh listener.
        let listener = match TcpListener::bind(("127.0.0.1", 0)) {
            Ok(l) => l,
            Err(e) => return Err(ConnectError::Bind(name, e)),
        };
        let addr = match listener.local_addr() {
            Ok(a) => a,
            Err(e) => return Err(ConnectError::Bind(name, e)),
        };
        {
            let mut registry = self.hub.registry.write();
            if registry.contains_key(&name) {
                return Err(ConnectError::NameTaken(name));
            }
            registry.insert(name.clone(), addr);
        }
        let counters = self.hub.counters_for(&name);
        let (tx, rx) = channel::unbounded();
        let demux = ReplyDemux::new();
        let inbox = Inbox::new(tx, Arc::clone(&demux));
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("selfserv-tcp-{name}"))
            .spawn(move || accept_loop(listener, inbox, counters, flag))
            .expect("spawn tcp accept thread");
        let raw = TcpRawEndpoint {
            node: name,
            hub: Arc::clone(&self.hub),
            addr,
            mailbox: Mailbox::new(rx),
            shutdown,
            accept_thread: Some(accept_thread),
        };
        Ok(Endpoint::from_raw(
            Box::new(raw),
            TransportHandle::new(self.clone()),
            demux,
        ))
    }
}

impl Transport for TcpTransport {
    fn connect(&self, name: NodeId) -> Result<Endpoint, ConnectError> {
        // `~` is reserved for transport-generated ephemeral endpoints
        // (their counters are pruned on drop, which would silently lose a
        // real node's metrics).
        if name.as_str().contains('~') {
            return Err(ConnectError::ReservedName(name));
        }
        self.connect_node(name)
    }

    fn connect_anonymous(&self, prefix: &str) -> Endpoint {
        // Anonymous endpoints back auxiliary identities (clients, control
        // senders), not rpcs, so contention is low — but transient
        // fd/ephemeral-port exhaustion still gets bounded retries with
        // capped exponential backoff (fast first retries for blips, the
        // old worst-case pause only once exhaustion persists) before the
        // failure is treated as fatal.
        let mut backoff = Backoff::new(Duration::from_micros(250), Duration::from_millis(10));
        let mut bind_failures = 0u32;
        loop {
            let n = self.hub.next_anon.fetch_add(1, Ordering::Relaxed);
            match self.connect_node(NodeId::new(format!("{prefix}~{n}"))) {
                Ok(ep) => return ep,
                Err(ConnectError::NameTaken(_) | ConnectError::ReservedName(_)) => {
                    // Collision (e.g. a peer registration): next counter.
                }
                Err(ConnectError::Bind(name, e)) => {
                    bind_failures += 1;
                    if bind_failures >= 100 {
                        panic!(
                            "failed to bind a TCP listener for ephemeral node '{name}' \
                             after {bind_failures} attempts: {e}"
                        );
                    }
                    backoff.sleep();
                }
            }
        }
    }

    fn is_connected(&self, name: &str) -> bool {
        self.hub.registry.read().contains_key(&NodeId::new(name))
    }

    fn node_names(&self) -> Vec<NodeId> {
        let mut names: Vec<NodeId> = self.hub.registry.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn next_message_id(&self) -> MessageId {
        self.hub.next_id()
    }

    fn send_prepared(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<(), SendError> {
        self.hub
            .dispatch(id, from, to, kind, body, correlation)
            .map(|_| ())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let counters = self.hub.counters.read();
        MetricsSnapshot::collect(counters.iter().map(|(k, v)| (k, v.as_ref())))
    }

    fn reset_metrics(&self) {
        for c in self.hub.counters.read().values() {
            c.reset();
        }
    }

    fn handle(&self) -> TransportHandle {
        TransportHandle::new(self.clone())
    }
}

struct TcpRawEndpoint {
    node: NodeId,
    hub: Arc<Hub>,
    addr: SocketAddr,
    mailbox: Mailbox,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RawEndpoint for TcpRawEndpoint {
    fn node(&self) -> &NodeId {
        &self.node
    }

    fn send(
        &self,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let id = self.hub.next_id();
        self.hub
            .dispatch(id, &self.node, to, kind, body, correlation)
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        self.mailbox.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.mailbox.recv_timeout(timeout)
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.mailbox.try_recv()
    }

    fn pending(&self) -> usize {
        self.mailbox.pending()
    }
}

impl Drop for TcpRawEndpoint {
    fn drop(&mut self) {
        // Free the name (only if it still points at this listener — a
        // peer registration may have replaced it).
        {
            let mut registry = self.hub.registry.write();
            if registry.get(&self.node) == Some(&self.addr) {
                registry.remove(&self.node);
            }
        }
        stop_accept_thread(self.addr, &self.shutdown, &mut self.accept_thread);
        // Close pooled connections to this node so peer reader threads see
        // EOF promptly instead of lingering on a dead stream.
        self.hub.pool.lock().remove(&self.addr);
        crate::metrics::fold_ephemeral(&mut self.hub.counters.write(), &self.node);
    }
}

/// Shared listener teardown: raise the shutdown flag, poke the listener so
/// the accept loop observes it, then *join* the thread (leaked accept
/// threads used to accumulate across test runs). If the poke cannot
/// connect (fd/port exhaustion), detach instead — the loop would never
/// observe the flag and the join would deadlock teardown.
fn stop_accept_thread(
    addr: SocketAddr,
    shutdown: &AtomicBool,
    accept_thread: &mut Option<JoinHandle<()>>,
) {
    shutdown.store(true, Ordering::SeqCst);
    let poked = TcpStream::connect(addr).is_ok();
    if let Some(thread) = accept_thread.take() {
        if poked {
            let _ = thread.join();
        }
    }
}

/// Capped exponential backoff for transient-resource retry loops (fd and
/// ephemeral-port exhaustion): starts near-instant so one-off blips cost
/// microseconds, doubles toward `cap` so a persistently exhausted host
/// isn't hammered. A success path calls [`Backoff::reset`].
struct Backoff {
    next: Duration,
    initial: Duration,
    cap: Duration,
}

impl Backoff {
    fn new(initial: Duration, cap: Duration) -> Backoff {
        Backoff {
            next: initial,
            initial,
            cap,
        }
    }

    fn sleep(&mut self) {
        std::thread::sleep(self.next);
        self.next = (self.next * 2).min(self.cap);
    }

    fn reset(&mut self) {
        self.next = self.initial;
    }
}

/// Shared accept skeleton: hand each accepted connection to `handle`,
/// exit when the shutdown flag is raised, back off (capped exponential)
/// on persistent accept errors (e.g. fd exhaustion) instead of spinning
/// hot or always paying the worst-case pause.
fn accept_connections(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    mut handle: impl FnMut(TcpStream),
) {
    let mut backoff = Backoff::new(Duration::from_micros(250), Duration::from_millis(10));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else {
            backoff.sleep();
            continue;
        };
        backoff.reset();
        handle(stream);
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: Inbox,
    counters: Arc<NodeCounters>,
    shutdown: Arc<AtomicBool>,
) {
    accept_connections(listener, shutdown, move |mut stream| {
        stream.set_nodelay(true).ok();
        let inbox = inbox.clone();
        let counters = Arc::clone(&counters);
        // Persistent per-peer framing: one reader per inbound connection
        // decodes frames until the peer closes or a frame is malformed.
        // Delivery demultiplexes rpc replies to their waiting callers.
        std::thread::spawn(move || loop {
            match read_frame_sized(&mut stream) {
                Ok((envelope, size)) => {
                    counters.record_receive(size);
                    if inbox.deliver(envelope).is_err() {
                        return; // endpoint dropped
                    }
                }
                // EOF, oversized, or corrupt frame: the stream position is
                // unreliable from here on — close the connection rather
                // than desynchronize mid-frame. The sender's pool will
                // reconnect on its next send.
                Err(_) => return,
            }
        });
    });
}

// ---------------------------------------------------------------------------
// TcpEndpoint: minimal one-connection-per-message endpoint
// ---------------------------------------------------------------------------

/// A minimal TCP endpoint: listens on a local address and queues inbound
/// envelopes, one short-lived connection per message (like the original's
/// short-lived socket exchanges). For the full platform-over-TCP seam use
/// [`TcpTransport`] instead.
pub struct TcpEndpoint {
    addr: SocketAddr,
    rx: Receiver<Envelope>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread.
    pub fn bind(addr: &str) -> std::io::Result<TcpEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = channel::unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("selfserv-tcp-{local}"))
            .spawn(move || one_shot_accept_loop(listener, tx, flag))?;
        Ok(TcpEndpoint {
            addr: local,
            rx,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends an envelope to a remote TCP endpoint.
    pub fn send_to(addr: &str, envelope: &Envelope) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, envelope)
    }

    /// Receives the next envelope, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        stop_accept_thread(self.addr, &self.shutdown, &mut self.accept_thread);
    }
}

fn one_shot_accept_loop(listener: TcpListener, tx: Sender<Envelope>, shutdown: Arc<AtomicBool>) {
    accept_connections(listener, shutdown, move |mut stream| {
        let tx = tx.clone();
        // One short-lived connection per message; decode on a worker thread
        // so a slow peer cannot stall accepts. Any frame error (including
        // oversized frames) closes the connection.
        std::thread::spawn(move || {
            stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
            if let Ok(env) = read_frame(&mut stream) {
                let _ = tx.send(env);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{MessageId, NodeId};
    use selfserv_xml::Element;

    fn env(kind: &str) -> Envelope {
        Envelope {
            id: MessageId(1),
            from: NodeId::new("tcp.a"),
            to: NodeId::new("tcp.b"),
            kind: kind.to_string(),
            correlation: None,
            body: Element::new("payload").with_attr("x", "1"),
        }
    }

    #[test]
    fn frame_round_trip_in_memory() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &env("test")).unwrap();
        let decoded = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, env("test"));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not x");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn tcp_send_receive() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        TcpEndpoint::send_to(&addr, &env("over-tcp")).unwrap();
        let got = server.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "over-tcp");
        assert_eq!(got.body.attr("x"), Some("1"));
    }

    #[test]
    fn tcp_multiple_messages() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        for i in 0..10 {
            let mut e = env("seq");
            e.id = MessageId(i);
            TcpEndpoint::send_to(&addr, &e).unwrap();
        }
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(server.recv_timeout(Duration::from_secs(5)).unwrap().id.0);
        }
        ids.sort();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_unreachable_address_errors() {
        // Port 1 is almost certainly closed.
        assert!(TcpEndpoint::send_to("127.0.0.1:1", &env("x")).is_err());
    }

    #[test]
    fn transport_send_receive_by_name() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        a.send("b", "hello", Element::new("ping").with_attr("n", "1"))
            .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "hello");
        assert_eq!(got.from.as_str(), "a");
        assert_eq!(got.body.attr("n"), Some("1"));
    }

    #[test]
    fn transport_unknown_destination_errors() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        assert!(matches!(
            a.send("ghost", "x", Element::new("b")),
            Err(SendError::UnknownNode(_))
        ));
    }

    #[test]
    fn transport_duplicate_name_rejected_and_freed_on_drop() {
        let t = TcpTransport::new();
        {
            let _a = Transport::connect(&t, NodeId::new("a")).unwrap();
            assert!(Transport::connect(&t, NodeId::new("a")).is_err());
            assert!(t.is_connected("a"));
        }
        assert!(!t.is_connected("a"));
        Transport::connect(&t, NodeId::new("a")).unwrap();
    }

    #[test]
    fn transport_many_frames_one_connection() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        for i in 0..100 {
            a.send("b", "seq", Element::new("n").with_attr("i", i.to_string()))
                .unwrap();
        }
        for i in 0..100 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(
                got.body.attr("i"),
                Some(i.to_string().as_str()),
                "in-order framing"
            );
        }
    }

    #[test]
    fn oversized_envelope_rejected_on_send() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        let huge = Element::new("blob").with_text("x".repeat(MAX_FRAME as usize + 1));
        assert!(matches!(
            a.send("b", "big", huge),
            Err(SendError::Transport(_))
        ));
        // The pooled connection was never poisoned: normal traffic flows.
        a.send("b", "ok", Element::new("small")).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().kind, "ok");
    }

    #[test]
    fn tilde_names_reserved_for_ephemeral_endpoints() {
        let t = TcpTransport::new();
        assert!(Transport::connect(&t, NodeId::new("user~x")).is_err());
        let fabric = crate::Network::new(crate::NetworkConfig::instant());
        assert!(fabric.connect("user~x").is_err());
    }

    #[test]
    fn transport_rpc_round_trip() {
        let t = TcpTransport::new();
        let client = Transport::connect(&t, NodeId::new("client")).unwrap();
        let server = Transport::connect(&t, NodeId::new("server")).unwrap();
        let handle = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        let resp = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(resp.kind, "pong");
        handle.join().unwrap();
    }

    #[test]
    fn transport_metrics_count_messages_and_bytes() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        a.send("b", "x", Element::new("payload").with_text("hello world"))
            .unwrap();
        a.send("b", "x", Element::new("p")).unwrap();
        // Wait until both frames are delivered.
        for _ in 0..2 {
            b.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let m = t.metrics();
        assert_eq!(m.node("a").unwrap().sent, 2);
        assert_eq!(m.node("b").unwrap().received, 2);
        assert!(m.node("a").unwrap().bytes_sent > 0);
        assert_eq!(
            m.node("a").unwrap().bytes_sent,
            m.node("b").unwrap().bytes_received
        );
        t.reset_metrics();
        assert_eq!(t.metrics().total_sent(), 0);
    }

    #[test]
    fn oversized_frame_closes_connection() {
        let t = TcpTransport::new();
        let victim = Transport::connect(&t, NodeId::new("victim")).unwrap();
        let addr = t.addr_of("victim").unwrap();
        let mut rogue = TcpStream::connect(addr).unwrap();
        // Oversized length prefix, then what would be a valid frame on the
        // same stream: the reader must close instead of resynchronizing.
        rogue.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        let mut valid = Vec::new();
        write_frame(&mut valid, &env("late")).unwrap();
        let _ = rogue.write_all(&valid); // may already be closed; both fine
        assert!(
            victim.recv_timeout(Duration::from_millis(300)).is_err(),
            "no envelope may be decoded after an oversized frame"
        );
        // The server closed its side: reads on the rogue stream hit EOF
        // (or a reset error) instead of blocking forever.
        rogue
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 8];
        match rogue.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes from a closed connection"),
        }
        // A fresh connection still works.
        let sender = Transport::connect(&t, NodeId::new("sender")).unwrap();
        sender.send("victim", "ok", Element::new("b")).unwrap();
        assert_eq!(
            victim.recv_timeout(Duration::from_secs(5)).unwrap().kind,
            "ok"
        );
    }

    #[test]
    fn register_peer_reaches_foreign_transport() {
        // Two separate TcpTransport instances model two processes; names
        // are exchanged via register_peer.
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let receiver = Transport::connect(&t2, NodeId::new("remote")).unwrap();
        t1.register_peer("remote", t2.addr_of("remote").unwrap());
        let local = Transport::connect(&t1, NodeId::new("local")).unwrap();
        local.send("remote", "cross", Element::new("b")).unwrap();
        let got = receiver.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "cross");
        assert_eq!(got.from.as_str(), "local");
    }

    #[test]
    fn rpc_round_trips_across_hubs_linked_by_register_peer() {
        // Two hubs model two processes, linked ONLY by register_peer in
        // both directions. The request frame carries the caller's name as
        // the reply address, so the responder's reply is an ordinary named
        // send routed back across the process boundary — previously
        // impossible (replies targeted caller-local ephemeral names).
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let client = Transport::connect(&t1, NodeId::new("client")).unwrap();
        let server = Transport::connect(&t2, NodeId::new("server")).unwrap();
        t1.register_peer("server", t2.addr_of("server").unwrap());
        t2.register_peer("client", t1.addr_of("client").unwrap());
        let server_thread = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            assert_eq!(req.from.as_str(), "client");
            server
                .reply(&req, "pong", Element::new("pong").with_attr("hub", "2"))
                .unwrap();
        });
        let reply = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(reply.kind, "pong");
        assert_eq!(reply.body.attr("hub"), Some("2"));
        server_thread.join().unwrap();
    }

    /// Number of open file descriptors for this process (Linux).
    #[cfg(target_os = "linux")]
    fn open_fds() -> usize {
        std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
    }

    #[test]
    fn concurrent_rpc_burst_binds_no_listeners() {
        let t = TcpTransport::new();
        let echo = Transport::connect(&t, NodeId::new("echo")).unwrap();
        let client = Transport::connect(&t, NodeId::new("client")).unwrap();
        let echo_thread = std::thread::spawn(move || {
            while let Ok(req) = echo.recv() {
                if req.kind == "stop" {
                    return;
                }
                let _ = echo.reply(&req, "pong", req.body.clone());
            }
        });
        // Warm the connection pool (client→echo and echo→client) so the
        // burst below runs entirely on existing sockets.
        client
            .rpc("echo", "ping", Element::new("warm"), Duration::from_secs(5))
            .unwrap();
        let names_before = t.node_names();
        #[cfg(target_os = "linux")]
        let fds_before = open_fds();
        let sampling = Arc::new(AtomicBool::new(true));
        // Sample *while* the burst is in flight: the old per-call scheme
        // registered an ephemeral `client~n` node and held a listener +
        // reply connection (≥3 fds) per concurrent rpc at this point. The
        // node-set probe is deterministic (only this transport's state);
        // the fd probe is process-wide, so it gets slack for sockets that
        // unrelated parallel tests may open.
        let sampler = {
            let sampling = Arc::clone(&sampling);
            let t = t.clone();
            let names_before = names_before.clone();
            std::thread::spawn(move || {
                let mut max_fds = 0;
                let mut transient_names = false;
                while sampling.load(Ordering::SeqCst) {
                    #[cfg(target_os = "linux")]
                    {
                        max_fds = max_fds.max(open_fds());
                    }
                    transient_names |= t.node_names() != names_before;
                    std::thread::sleep(Duration::from_micros(200));
                }
                (max_fds, transient_names)
            })
        };
        std::thread::scope(|s| {
            for i in 0..64 {
                let sender = client.sender();
                s.spawn(move || {
                    let reply = sender
                        .rpc(
                            "echo",
                            "ping",
                            Element::new("ping").with_attr("i", i.to_string()),
                            Duration::from_secs(10),
                        )
                        .expect("burst rpc completes");
                    assert_eq!(reply.body.attr("i"), Some(i.to_string().as_str()));
                });
            }
        });
        sampling.store(false, Ordering::SeqCst);
        #[allow(unused_variables)]
        let (max_fds, transient_names) = sampler.join().unwrap();
        // No ephemeral reply endpoints: this transport's node set never
        // changed, even mid-burst (the old scheme registered `client~n`
        // names per rpc), and the fd count stayed flat (per-call listeners
        // would have cost ≥3 fds × 64 concurrent calls ≥ 192; the slack
        // absorbs unrelated parallel tests' sockets).
        assert_eq!(t.node_names(), names_before);
        assert!(!transient_names, "rpc burst must not register nodes");
        #[cfg(target_os = "linux")]
        assert!(
            max_fds <= fds_before + 100,
            "rpc burst must not create sockets: {fds_before} fds before, \
             {max_fds} at peak"
        );
        assert_eq!(client.demux().pending_rpcs(), 0);
        let _ = client.send("echo", "stop", Element::new("stop"));
        echo_thread.join().unwrap();
    }

    // (`ConnectError::Bind` itself is not exercised here: a loopback
    // ephemeral-port bind only fails under fd/port exhaustion, which a
    // unit test cannot trigger reliably.)
    #[test]
    fn name_collisions_reported_as_structured_connect_errors() {
        let t = TcpTransport::new();
        assert!(matches!(
            Transport::connect(&t, NodeId::new("user~x")),
            Err(ConnectError::ReservedName(_))
        ));
        let _a = Transport::connect(&t, NodeId::new("a")).unwrap();
        match Transport::connect(&t, NodeId::new("a")) {
            Err(e) => {
                assert!(e.is_name_taken());
                assert_eq!(e.node().as_str(), "a");
            }
            Ok(_) => panic!("duplicate name must be rejected"),
        }
    }
}
