//! TCP transport: the same envelopes over real sockets.
//!
//! The original platform exchanged its XML documents "through Java
//! sockets". This module carries [`Envelope`]s as length-prefixed XML over
//! `std::net` TCP, proving the coordination protocol is transport-agnostic.
//! One connection is opened per message (like the original's short-lived
//! socket exchanges); a listener thread accepts connections and queues the
//! decoded envelopes.

use crate::envelope::Envelope;
use crossbeam::channel::{self, Receiver, Sender};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed XML frame.
pub fn write_frame(stream: &mut impl Write, envelope: &Envelope) -> std::io::Result<()> {
    let xml = envelope.to_xml().to_xml();
    let bytes = xml.as_bytes();
    let len = bytes.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads one length-prefixed XML frame.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Envelope> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let xml = selfserv_xml::parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Envelope::from_xml(&xml).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// A TCP endpoint: listens on a local address and queues inbound envelopes.
pub struct TcpEndpoint {
    addr: SocketAddr,
    rx: Receiver<Envelope>,
    shutdown: Arc<AtomicBool>,
}

impl TcpEndpoint {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread.
    pub fn bind(addr: &str) -> std::io::Result<TcpEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = channel::unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name(format!("selfserv-tcp-{local}"))
            .spawn(move || accept_loop(listener, tx, flag))?;
        Ok(TcpEndpoint { addr: local, rx, shutdown })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends an envelope to a remote TCP endpoint.
    pub fn send_to(addr: &str, envelope: &Envelope) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, envelope)
    }

    /// Receives the next envelope, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the accept loop observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<Envelope>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let tx = tx.clone();
        // One short-lived connection per message; decode on a worker thread
        // so a slow peer cannot stall accepts.
        std::thread::spawn(move || {
            stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
            if let Ok(env) = read_frame(&mut stream) {
                let _ = tx.send(env);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{MessageId, NodeId};
    use selfserv_xml::Element;

    fn env(kind: &str) -> Envelope {
        Envelope {
            id: MessageId(1),
            from: NodeId::new("tcp.a"),
            to: NodeId::new("tcp.b"),
            kind: kind.to_string(),
            correlation: None,
            body: Element::new("payload").with_attr("x", "1"),
        }
    }

    #[test]
    fn frame_round_trip_in_memory() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &env("test")).unwrap();
        let decoded = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, env("test"));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not x");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn tcp_send_receive() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        TcpEndpoint::send_to(&addr, &env("over-tcp")).unwrap();
        let got = server.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "over-tcp");
        assert_eq!(got.body.attr("x"), Some("1"));
    }

    #[test]
    fn tcp_multiple_messages() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        for i in 0..10 {
            let mut e = env("seq");
            e.id = MessageId(i);
            TcpEndpoint::send_to(&addr, &e).unwrap();
        }
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(server.recv_timeout(Duration::from_secs(5)).unwrap().id.0);
        }
        ids.sort();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_unreachable_address_errors() {
        // Port 1 is almost certainly closed.
        assert!(TcpEndpoint::send_to("127.0.0.1:1", &env("x")).is_err());
    }
}
