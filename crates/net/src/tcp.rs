//! TCP transport: the same envelopes over real sockets.
//!
//! The original platform exchanged its XML documents "through Java
//! sockets". This module carries [`Envelope`]s as length-prefixed XML over
//! `std::net` TCP and implements the full [`Transport`] seam, so every
//! SELF-SERV component — coordinators, wrappers, communities, registries,
//! the centralized baseline — runs over real sockets exactly as it runs
//! over the in-process fabric.
//!
//! * [`TcpTransport`] — one listener per connected node (loopback,
//!   ephemeral ports by default), a shared versioned
//!   [`PeerDirectory`] mapping names to addresses, and a pool of
//!   persistent per-peer connections carrying many frames each.
//!   Request/response rides the caller's own listener: the request frame
//!   carries the caller's node name as the reply address and the reader
//!   thread demultiplexes the correlated reply to the blocked rpc, so an
//!   rpc costs two frames on pooled connections — no per-call listener,
//!   socket, or thread. Every outbound frame also piggybacks the sender's
//!   own directory claim (`peer-*` attributes on the envelope), so the
//!   receiving hub learns where to reach the sender the moment the first
//!   frame arrives — cross-process rpc replies route immediately, before
//!   any gossip round. [`TcpTransport::register_peer`] still points names
//!   at other processes by hand, but automatic membership is the job of
//!   `selfserv-discovery`: seed one address and the handshake + gossip
//!   populate the directory in both directions.
//! * [`TcpEndpoint`] — the original minimal one-connection-per-message
//!   endpoint, kept for the low-level `tcp_demo` example and wire tests.
//!
//! Framing is `u32` big-endian length + UTF-8 XML. A frame longer than
//! `MAX_FRAME` poisons the stream position, so readers **close the
//! connection** on any malformed frame instead of trying to resynchronize
//! mid-stream.

use crate::directory::{DirectoryEntry, HubId, PeerDirectory};
use crate::envelope::{Envelope, MessageId, NodeId};
use crate::metrics::{MetricsSnapshot, NodeCounters};
use crate::transport::{
    ConnectError, Endpoint, Inbox, Mailbox, RawEndpoint, RecvError, ReplyDemux, SendError,
    Transport, TransportHandle,
};
use crate::writer::{ConnQueue, IoCounters};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use parking_lot::RwLock;
use selfserv_xml::Element;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed XML frame.
pub fn write_frame(stream: &mut impl Write, envelope: &Envelope) -> std::io::Result<()> {
    write_raw_frame(stream, envelope.to_xml().to_xml().as_bytes())
}

/// Writes an already-serialized payload as one length-prefixed frame.
fn write_raw_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed XML frame.
///
/// Any error leaves the stream position undefined (an oversized length
/// prefix is rejected *without* consuming the body), so callers must treat
/// every error as fatal for the connection and close it — never continue
/// reading frames from the same stream.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Envelope> {
    read_frame_sized(stream).map(|(env, _)| env)
}

/// [`read_frame`] variant also returning the payload size in bytes (what
/// the metrics layer charges to the link).
fn read_frame_sized(stream: &mut impl Read) -> std::io::Result<(Envelope, usize)> {
    let (xml, len) = read_frame_element(stream)?;
    let env = Envelope::from_xml(&xml)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok((env, len))
}

/// Reads one frame as its raw XML element — the hub's reader path uses
/// this so it can extract the piggybacked sender claim (`peer-*`
/// attributes) before the envelope decode. (`Envelope::from_xml` ignores
/// the extra attributes, so they never reach the delivered envelope.)
fn read_frame_element(stream: &mut impl Read) -> std::io::Result<(Element, usize)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit; closing connection"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let xml = selfserv_xml::parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((xml, len as usize))
}

/// Extracts (without validating) the piggybacked sender claim from a
/// decoded frame element: `(addr, owner, version)` from the `peer-*`
/// attributes the sending hub stamps on every outbound envelope (see
/// `Hub::stamp_sender_claim`).
fn piggybacked_claim(xml: &Element) -> Option<DirectoryEntry> {
    Some(DirectoryEntry {
        addr: xml.attr("peer-addr")?.parse().ok()?,
        owner: HubId::parse(xml.attr("peer-owner")?)?,
        version: xml.attr("peer-version")?.parse().ok()?,
        evicted: false,
    })
}

// ---------------------------------------------------------------------------
// TcpTransport: the full Transport seam over real sockets
// ---------------------------------------------------------------------------

/// Why [`Hub::send_envelope`] could not put a frame on the wire.
enum FrameSendError {
    /// The serialized envelope exceeds [`MAX_FRAME`] (the size, in bytes).
    Oversized(usize),
    /// Connecting or writing failed.
    Io(std::io::Error),
}

struct Hub {
    /// Node name → listener address, versioned and mergeable. Local
    /// connects bind here; [`TcpTransport::register_peer`], piggybacked
    /// sender claims, and `selfserv-discovery`'s handshake/gossip merge
    /// remote claims in.
    directory: PeerDirectory,
    /// Per-node traffic counters; persist after disconnect, like the
    /// fabric's.
    counters: RwLock<HashMap<NodeId, Arc<NodeCounters>>>,
    /// Persistent outbound connections, one [`ConnQueue`] per destination
    /// address, shared by every local sender (frames carry their own
    /// `from`). Senders *enqueue* and return; each queue's writer thread
    /// owns the one socket to its destination and drains frames in
    /// enqueue order, so exactly one connection per destination ever
    /// carries frames and per-sender in-order delivery holds by
    /// construction. See [`crate::writer`] for the batching, backpressure
    /// and deferred-error semantics.
    pool: Mutex<HashMap<SocketAddr, Arc<ConnQueue>>>,
    /// Hub-wide data-plane counters ([`MetricsSnapshot::io`]).
    io: Arc<IoCounters>,
    /// Replies discarded as stale (late or duplicate) by any local
    /// endpoint's demux — the hub's duplicate-traffic signal.
    stale_replies: Arc<AtomicU64>,
    next_msg: AtomicU64,
    next_anon: AtomicU64,
}

impl Hub {
    fn next_id(&self) -> MessageId {
        MessageId(self.next_msg.fetch_add(1, Ordering::Relaxed))
    }

    fn counters_for(&self, node: &NodeId) -> Arc<NodeCounters> {
        if let Some(c) = self.counters.read().get(node) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(node.clone())
                .or_insert_with(|| Arc::new(NodeCounters::default())),
        )
    }

    /// Queues one already-serialized frame for `addr` on the pooled
    /// connection's outbound queue, starting its writer thread as needed.
    /// Returns once the frame is *accepted* (bounded queue — blocks
    /// briefly under backpressure); the writer connects, batches and
    /// writes asynchronously, and its failures surface on the next send
    /// to the same destination.
    fn send_frame(&self, addr: SocketAddr, payload: Vec<u8>) -> std::io::Result<()> {
        let conn = {
            let mut pool = self.pool.lock();
            Arc::clone(
                pool.entry(addr)
                    .or_insert_with(|| Arc::new(ConnQueue::new())),
            )
        };
        conn.enqueue(addr, payload, &self.io)
    }

    fn dispatch(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let addr = match self.directory.lookup(&to) {
            Some(a) => a,
            None => return Err(SendError::UnknownNode(to)),
        };
        let envelope = Envelope {
            id,
            from: from.clone(),
            to,
            kind,
            correlation,
            body,
        };
        match self.send_envelope(addr, &envelope) {
            Ok(()) => Ok(envelope.id),
            Err(FrameSendError::Oversized(len)) => Err(SendError::Transport(format!(
                "envelope of {len} bytes exceeds the {MAX_FRAME}-byte frame limit"
            ))),
            Err(FrameSendError::Io(e)) => {
                // An unreachable *ephemeral* destination learned from a
                // piggybacked claim has no other end-of-life signal (it
                // never gossips): forget it so later sends report
                // UnknownNode instead of retrying a dead address forever.
                self.directory
                    .prune_unreachable_ephemeral(&envelope.to, addr);
                Err(SendError::Transport(format!("send to {addr} failed: {e}")))
            }
        }
    }

    /// The shared back half of every send path: stamps the sender's
    /// claim, serializes exactly once (the frame bytes are also the byte
    /// count the metrics layer charges, so sender and receiver sizes
    /// match by construction), enforces the frame limit on the *send*
    /// side (the receiver would reject the length prefix and close the
    /// shared pooled connection, losing in-flight messages with no
    /// diagnostic), queues the frame for `addr`'s connection writer, and
    /// records the sender's metrics once the transport accepts the frame.
    fn send_envelope(&self, addr: SocketAddr, envelope: &Envelope) -> Result<(), FrameSendError> {
        let mut frame_xml = envelope.to_xml();
        self.stamp_sender_claim(&envelope.from, &mut frame_xml);
        let payload = frame_xml.to_xml().into_bytes();
        if payload.len() > MAX_FRAME as usize {
            return Err(FrameSendError::Oversized(payload.len()));
        }
        let len = payload.len();
        self.send_frame(addr, payload).map_err(FrameSendError::Io)?;
        self.counters_for(&envelope.from).record_send(len);
        Ok(())
    }

    /// Stamps the sender's own directory claim onto an outbound frame
    /// (`peer-addr` / `peer-owner` / `peer-version` attributes on the
    /// envelope element) when the sender is a live local name. The
    /// receiving hub's reader merges the claim before delivery, so the
    /// first frame a hub ever receives from a node already teaches it how
    /// to send back — rpc replies across process boundaries need no prior
    /// registration or gossip round.
    fn stamp_sender_claim(&self, from: &NodeId, frame_xml: &mut Element) {
        let Some(entry) = self.directory.entry(from.as_str()) else {
            return;
        };
        if entry.evicted || entry.owner != self.directory.hub() {
            return;
        }
        frame_xml.set_attr("peer-addr", entry.addr.to_string());
        frame_xml.set_attr("peer-owner", entry.owner.to_string());
        frame_xml.set_attr("peer-version", entry.version.to_string());
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        // Retire every connection writer (each drains its queue and
        // exits): parked writer threads must not outlive the hub.
        for conn in self.pool.get_mut().values() {
            conn.shutdown();
        }
    }
}

/// A [`Transport`] over real TCP sockets. Cheap to clone (shared handle).
///
/// Every [`Transport::connect`] binds a loopback listener on an ephemeral
/// port and registers the node's address in the shared registry, so all
/// nodes of one `TcpTransport` can reach each other by name. For
/// multi-process deployments, exchange [`TcpTransport::addr_of`] results
/// out of band and register them with [`TcpTransport::register_peer`].
#[derive(Clone)]
pub struct TcpTransport {
    hub: Arc<Hub>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates an empty TCP transport with a freshly generated [`HubId`].
    pub fn new() -> Self {
        TcpTransport {
            hub: Arc::new(Hub {
                directory: PeerDirectory::new(HubId::generate()),
                counters: RwLock::new(HashMap::new()),
                pool: Mutex::new(HashMap::new()),
                io: Arc::new(IoCounters::default()),
                stale_replies: Arc::new(AtomicU64::new(0)),
                next_msg: AtomicU64::new(1),
                next_anon: AtomicU64::new(1),
            }),
        }
    }

    /// This hub's identity (the `owner` stamped on every local binding).
    pub fn hub_id(&self) -> HubId {
        self.hub.directory.hub()
    }

    /// The hub's shared peer directory: the versioned name → address map
    /// that `selfserv-discovery` handshakes, gossips, and evicts through,
    /// and that community selection can consult as a
    /// [`crate::LivenessProbe`].
    pub fn directory(&self) -> PeerDirectory {
        self.hub.directory.clone()
    }

    /// The listener address of a locally connected (or registered) node.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.hub.directory.lookup(&NodeId::new(name))
    }

    /// Hub-wide data-plane I/O counters (the `io` field of
    /// [`Transport::metrics`], without the per-node snapshot cost) — what
    /// the syscall-coalescing benchmarks sample around a burst.
    pub fn io_stats(&self) -> crate::metrics::TransportIoStats {
        self.hub.io.snapshot()
    }

    /// Frames sitting in outbound connection queues right now, hub-wide —
    /// sustained growth here means destinations are not draining.
    pub fn queued_frames(&self) -> usize {
        self.hub.pool.lock().values().map(|c| c.len()).sum()
    }

    /// Replies discarded as stale (late or duplicate replies to retired
    /// rpcs) by any local endpoint since the hub started.
    pub fn stale_replies_dropped(&self) -> u64 {
        self.hub.stale_replies.load(Ordering::Relaxed)
    }

    /// Registers the hub's transport metrics on `registry`: data-plane I/O
    /// counters (writev coalescing, frames/bytes, drops, backpressure),
    /// the queued-frames gauge, the stale-reply counter, and aggregate
    /// per-node message totals. `labels` (typically `[("hub", ...)]`) are
    /// attached to every series.
    pub fn register_metrics(&self, registry: &selfserv_obs::Registry, labels: &[(&str, &str)]) {
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_writev_calls_total",
            "Vectored write syscalls issued by connection writers.",
            labels,
            move || hub.io.snapshot().writev_calls,
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_frames_sent_total",
            "Frames put on the wire.",
            labels,
            move || hub.io.snapshot().frames_sent,
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_bytes_sent_total",
            "Wire bytes written, length prefixes included.",
            labels,
            move || hub.io.snapshot().bytes_sent,
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_frames_dropped_total",
            "Frames accepted by send but dropped by a failing connection writer.",
            labels,
            move || hub.io.snapshot().frames_dropped,
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_backpressure_waits_total",
            "Sends that blocked because their destination queue was full.",
            labels,
            move || hub.io.snapshot().backpressure_waits,
        );
        let hub = Arc::clone(&self.hub);
        registry.gauge_fn(
            "selfserv_transport_queued_frames",
            "Frames currently queued in outbound connection queues, hub-wide.",
            labels,
            move || hub.pool.lock().values().map(|c| c.len()).sum::<usize>() as f64,
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_transport_stale_replies_total",
            "Replies discarded as stale (late or duplicate) by local endpoints.",
            labels,
            move || hub.stale_replies.load(Ordering::Relaxed),
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_node_messages_sent_total",
            "Messages sent by all local nodes.",
            labels,
            move || {
                hub.counters
                    .read()
                    .values()
                    .map(|c| c.snapshot(NodeId::new("-")).sent)
                    .sum()
            },
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_node_messages_received_total",
            "Messages received by all local nodes.",
            labels,
            move || {
                hub.counters
                    .read()
                    .values()
                    .map(|c| c.snapshot(NodeId::new("-")).received)
                    .sum()
            },
        );
        let hub = Arc::clone(&self.hub);
        registry.counter_fn(
            "selfserv_node_messages_dropped_total",
            "Inbound messages lost before delivery across all local nodes.",
            labels,
            move || {
                hub.counters
                    .read()
                    .values()
                    .map(|c| c.snapshot(NodeId::new("-")).dropped_inbound)
                    .sum()
            },
        );
    }

    /// Registers a remote node's address by hand so local nodes can send
    /// to it by name (the cross-process analogue of the peer connecting
    /// locally). Prefer `selfserv-discovery`: one seed address replaces
    /// every pairwise `register_peer` call.
    ///
    /// Request frames carry the caller's node name as the reply address,
    /// so once two hubs know each other's names, an rpc from a node in one
    /// process to a node in the other completes a full round trip.
    /// Registrations are last-call-wins (atomic, above any standing
    /// version) — except that a name whose endpoint is **connected on
    /// this hub** can never be shadowed; the attempt is ignored (it used
    /// to silently hijack local traffic).
    pub fn register_peer(&self, name: impl Into<NodeId>, addr: SocketAddr) {
        self.hub.directory.register_manual(name.into(), addr);
    }

    /// Chaos hook: abruptly severs the pooled outbound connection to
    /// `node`'s address — queued frames drop, the connection writer is
    /// orphaned (it exits and closes its socket, taking the peer's reader
    /// thread with it), and the *next* send to that address reports
    /// `BrokenPipe` (the deferred-error path, which prunes unreachable
    /// ephemeral peers) while the one after respawns a fresh writer.
    /// Returns false when the node has no known address or no pooled
    /// connection exists yet.
    pub fn kill_connection(&self, node: &str) -> bool {
        let Some(addr) = self.addr_of(node) else {
            return false;
        };
        let conn = self.hub.pool.lock().get(&addr).cloned();
        match conn {
            Some(conn) => {
                conn.kill(
                    &format!("connection to {addr} killed by chaos"),
                    &self.hub.io,
                );
                true
            }
            None => false,
        }
    }

    /// Chaos hook: retires the pooled connection to `node`'s address
    /// entirely (discarding any parked deferred error), so the next send
    /// dials a fresh connection immediately. Returns false when the node
    /// has no known address or no pooled connection exists.
    pub fn revive_connection(&self, node: &str) -> bool {
        let Some(addr) = self.addr_of(node) else {
            return false;
        };
        match self.hub.pool.lock().remove(&addr) {
            Some(conn) => {
                // Wake anything blocked on the dead queue; a live writer
                // drains and exits.
                conn.shutdown();
                true
            }
            None => false,
        }
    }

    /// Sends one envelope straight to a listener **address**, bypassing
    /// the name directory — the bootstrap primitive `selfserv-discovery`
    /// uses to greet a seed hub it knows only by address. The frame is
    /// delivered to whichever node owns the listener (its `to` field is a
    /// placeholder), and it piggybacks the sender's claim like any other
    /// frame, so the receiver can answer by name.
    pub fn send_to_addr(
        &self,
        addr: SocketAddr,
        from: &NodeId,
        kind: impl Into<String>,
        body: Element,
    ) -> std::io::Result<MessageId> {
        let envelope = Envelope {
            id: self.hub.next_id(),
            from: from.clone(),
            to: NodeId::new("?"),
            kind: kind.into(),
            correlation: None,
            body,
        };
        match self.hub.send_envelope(addr, &envelope) {
            Ok(()) => Ok(envelope.id),
            Err(FrameSendError::Oversized(len)) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("envelope of {len} bytes exceeds the {MAX_FRAME}-byte frame limit"),
            )),
            Err(FrameSendError::Io(e)) => Err(e),
        }
    }

    fn connect_node(&self, name: NodeId) -> Result<Endpoint, ConnectError> {
        // Bind outside the registry lock: syscalls under the write lock
        // would stall every concurrent send's registry read. A collision
        // after binding just drops the fresh listener.
        let listener = match TcpListener::bind(("127.0.0.1", 0)) {
            Ok(l) => l,
            Err(e) => return Err(ConnectError::Bind(name, e)),
        };
        let addr = match listener.local_addr() {
            Ok(a) => a,
            Err(e) => return Err(ConnectError::Bind(name, e)),
        };
        if self.hub.directory.bind_local(name.clone(), addr).is_err() {
            return Err(ConnectError::NameTaken(name));
        }
        let counters = self.hub.counters_for(&name);
        let (tx, rx) = channel::unbounded();
        let demux = ReplyDemux::new(Arc::clone(&self.hub.stale_replies));
        let inbox = Inbox::new(tx, Arc::clone(&demux));
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let directory = self.hub.directory.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("selfserv-tcp-{name}"))
            .spawn(move || accept_loop(listener, inbox, counters, directory, flag))
            .expect("spawn tcp accept thread");
        let raw = TcpRawEndpoint {
            node: name,
            hub: Arc::clone(&self.hub),
            addr,
            mailbox: Mailbox::new(rx),
            shutdown,
            accept_thread: Some(accept_thread),
        };
        Ok(Endpoint::from_raw(
            Box::new(raw),
            TransportHandle::new(self.clone()),
            demux,
        ))
    }
}

impl crate::fault::ChaosTarget for TcpTransport {
    fn crash(&self, node: &NodeId) {
        self.kill_connection(node.as_str());
    }

    fn restart(&self, node: &NodeId) {
        self.revive_connection(node.as_str());
    }
}

impl Transport for TcpTransport {
    fn connect(&self, name: NodeId) -> Result<Endpoint, ConnectError> {
        // `~` is reserved for transport-generated ephemeral endpoints
        // (their counters are pruned on drop, which would silently lose a
        // real node's metrics).
        if name.as_str().contains('~') {
            return Err(ConnectError::ReservedName(name));
        }
        self.connect_node(name)
    }

    fn connect_anonymous(&self, prefix: &str) -> Endpoint {
        // Anonymous endpoints back auxiliary identities (clients, control
        // senders), not rpcs, so contention is low — but transient
        // fd/ephemeral-port exhaustion still gets bounded retries with
        // capped exponential backoff (fast first retries for blips, the
        // old worst-case pause only once exhaustion persists) before the
        // failure is treated as fatal.
        //
        // The name embeds the hub id: every frame piggybacks its sender's
        // directory claim, so two hubs whose anonymous counters both
        // minted `client~1` would collide in a *receiving* hub's
        // directory and misroute one side's rpc replies. Per-hub counters
        // are only unique per hub; the hub id makes them global.
        let hub_id = self.hub.directory.hub();
        let mut backoff = Backoff::new(Duration::from_micros(250), Duration::from_millis(10));
        let mut bind_failures = 0u32;
        loop {
            let n = self.hub.next_anon.fetch_add(1, Ordering::Relaxed);
            match self.connect_node(NodeId::new(format!("{prefix}~{hub_id}-{n}"))) {
                Ok(ep) => return ep,
                Err(ConnectError::NameTaken(_) | ConnectError::ReservedName(_)) => {
                    // Collision (e.g. a peer registration): next counter.
                }
                Err(ConnectError::Bind(name, e)) => {
                    bind_failures += 1;
                    if bind_failures >= 100 {
                        panic!(
                            "failed to bind a TCP listener for ephemeral node '{name}' \
                             after {bind_failures} attempts: {e}"
                        );
                    }
                    backoff.sleep();
                }
            }
        }
    }

    fn is_connected(&self, name: &str) -> bool {
        self.hub.directory.is_bound(name)
    }

    fn node_names(&self) -> Vec<NodeId> {
        self.hub.directory.names()
    }

    fn next_message_id(&self) -> MessageId {
        self.hub.next_id()
    }

    fn send_prepared(
        &self,
        id: MessageId,
        from: &NodeId,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<(), SendError> {
        self.hub
            .dispatch(id, from, to, kind, body, correlation)
            .map(|_| ())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let counters = self.hub.counters.read();
        let mut snap = MetricsSnapshot::collect(counters.iter().map(|(k, v)| (k, v.as_ref())));
        snap.io = self.hub.io.snapshot();
        snap
    }

    fn reset_metrics(&self) {
        for c in self.hub.counters.read().values() {
            c.reset();
        }
        self.hub.io.reset();
    }

    fn handle(&self) -> TransportHandle {
        TransportHandle::new(self.clone())
    }
}

struct TcpRawEndpoint {
    node: NodeId,
    hub: Arc<Hub>,
    addr: SocketAddr,
    mailbox: Mailbox,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RawEndpoint for TcpRawEndpoint {
    fn node(&self) -> &NodeId {
        &self.node
    }

    fn send(
        &self,
        to: NodeId,
        kind: String,
        body: Element,
        correlation: Option<MessageId>,
    ) -> Result<MessageId, SendError> {
        let id = self.hub.next_id();
        self.hub
            .dispatch(id, &self.node, to, kind, body, correlation)
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        self.mailbox.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.mailbox.recv_timeout(timeout)
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.mailbox.try_recv()
    }

    fn pending(&self) -> usize {
        self.mailbox.pending()
    }
}

impl Drop for TcpRawEndpoint {
    fn drop(&mut self) {
        // Free the name: tombstone the directory entry (only if it still
        // points at this listener — a remote claim may have replaced it),
        // so the departure gossips like any other directory change.
        self.hub.directory.remove_local(&self.node, self.addr);
        stop_accept_thread(self.addr, &self.shutdown, &mut self.accept_thread);
        // Retire the pooled connection to this node: its writer drains
        // whatever is already queued and closes the socket, so peer reader
        // threads see EOF promptly instead of lingering on a dead stream.
        if let Some(conn) = self.hub.pool.lock().remove(&self.addr) {
            conn.shutdown();
        }
        crate::metrics::fold_ephemeral(&mut self.hub.counters.write(), &self.node);
    }
}

/// Shared listener teardown: raise the shutdown flag, poke the listener so
/// the accept loop observes it, then *join* the thread (leaked accept
/// threads used to accumulate across test runs). If the poke cannot
/// connect (fd/port exhaustion), detach instead — the loop would never
/// observe the flag and the join would deadlock teardown.
fn stop_accept_thread(
    addr: SocketAddr,
    shutdown: &AtomicBool,
    accept_thread: &mut Option<JoinHandle<()>>,
) {
    shutdown.store(true, Ordering::SeqCst);
    let poked = TcpStream::connect(addr).is_ok();
    if let Some(thread) = accept_thread.take() {
        if poked {
            let _ = thread.join();
        }
    }
}

/// Capped exponential backoff for transient-resource retry loops (fd and
/// ephemeral-port exhaustion): starts near-instant so one-off blips cost
/// microseconds, doubles toward `cap` so a persistently exhausted host
/// isn't hammered. A success path calls [`Backoff::reset`].
struct Backoff {
    next: Duration,
    initial: Duration,
    cap: Duration,
}

impl Backoff {
    fn new(initial: Duration, cap: Duration) -> Backoff {
        Backoff {
            next: initial,
            initial,
            cap,
        }
    }

    fn sleep(&mut self) {
        std::thread::sleep(self.next);
        self.next = (self.next * 2).min(self.cap);
    }

    fn reset(&mut self) {
        self.next = self.initial;
    }
}

/// Shared accept skeleton: hand each accepted connection to `handle`,
/// exit when the shutdown flag is raised, back off (capped exponential)
/// on persistent accept errors (e.g. fd exhaustion) instead of spinning
/// hot or always paying the worst-case pause.
fn accept_connections(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    mut handle: impl FnMut(TcpStream),
) {
    let mut backoff = Backoff::new(Duration::from_micros(250), Duration::from_millis(10));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else {
            backoff.sleep();
            continue;
        };
        backoff.reset();
        handle(stream);
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: Inbox,
    counters: Arc<NodeCounters>,
    directory: PeerDirectory,
    shutdown: Arc<AtomicBool>,
) {
    accept_connections(listener, shutdown, move |mut stream| {
        stream.set_nodelay(true).ok();
        let inbox = inbox.clone();
        let counters = Arc::clone(&counters);
        let directory = directory.clone();
        // Persistent per-peer framing: one reader per inbound connection
        // decodes frames until the peer closes or a frame is malformed.
        // Delivery demultiplexes rpc replies to their waiting callers.
        std::thread::spawn(move || loop {
            match read_frame_element(&mut stream) {
                Ok((xml, size)) => {
                    let envelope = match Envelope::from_xml(&xml) {
                        Ok(env) => env,
                        // A well-framed but malformed envelope: the stream
                        // position is intact, so skipping the frame (not
                        // the connection) would be safe — but a sender
                        // producing garbage envelopes is not worth keeping
                        // a connection for.
                        Err(_) => return,
                    };
                    // Merge the piggybacked sender claim first, so even a
                    // frame from a never-before-seen process makes its
                    // sender immediately routable (the rpc reply path).
                    if let Some(claim) = piggybacked_claim(&xml) {
                        directory.merge_entry(envelope.from.clone(), claim);
                    }
                    counters.record_receive(size);
                    if inbox.deliver(envelope).is_err() {
                        return; // endpoint dropped
                    }
                }
                // EOF, oversized, or corrupt frame: the stream position is
                // unreliable from here on — close the connection rather
                // than desynchronize mid-frame. The sender's pool will
                // reconnect on its next send.
                Err(_) => return,
            }
        });
    });
}

// ---------------------------------------------------------------------------
// TcpEndpoint: minimal one-connection-per-message endpoint
// ---------------------------------------------------------------------------

/// A minimal TCP endpoint: listens on a local address and queues inbound
/// envelopes, one short-lived connection per message (like the original's
/// short-lived socket exchanges). For the full platform-over-TCP seam use
/// [`TcpTransport`] instead.
pub struct TcpEndpoint {
    addr: SocketAddr,
    rx: Receiver<Envelope>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread.
    pub fn bind(addr: &str) -> std::io::Result<TcpEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = channel::unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("selfserv-tcp-{local}"))
            .spawn(move || one_shot_accept_loop(listener, tx, flag))?;
        Ok(TcpEndpoint {
            addr: local,
            rx,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends an envelope to a remote TCP endpoint.
    pub fn send_to(addr: &str, envelope: &Envelope) -> std::io::Result<()> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, envelope)
    }

    /// Receives the next envelope, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        stop_accept_thread(self.addr, &self.shutdown, &mut self.accept_thread);
    }
}

fn one_shot_accept_loop(listener: TcpListener, tx: Sender<Envelope>, shutdown: Arc<AtomicBool>) {
    accept_connections(listener, shutdown, move |mut stream| {
        let tx = tx.clone();
        // One short-lived connection per message; decode on a worker thread
        // so a slow peer cannot stall accepts. Any frame error (including
        // oversized frames) closes the connection.
        std::thread::spawn(move || {
            stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
            if let Ok(env) = read_frame(&mut stream) {
                let _ = tx.send(env);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{MessageId, NodeId};
    use selfserv_xml::Element;

    fn env(kind: &str) -> Envelope {
        Envelope {
            id: MessageId(1),
            from: NodeId::new("tcp.a"),
            to: NodeId::new("tcp.b"),
            kind: kind.to_string(),
            correlation: None,
            body: Element::new("payload").with_attr("x", "1"),
        }
    }

    #[test]
    fn frame_round_trip_in_memory() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &env("test")).unwrap();
        let decoded = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, env("test"));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not x");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn tcp_send_receive() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        TcpEndpoint::send_to(&addr, &env("over-tcp")).unwrap();
        let got = server.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "over-tcp");
        assert_eq!(got.body.attr("x"), Some("1"));
    }

    #[test]
    fn tcp_multiple_messages() {
        let server = TcpEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        for i in 0..10 {
            let mut e = env("seq");
            e.id = MessageId(i);
            TcpEndpoint::send_to(&addr, &e).unwrap();
        }
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(server.recv_timeout(Duration::from_secs(5)).unwrap().id.0);
        }
        ids.sort();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_unreachable_address_errors() {
        // Port 1 is almost certainly closed.
        assert!(TcpEndpoint::send_to("127.0.0.1:1", &env("x")).is_err());
    }

    #[test]
    fn transport_send_receive_by_name() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        a.send("b", "hello", Element::new("ping").with_attr("n", "1"))
            .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "hello");
        assert_eq!(got.from.as_str(), "a");
        assert_eq!(got.body.attr("n"), Some("1"));
    }

    #[test]
    fn transport_unknown_destination_errors() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        assert!(matches!(
            a.send("ghost", "x", Element::new("b")),
            Err(SendError::UnknownNode(_))
        ));
    }

    #[test]
    fn transport_duplicate_name_rejected_and_freed_on_drop() {
        let t = TcpTransport::new();
        {
            let _a = Transport::connect(&t, NodeId::new("a")).unwrap();
            assert!(Transport::connect(&t, NodeId::new("a")).is_err());
            assert!(t.is_connected("a"));
        }
        assert!(!t.is_connected("a"));
        Transport::connect(&t, NodeId::new("a")).unwrap();
    }

    #[test]
    fn transport_many_frames_one_connection() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        for i in 0..100 {
            a.send("b", "seq", Element::new("n").with_attr("i", i.to_string()))
                .unwrap();
        }
        for i in 0..100 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(
                got.body.attr("i"),
                Some(i.to_string().as_str()),
                "in-order framing"
            );
        }
    }

    #[test]
    fn oversized_envelope_rejected_on_send() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        let huge = Element::new("blob").with_text("x".repeat(MAX_FRAME as usize + 1));
        assert!(matches!(
            a.send("b", "big", huge),
            Err(SendError::Transport(_))
        ));
        // The pooled connection was never poisoned: normal traffic flows.
        a.send("b", "ok", Element::new("small")).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().kind, "ok");
    }

    #[test]
    fn tilde_names_reserved_for_ephemeral_endpoints() {
        let t = TcpTransport::new();
        assert!(Transport::connect(&t, NodeId::new("user~x")).is_err());
        let fabric = crate::Network::new(crate::NetworkConfig::instant());
        assert!(fabric.connect("user~x").is_err());
    }

    #[test]
    fn transport_rpc_round_trip() {
        let t = TcpTransport::new();
        let client = Transport::connect(&t, NodeId::new("client")).unwrap();
        let server = Transport::connect(&t, NodeId::new("server")).unwrap();
        let handle = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        let resp = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(resp.kind, "pong");
        handle.join().unwrap();
    }

    #[test]
    fn transport_metrics_count_messages_and_bytes() {
        let t = TcpTransport::new();
        let a = Transport::connect(&t, NodeId::new("a")).unwrap();
        let b = Transport::connect(&t, NodeId::new("b")).unwrap();
        a.send("b", "x", Element::new("payload").with_text("hello world"))
            .unwrap();
        a.send("b", "x", Element::new("p")).unwrap();
        // Wait until both frames are delivered.
        for _ in 0..2 {
            b.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let m = t.metrics();
        assert_eq!(m.node("a").unwrap().sent, 2);
        assert_eq!(m.node("b").unwrap().received, 2);
        assert!(m.node("a").unwrap().bytes_sent > 0);
        assert_eq!(
            m.node("a").unwrap().bytes_sent,
            m.node("b").unwrap().bytes_received
        );
        t.reset_metrics();
        assert_eq!(t.metrics().total_sent(), 0);
    }

    #[test]
    fn oversized_frame_closes_connection() {
        let t = TcpTransport::new();
        let victim = Transport::connect(&t, NodeId::new("victim")).unwrap();
        let addr = t.addr_of("victim").unwrap();
        let mut rogue = TcpStream::connect(addr).unwrap();
        // Oversized length prefix, then what would be a valid frame on the
        // same stream: the reader must close instead of resynchronizing.
        rogue.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        let mut valid = Vec::new();
        write_frame(&mut valid, &env("late")).unwrap();
        let _ = rogue.write_all(&valid); // may already be closed; both fine
        assert!(
            victim.recv_timeout(Duration::from_millis(300)).is_err(),
            "no envelope may be decoded after an oversized frame"
        );
        // The server closed its side: reads on the rogue stream hit EOF
        // (or a reset error) instead of blocking forever.
        rogue
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 8];
        match rogue.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes from a closed connection"),
        }
        // A fresh connection still works.
        let sender = Transport::connect(&t, NodeId::new("sender")).unwrap();
        sender.send("victim", "ok", Element::new("b")).unwrap();
        assert_eq!(
            victim.recv_timeout(Duration::from_secs(5)).unwrap().kind,
            "ok"
        );
    }

    #[test]
    fn register_peer_reaches_foreign_transport() {
        // Two separate TcpTransport instances model two processes; names
        // are exchanged via register_peer.
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let receiver = Transport::connect(&t2, NodeId::new("remote")).unwrap();
        t1.register_peer("remote", t2.addr_of("remote").unwrap());
        let local = Transport::connect(&t1, NodeId::new("local")).unwrap();
        local.send("remote", "cross", Element::new("b")).unwrap();
        let got = receiver.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "cross");
        assert_eq!(got.from.as_str(), "local");
    }

    #[test]
    fn register_peer_cannot_shadow_a_locally_connected_name() {
        // Regression: a remote registration for a name whose endpoint is
        // connected on this hub used to silently replace the local
        // mapping, hijacking all local traffic to that name. It must be
        // refused (the local entry is re-asserted) while the endpoint
        // lives — and honored again once the endpoint drops.
        let t = TcpTransport::new();
        let victim = Transport::connect(&t, NodeId::new("victim")).unwrap();
        let local_addr = t.addr_of("victim").unwrap();
        let elsewhere: SocketAddr = "127.0.0.1:9".parse().unwrap();
        t.register_peer("victim", elsewhere);
        assert_eq!(
            t.addr_of("victim"),
            Some(local_addr),
            "local mapping survives a shadowing registration"
        );
        // Traffic still reaches the local endpoint.
        let probe = Transport::connect(&t, NodeId::new("probe")).unwrap();
        probe
            .send("victim", "still-here", Element::new("b"))
            .unwrap();
        assert_eq!(
            victim.recv_timeout(Duration::from_secs(5)).unwrap().kind,
            "still-here"
        );
        // After the endpoint drops, the name is free to point elsewhere.
        drop(victim);
        t.register_peer("victim", elsewhere);
        assert_eq!(t.addr_of("victim"), Some(elsewhere));
    }

    #[test]
    fn frames_piggyback_sender_claims_for_reply_routing() {
        // Hub 1 knows hub 2's "server" (one direction only). The request
        // frame piggybacks the client's own address, so the reply routes
        // back without any reverse registration or gossip.
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let client = Transport::connect(&t1, NodeId::new("client")).unwrap();
        let server = Transport::connect(&t2, NodeId::new("server")).unwrap();
        t1.register_peer("server", t2.addr_of("server").unwrap());
        assert!(t2.addr_of("client").is_none(), "no reverse registration");
        let server_thread = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            server.reply(&req, "pong", Element::new("pong")).unwrap();
        });
        let reply = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(reply.kind, "pong");
        // The claim carried the owning hub's identity, not a guess.
        assert_eq!(
            t2.directory().entry("client").map(|e| e.owner),
            Some(t1.hub_id())
        );
        server_thread.join().unwrap();
    }

    #[test]
    fn anonymous_endpoints_never_collide_across_hubs() {
        // Two hubs whose anonymous counters both start at 1 each mint a
        // `client~…` identity and rpc the same third-hub server. The
        // names must be globally distinct — a collision would merge both
        // piggybacked claims under one directory key on the server's hub
        // and misroute one side's replies.
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let t3 = TcpTransport::new();
        let server = Transport::connect(&t3, NodeId::new("server")).unwrap();
        let server_addr = t3.addr_of("server").unwrap();
        t1.register_peer("server", server_addr);
        t2.register_peer("server", server_addr);
        let c1 = t1.connect_anonymous("client");
        let c2 = t2.connect_anonymous("client");
        assert_ne!(
            c1.node(),
            c2.node(),
            "hub id keeps per-hub counters globally unique"
        );
        let server_thread = std::thread::spawn(move || {
            for _ in 0..2 {
                let req = server.recv().unwrap();
                // Echo the caller's name back so the reply is checkable.
                server
                    .reply(
                        &req,
                        "pong",
                        Element::new("pong").with_attr("caller", req.from.as_str()),
                    )
                    .unwrap();
            }
        });
        for client in [&c1, &c2] {
            let reply = client
                .rpc(
                    "server",
                    "ping",
                    Element::new("ping"),
                    Duration::from_secs(5),
                )
                .unwrap();
            assert_eq!(
                reply.body.attr("caller"),
                Some(client.node().as_str()),
                "each hub's anonymous client got its own reply"
            );
        }
        server_thread.join().unwrap();
    }

    #[test]
    fn send_to_addr_reaches_a_listener_known_only_by_address() {
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let greeter = Transport::connect(&t1, NodeId::new("greeter")).unwrap();
        let seed = Transport::connect(&t2, NodeId::new("seed")).unwrap();
        let seed_addr = t2.addr_of("seed").unwrap();
        t1.send_to_addr(seed_addr, greeter.node(), "hello", Element::new("hi"))
            .unwrap();
        let got = seed.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.kind, "hello");
        assert_eq!(got.from.as_str(), "greeter");
        // The piggybacked claim makes the greeter addressable by name.
        assert_eq!(
            t2.addr_of("greeter"),
            t1.addr_of("greeter"),
            "receiver learned the sender's address from the frame"
        );
        seed.reply(&got, "welcome", Element::new("w")).unwrap();
        assert_eq!(
            greeter.recv_timeout(Duration::from_secs(5)).unwrap().kind,
            "welcome"
        );
    }

    #[test]
    fn rpc_round_trips_across_hubs_linked_by_register_peer() {
        // Two hubs model two processes, linked ONLY by register_peer in
        // both directions. The request frame carries the caller's name as
        // the reply address, so the responder's reply is an ordinary named
        // send routed back across the process boundary — previously
        // impossible (replies targeted caller-local ephemeral names).
        let t1 = TcpTransport::new();
        let t2 = TcpTransport::new();
        let client = Transport::connect(&t1, NodeId::new("client")).unwrap();
        let server = Transport::connect(&t2, NodeId::new("server")).unwrap();
        t1.register_peer("server", t2.addr_of("server").unwrap());
        t2.register_peer("client", t1.addr_of("client").unwrap());
        let server_thread = std::thread::spawn(move || {
            let req = server.recv().unwrap();
            assert_eq!(req.from.as_str(), "client");
            server
                .reply(&req, "pong", Element::new("pong").with_attr("hub", "2"))
                .unwrap();
        });
        let reply = client
            .rpc(
                "server",
                "ping",
                Element::new("ping"),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(reply.kind, "pong");
        assert_eq!(reply.body.attr("hub"), Some("2"));
        server_thread.join().unwrap();
    }

    /// Number of open file descriptors for this process (Linux).
    #[cfg(target_os = "linux")]
    fn open_fds() -> usize {
        std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
    }

    #[test]
    fn concurrent_rpc_burst_binds_no_listeners() {
        let t = TcpTransport::new();
        let echo = Transport::connect(&t, NodeId::new("echo")).unwrap();
        let client = Transport::connect(&t, NodeId::new("client")).unwrap();
        let echo_thread = std::thread::spawn(move || {
            while let Ok(req) = echo.recv() {
                if req.kind == "stop" {
                    return;
                }
                let _ = echo.reply(&req, "pong", req.body.clone());
            }
        });
        // Warm the connection pool (client→echo and echo→client) so the
        // burst below runs entirely on existing sockets.
        client
            .rpc("echo", "ping", Element::new("warm"), Duration::from_secs(5))
            .unwrap();
        let names_before = t.node_names();
        #[cfg(target_os = "linux")]
        let fds_before = open_fds();
        let sampling = Arc::new(AtomicBool::new(true));
        // Sample *while* the burst is in flight: the old per-call scheme
        // registered an ephemeral `client~n` node and held a listener +
        // reply connection (≥3 fds) per concurrent rpc at this point. The
        // node-set probe is deterministic (only this transport's state);
        // the fd probe is process-wide, so it gets slack for sockets that
        // unrelated parallel tests may open.
        let sampler = {
            let sampling = Arc::clone(&sampling);
            let t = t.clone();
            let names_before = names_before.clone();
            std::thread::spawn(move || {
                let mut max_fds = 0;
                let mut transient_names = false;
                while sampling.load(Ordering::SeqCst) {
                    #[cfg(target_os = "linux")]
                    {
                        max_fds = max_fds.max(open_fds());
                    }
                    transient_names |= t.node_names() != names_before;
                    std::thread::sleep(Duration::from_micros(200));
                }
                (max_fds, transient_names)
            })
        };
        std::thread::scope(|s| {
            for i in 0..64 {
                let sender = client.sender();
                s.spawn(move || {
                    let reply = sender
                        .rpc(
                            "echo",
                            "ping",
                            Element::new("ping").with_attr("i", i.to_string()),
                            Duration::from_secs(10),
                        )
                        .expect("burst rpc completes");
                    assert_eq!(reply.body.attr("i"), Some(i.to_string().as_str()));
                });
            }
        });
        sampling.store(false, Ordering::SeqCst);
        #[allow(unused_variables)]
        let (max_fds, transient_names) = sampler.join().unwrap();
        // No ephemeral reply endpoints: this transport's node set never
        // changed, even mid-burst (the old scheme registered `client~n`
        // names per rpc), and the fd count stayed flat (per-call listeners
        // would have cost ≥3 fds × 64 concurrent calls ≥ 192; the slack
        // absorbs unrelated parallel tests' sockets).
        assert_eq!(t.node_names(), names_before);
        assert!(!transient_names, "rpc burst must not register nodes");
        #[cfg(target_os = "linux")]
        assert!(
            max_fds <= fds_before + 100,
            "rpc burst must not create sockets: {fds_before} fds before, \
             {max_fds} at peak"
        );
        assert_eq!(client.demux().pending_rpcs(), 0);
        let _ = client.send("echo", "stop", Element::new("stop"));
        echo_thread.join().unwrap();
    }

    // (`ConnectError::Bind` itself is not exercised here: a loopback
    // ephemeral-port bind only fails under fd/port exhaustion, which a
    // unit test cannot trigger reliably.)
    #[test]
    fn name_collisions_reported_as_structured_connect_errors() {
        let t = TcpTransport::new();
        assert!(matches!(
            Transport::connect(&t, NodeId::new("user~x")),
            Err(ConnectError::ReservedName(_))
        ));
        let _a = Transport::connect(&t, NodeId::new("a")).unwrap();
        match Transport::connect(&t, NodeId::new("a")) {
            Err(e) => {
                assert!(e.is_name_taken());
                assert_eq!(e.node().as_str(), "a");
            }
            Ok(_) => panic!("duplicate name must be rejected"),
        }
    }
}
