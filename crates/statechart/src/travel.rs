//! The paper's demo scenario (Section 4, Figure 2): a travel-planning
//! composite service.
//!
//! > "A traveller books a domestic flight or an international flight, as
//! > well as an accommodation. A search for attractions is performed in
//! > parallel with the flight and accommodation bookings. When the search
//! > and the bookings are done, a car rental is performed if the major
//! > attraction is far from the booked accommodation."
//!
//! The statechart built here follows Figure 2:
//!
//! ```text
//!           ┌───────────────────────── ARR (AND) ─────────────────────────┐
//!           │ region bookings:                                            │
//!           │   FC ──[domestic(destination)]──────► DFB ──► AB ──► (F)    │
//!           │    └──[not domestic(destination)]──► ITA ────┘              │
//!           │         ITA = { IFB ──► TI ──► (F) }      (AB = community)  │
//!           │ region search:                                              │
//!           │   AS ──► (F)                                                │
//!           └───────────────┬─────────────────────────────────────────────┘
//!        [not near(major_attraction, accommodation)]      [near(...)]
//!                           ▼                                  │
//!                          CR ─────────────────────────────────▼
//!                           └────────────────────────────────► F
//! ```
//!
//! `International Travel Arrangements` is modelled as a nested compound
//! state (international flight + travel insurance), `Accommodation Booking`
//! is bound through a service community, and the rest are elementary
//! services — matching the demo's configuration.

use crate::builder::{StatechartBuilder, TaskDef, TransitionDef};
use crate::model::Statechart;
use selfserv_expr::{EvalError, MapEnv, Value};
use selfserv_wsdl::{Binding, OperationDef, Param, ParamType, ServiceDescription};

/// Names of the component services of the travel scenario.
pub mod services {
    /// Domestic flight booking (elementary).
    pub const DOMESTIC_FLIGHT: &str = "Domestic Flight Booking";
    /// International flight booking (elementary, inside ITA).
    pub const INTERNATIONAL_FLIGHT: &str = "International Flight Booking";
    /// Travel insurance (elementary, inside ITA).
    pub const TRAVEL_INSURANCE: &str = "Travel Insurance";
    /// Attraction search (elementary).
    pub const ATTRACTION_SEARCH: &str = "Attraction Search";
    /// Car rental (elementary).
    pub const CAR_RENTAL: &str = "Car Rental";
    /// The accommodation-booking community.
    pub const ACCOMMODATION_COMMUNITY: &str = "AccommodationBooking";
}

/// Builds the travel-planning statechart of Figure 2.
pub fn travel_statechart() -> Statechart {
    StatechartBuilder::new("Travel Planning")
        .variable("customer", ParamType::Str)
        .variable("destination", ParamType::Str)
        .variable("departure_date", ParamType::Date)
        .variable("return_date", ParamType::Date)
        .variable("flight_confirmation", ParamType::Str)
        .variable("flight_price", ParamType::Float)
        .variable("insurance_policy", ParamType::Str)
        .variable("accommodation", ParamType::Str)
        .variable("accommodation_price", ParamType::Float)
        .variable("major_attraction", ParamType::Str)
        .variable("attractions", ParamType::List)
        .variable("car_confirmation", ParamType::Str)
        .initial("ARR")
        // ---- the AND-state running bookings and search in parallel ----
        .concurrent(
            "ARR",
            "Travel Arrangements",
            vec![("bookings", "FC"), ("search", "AS")],
        )
        // region 0: bookings
        .choice_in("ARR", 0, "FC", "Flight Choice")
        .task_in_region(
            "ARR",
            0,
            TaskDef::new("DFB", "Domestic Flight Booking")
                .service(services::DOMESTIC_FLIGHT, "bookFlight")
                .input("customer", "customer")
                .input("destination", "destination")
                .input("departure_date", "departure_date")
                .input("return_date", "return_date")
                .output("confirmation", "flight_confirmation")
                .output("price", "flight_price"),
        )
        .compound_in("ARR", 0, "ITA", "International Travel Arrangements", "IFB")
        .task_in(
            "ITA",
            TaskDef::new("IFB", "International Flight Booking")
                .service(services::INTERNATIONAL_FLIGHT, "bookFlight")
                .input("customer", "customer")
                .input("destination", "destination")
                .input("departure_date", "departure_date")
                .input("return_date", "return_date")
                .output("confirmation", "flight_confirmation")
                .output("price", "flight_price"),
        )
        .task_in(
            "ITA",
            TaskDef::new("TI", "Travel Insurance")
                .service(services::TRAVEL_INSURANCE, "insure")
                .input("customer", "customer")
                .input("destination", "destination")
                .input("trip_value", "flight_price")
                .output("policy", "insurance_policy"),
        )
        .final_in("ITA", 0, "ITA_F")
        .task_in_region(
            "ARR",
            0,
            TaskDef::new("AB", "Accommodation Booking")
                .community(services::ACCOMMODATION_COMMUNITY, "bookAccommodation")
                .input("customer", "customer")
                .input("city", "destination")
                .input("check_in", "departure_date")
                .input("check_out", "return_date")
                .output("location", "accommodation")
                .output("price", "accommodation_price"),
        )
        .final_in("ARR", 0, "BK_F")
        // region 1: attraction search
        .task_in_region(
            "ARR",
            1,
            TaskDef::new("AS", "Attractions Search")
                .service(services::ATTRACTION_SEARCH, "searchAttractions")
                .input("city", "destination")
                .output("major", "major_attraction")
                .output("all", "attractions"),
        )
        .final_in("ARR", 1, "AS_F")
        // ---- conditional car rental after the AND-join ----
        .task(
            TaskDef::new("CR", "Car Rental")
                .service(services::CAR_RENTAL, "rentCar")
                .input("customer", "customer")
                .input("pickup", "accommodation")
                .input("from", "departure_date")
                .input("to", "return_date")
                .output("confirmation", "car_confirmation"),
        )
        .final_state("F")
        // bookings region flow
        .transition(TransitionDef::new("t_dom", "FC", "DFB").guard("domestic(destination)"))
        .transition(TransitionDef::new("t_intl", "FC", "ITA").guard("not domestic(destination)"))
        .transition(TransitionDef::new("t_ifb_ti", "IFB", "TI"))
        .transition(TransitionDef::new("t_ti_f", "TI", "ITA_F"))
        .transition(TransitionDef::new("t_dfb_ab", "DFB", "AB"))
        .transition(TransitionDef::new("t_ita_ab", "ITA", "AB"))
        .transition(TransitionDef::new("t_ab_f", "AB", "BK_F"))
        // search region flow
        .transition(TransitionDef::new("t_as_f", "AS", "AS_F"))
        // root flow
        .transition(
            TransitionDef::new("t_cr", "ARR", "CR")
                .guard("not near(major_attraction, accommodation)"),
        )
        .transition(
            TransitionDef::new("t_skip_cr", "ARR", "F")
                .guard("near(major_attraction, accommodation)"),
        )
        .transition(TransitionDef::new("t_cr_f", "CR", "F"))
        .build()
        .expect("travel statechart is well-formed")
}

/// Cities the `domestic` predicate recognises as Australian.
pub const DOMESTIC_CITIES: &[&str] = &[
    "Sydney",
    "Melbourne",
    "Brisbane",
    "Perth",
    "Adelaide",
    "Cairns",
    "Darwin",
    "Hobart",
];

/// Attraction → "home" city pairs the `near` predicate treats as close.
/// Everything else counts as far, triggering the car rental.
pub const NEAR_PAIRS: &[(&str, &str)] = &[
    ("Opera House", "Sydney CBD Hotel"),
    ("Peak Tram", "Kowloon Hotel"),
    ("Star Ferry", "Kowloon Hotel"),
    ("Queen Victoria Market", "Melbourne Central Stay"),
];

/// Registers the travel scenario's guard predicates (`domestic`, `near`)
/// into an expression environment — the code the composer supplies
/// alongside the statechart.
pub fn register_predicates(env: &mut MapEnv) {
    env.register_fn("domestic", |args| {
        let city =
            args.first()
                .and_then(Value::as_str)
                .ok_or_else(|| EvalError::FunctionError {
                    function: "domestic".into(),
                    message: "expects one string argument".into(),
                })?;
        Ok(Value::Bool(DOMESTIC_CITIES.contains(&city)))
    });
    env.register_fn("near", |args| {
        if args.len() != 2 {
            return Err(EvalError::ArityMismatch {
                function: "near".into(),
                expected: 2,
                found: args.len(),
            });
        }
        let attraction = args[0].as_str().unwrap_or("");
        let place = args[1].as_str().unwrap_or("");
        Ok(Value::Bool(
            NEAR_PAIRS
                .iter()
                .any(|(a, p)| *a == attraction && *p == place),
        ))
    });
}

/// WSDL-style descriptions of every elementary service in the scenario,
/// keyed to the fabric endpoints the examples deploy them on.
pub fn travel_service_descriptions() -> Vec<ServiceDescription> {
    let flight_op = |name: &str| {
        OperationDef::new("bookFlight")
            .with_doc(format!("{name} flight booking"))
            .with_input(Param::required("customer", ParamType::Str))
            .with_input(Param::required("destination", ParamType::Str))
            .with_input(Param::required("departure_date", ParamType::Date))
            .with_input(Param::optional("return_date", ParamType::Date))
            .with_output(Param::required("confirmation", ParamType::Str))
            .with_output(Param::required("price", ParamType::Float))
    };
    vec![
        ServiceDescription::new(services::DOMESTIC_FLIGHT, "AusAir Demo")
            .with_doc("Books flights within Australia")
            .with_operation(flight_op("Domestic"))
            .with_binding(Binding::fabric("svc.dfb")),
        ServiceDescription::new(services::INTERNATIONAL_FLIGHT, "GlobalWings Demo")
            .with_doc("Books international flights")
            .with_operation(flight_op("International"))
            .with_binding(Binding::fabric("svc.ifb")),
        ServiceDescription::new(services::TRAVEL_INSURANCE, "SafeTrip Demo")
            .with_doc("Issues travel insurance policies")
            .with_operation(
                OperationDef::new("insure")
                    .with_input(Param::required("customer", ParamType::Str))
                    .with_input(Param::required("destination", ParamType::Str))
                    .with_input(Param::optional("trip_value", ParamType::Float))
                    .with_output(Param::required("policy", ParamType::Str)),
            )
            .with_binding(Binding::fabric("svc.ti")),
        ServiceDescription::new(services::ATTRACTION_SEARCH, "SightSeer Demo")
            .with_doc("Searches tourist attractions near a city")
            .with_operation(
                OperationDef::new("searchAttractions")
                    .with_input(Param::required("city", ParamType::Str))
                    .with_output(Param::required("major", ParamType::Str))
                    .with_output(Param::required("all", ParamType::List)),
            )
            .with_binding(Binding::fabric("svc.as")),
        ServiceDescription::new(services::CAR_RENTAL, "WheelsNow Demo")
            .with_doc("Rents cars for pickup near an accommodation")
            .with_operation(
                OperationDef::new("rentCar")
                    .with_input(Param::required("customer", ParamType::Str))
                    .with_input(Param::required("pickup", ParamType::Str))
                    .with_input(Param::required("from", ParamType::Date))
                    .with_input(Param::optional("to", ParamType::Date))
                    .with_output(Param::required("confirmation", ParamType::Str)),
            )
            .with_binding(Binding::fabric("svc.cr")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_expr::parse;

    #[test]
    fn travel_chart_validates_cleanly() {
        let sc = travel_statechart();
        let report = sc.validate();
        assert!(report.is_ok(), "unexpected validation errors: {report:?}");
    }

    #[test]
    fn predicates_match_scenario_semantics() {
        let mut env = MapEnv::with_builtins();
        register_predicates(&mut env);
        env.set("destination", Value::str("Sydney"));
        assert!(parse("domestic(destination)")
            .unwrap()
            .eval_bool(&env)
            .unwrap());
        env.set("destination", Value::str("Hong Kong"));
        assert!(!parse("domestic(destination)")
            .unwrap()
            .eval_bool(&env)
            .unwrap());
        env.set("major_attraction", Value::str("Opera House"));
        env.set("accommodation", Value::str("Sydney CBD Hotel"));
        assert!(parse("near(major_attraction, accommodation)")
            .unwrap()
            .eval_bool(&env)
            .unwrap());
        env.set("accommodation", Value::str("Bondi Hostel"));
        assert!(!parse("near(major_attraction, accommodation)")
            .unwrap()
            .eval_bool(&env)
            .unwrap());
    }

    #[test]
    fn predicate_errors_on_bad_arguments() {
        use selfserv_expr::Env as _;
        let mut env = MapEnv::new();
        register_predicates(&mut env);
        assert!(env.call("domestic", &[Value::Int(1)]).is_err());
        assert!(env.call("near", &[Value::str("a")]).is_err());
    }

    #[test]
    fn descriptions_cover_all_elementary_services() {
        let sc = travel_statechart();
        let descs = travel_service_descriptions();
        for svc in sc.referenced_services() {
            assert!(
                descs.iter().any(|d| d.name == svc),
                "no description for referenced service {svc}"
            );
        }
        for d in &descs {
            assert!(d.primary_binding().is_some(), "{} has no binding", d.name);
            assert!(!d.operations.is_empty());
        }
    }

    #[test]
    fn task_mappings_reference_declared_variables() {
        let sc = travel_statechart();
        for state in sc.task_states() {
            let spec = state.task().unwrap();
            for m in &spec.inputs {
                for var in m.expr.referenced_vars() {
                    assert!(
                        sc.variable(&var).is_some(),
                        "state {} input {} references undeclared {var}",
                        state.id,
                        m.param
                    );
                }
            }
            for m in &spec.outputs {
                assert!(
                    sc.variable(&m.var).is_some(),
                    "state {} output captures into undeclared {}",
                    state.id,
                    m.var
                );
            }
        }
    }
}
