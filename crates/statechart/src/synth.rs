//! Synthetic statechart families used by tests and by the benchmark
//! harness (experiment E2/E4 parameter sweeps).
//!
//! Every generator produces a chart that passes [`Statechart::validate`]
//! with zero issues, references services named `SynthService<i>` with a
//! single operation `run`, and threads a single `payload` variable through
//! the tasks so executions have observable data flow.

use crate::builder::{StatechartBuilder, TaskDef, TransitionDef};
use crate::model::Statechart;
use selfserv_wsdl::ParamType;

/// Name of the synthetic service bound to task `i`.
pub fn synth_service_name(i: usize) -> String {
    format!("SynthService{i}")
}

/// The operation every synthetic service offers.
pub const SYNTH_OPERATION: &str = "run";

fn base(name: impl Into<String>) -> StatechartBuilder {
    StatechartBuilder::new(name)
        .variable("payload", ParamType::Str)
        .variable("branch", ParamType::Int)
}

fn synth_task(i: usize) -> TaskDef {
    TaskDef::new(format!("s{i}"), format!("Step {i}"))
        .service(synth_service_name(i), SYNTH_OPERATION)
        .input("payload", "payload")
        .output("payload", "payload")
}

/// A linear pipeline: `s0 → s1 → … → s(n-1) → F`. Requires `n ≥ 1`.
pub fn sequence(n: usize) -> Statechart {
    assert!(n >= 1, "sequence needs at least one task");
    let mut b = base(format!("SynthSeq{n}")).initial("s0");
    for i in 0..n {
        b = b.task(synth_task(i));
    }
    b = b.final_state("F");
    for i in 0..n - 1 {
        b = b.transition(TransitionDef::new(
            format!("t{i}"),
            format!("s{i}"),
            format!("s{}", i + 1),
        ));
    }
    b = b.transition(TransitionDef::new(
        format!("t{}", n - 1),
        format!("s{}", n - 1),
        "F",
    ));
    b.build().expect("synthetic sequence is well-formed")
}

/// An exclusive choice: a choice state fans out to `n` guarded task
/// branches (`branch == i`), all converging on a final state. Requires
/// `n ≥ 1`.
pub fn xor_choice(n: usize) -> Statechart {
    assert!(n >= 1, "xor_choice needs at least one branch");
    let mut b = base(format!("SynthXor{n}"))
        .initial("C")
        .choice("C", "Branch Choice");
    for i in 0..n {
        b = b.task(synth_task(i));
    }
    b = b.final_state("F");
    for i in 0..n {
        b = b
            .transition(
                TransitionDef::new(format!("tc{i}"), "C", format!("s{i}"))
                    .guard(format!("branch == {i}")),
            )
            .transition(TransitionDef::new(format!("tf{i}"), format!("s{i}"), "F"));
    }
    b.build().expect("synthetic xor choice is well-formed")
}

/// A parallel block: one concurrent state with `n` regions, each containing
/// a single task, followed by a final state. Requires `n ≥ 2`.
pub fn parallel(n: usize) -> Statechart {
    assert!(n >= 2, "parallel needs at least two regions");
    let region_names: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    let initials: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let regions: Vec<(&str, &str)> = region_names
        .iter()
        .zip(initials.iter())
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    let mut b =
        base(format!("SynthPar{n}"))
            .initial("P")
            .concurrent("P", "Parallel Block", regions);
    for i in 0..n {
        b = b
            .task_in_region("P", i, synth_task(i))
            .final_in("P", i, format!("rf{i}"))
            .transition(TransitionDef::new(
                format!("t{i}"),
                format!("s{i}"),
                format!("rf{i}"),
            ));
    }
    b = b
        .final_state("F")
        .transition(TransitionDef::new("tp", "P", "F"));
    b.build().expect("synthetic parallel block is well-formed")
}

/// A nesting chain: `depth` compound states each wrapping the next, with a
/// single task at the innermost level. Requires `depth ≥ 1`.
pub fn nested(depth: usize) -> Statechart {
    assert!(depth >= 1, "nested needs depth >= 1");
    let mut b = base(format!("SynthNest{depth}")).initial("c0");
    // c0 wraps c1 wraps ... wraps c(depth-1) which wraps the task.
    for lvl in 0..depth {
        let id = format!("c{lvl}");
        let inner = if lvl + 1 < depth {
            format!("c{}", lvl + 1)
        } else {
            "inner".to_string()
        };
        if lvl == 0 {
            b = b.compound(id, format!("Level {lvl}"), inner);
        } else {
            b = b.compound_in(
                format!("c{}", lvl - 1),
                0,
                id,
                format!("Level {lvl}"),
                inner,
            );
        }
    }
    let last = format!("c{}", depth - 1);
    b = b
        .task_in(last.clone(), synth_task(0))
        .final_in(last.clone(), 0, "inner_f".to_string())
        .transition(TransitionDef::new("ti", "s0", "inner_f"));
    // Rename: the innermost task id is `s0`, its compound's initial must be
    // "inner" — fix by pointing initial at s0 instead.
    // (Handled below by rebuilding with correct initial name.)
    b = b
        .final_state("F")
        .transition(TransitionDef::new("to", "c0", "F"));
    // Each compound level except the innermost completes when its child
    // compound completes; add the chain of finals.
    for lvl in 0..depth.saturating_sub(1) {
        let parent = format!("c{lvl}");
        let child = format!("c{}", lvl + 1);
        b = b
            .final_in(parent.clone(), 0, format!("f{lvl}"))
            .transition(TransitionDef::new(
                format!("tf{lvl}"),
                child,
                format!("f{lvl}"),
            ));
    }
    let sc = b.build().expect("synthetic nested chart is well-formed");
    // Fix the innermost compound's initial: it was declared as "inner" but
    // the task is "s0".
    let mut sc = sc;
    let last_id = crate::model::StateId::new(last);
    if let Some(state) = sc.state(&last_id).cloned() {
        if let crate::model::StateKind::Compound { .. } = state.kind {
            let mut fixed = state;
            fixed.kind = crate::model::StateKind::Compound {
                initial: "s0".into(),
            };
            sc.insert_state(fixed);
        }
    }
    sc
}

/// The composite families the chaos harness executes under seeded fault
/// schedules: one representative per control-flow shape (linear routing,
/// AND-join fan-in, nested completion bubbling). Each row is
/// `(family name, chart, number of distinct synthetic services referenced)`
/// — the service count sizes the backend map
/// (`synth_service_name(0..count)`). Kept small on purpose: a chaos trial
/// runs dozens of schedules per family, so per-execution cost dominates.
pub fn chaos_corpus() -> Vec<(&'static str, Statechart, usize)> {
    vec![
        ("sequence", sequence(3), 3),
        ("parallel", parallel(3), 3),
        ("nested", nested(2), 1),
    ]
}

/// A fork-join ladder: `depth` concurrent blocks of `width` regions run in
/// sequence — the stress shape for AND-join routing tables. Requires
/// `width ≥ 2`, `depth ≥ 1`.
pub fn ladder(width: usize, depth: usize) -> Statechart {
    assert!(width >= 2 && depth >= 1);
    let mut b = base(format!("SynthLadder{width}x{depth}")).initial("P0");
    let mut task_idx = 0;
    for d in 0..depth {
        let pid = format!("P{d}");
        let region_names: Vec<String> = (0..width).map(|r| format!("{pid}r{r}")).collect();
        let initials: Vec<String> = (0..width).map(|r| format!("{pid}s{r}")).collect();
        let regions: Vec<(&str, &str)> = region_names
            .iter()
            .zip(initials.iter())
            .map(|(r, s)| (r.as_str(), s.as_str()))
            .collect();
        b = b.concurrent(pid.clone(), format!("Stage {d}"), regions);
        for r in 0..width {
            let sid = format!("{pid}s{r}");
            let fid = format!("{pid}f{r}");
            b = b
                .task_in_region(
                    pid.clone(),
                    r,
                    TaskDef::new(sid.clone(), format!("Stage {d} lane {r}"))
                        .service(synth_service_name(task_idx), SYNTH_OPERATION)
                        .input("payload", "payload")
                        .output("payload", "payload"),
                )
                .final_in(pid.clone(), r, fid.clone())
                .transition(TransitionDef::new(format!("t_{sid}"), sid, fid));
            task_idx += 1;
        }
    }
    b = b.final_state("F");
    for d in 0..depth {
        let target = if d + 1 < depth {
            format!("P{}", d + 1)
        } else {
            "F".to_string()
        };
        b = b.transition(TransitionDef::new(
            format!("tp{d}"),
            format!("P{d}"),
            target,
        ));
    }
    b.build().expect("synthetic ladder is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_clean_and_sized() {
        for n in [1, 2, 5, 20] {
            let sc = sequence(n);
            let r = sc.validate();
            assert!(r.is_ok(), "sequence({n}): {:?}", r.issues);
            assert!(r.issues.is_empty(), "sequence({n}): {:?}", r.issues);
            assert_eq!(sc.state_count(), n + 1); // tasks + final
            assert_eq!(sc.transitions.len(), n);
        }
    }

    #[test]
    fn xor_choice_is_clean() {
        for n in [1, 2, 8] {
            let sc = xor_choice(n);
            let r = sc.validate();
            assert!(r.is_ok(), "xor({n}): {:?}", r.issues);
            assert_eq!(sc.state_count(), n + 2); // choice + tasks + final
            assert_eq!(sc.outgoing(&"C".into()).len(), n);
        }
    }

    #[test]
    fn parallel_is_clean() {
        for n in [2, 3, 8] {
            let sc = parallel(n);
            let r = sc.validate();
            assert!(r.is_ok(), "parallel({n}): {:?}", r.issues);
            // concurrent + n tasks + n finals + root final
            assert_eq!(sc.state_count(), 2 * n + 2);
        }
    }

    #[test]
    fn nested_is_clean() {
        for depth in [1, 2, 5] {
            let sc = nested(depth);
            let r = sc.validate();
            assert!(r.is_ok(), "nested({depth}): {:?}", r.issues);
            assert_eq!(sc.depth_of(&"s0".into()), depth);
        }
    }

    #[test]
    fn ladder_is_clean() {
        let sc = ladder(3, 2);
        let r = sc.validate();
        assert!(r.is_ok(), "{:?}", r.issues);
        assert_eq!(sc.task_states().count(), 6);
    }

    #[test]
    fn synth_charts_round_trip_xml() {
        for sc in [
            sequence(4),
            xor_choice(3),
            parallel(3),
            nested(3),
            ladder(2, 2),
        ] {
            let back = Statechart::from_xml(&sc.to_xml()).unwrap();
            assert_eq!(back, sc, "{} failed xml round-trip", sc.name);
        }
    }

    #[test]
    fn service_names_are_deterministic() {
        assert_eq!(synth_service_name(3), "SynthService3");
        let sc = sequence(3);
        let services = sc.referenced_services();
        assert_eq!(
            services,
            vec!["SynthService0", "SynthService1", "SynthService2"]
        );
    }
}

/// A tiny deterministic linear-congruential generator so random charts
/// are reproducible without external dependencies.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Recursively generated pseudo-random statechart: a root-region pipeline
/// whose segments are randomly basic tasks, compound wrappers, or
/// concurrent blocks, nested up to `max_depth`. Deterministic in `seed`;
/// always validates cleanly. `budget` loosely bounds the number of task
/// states (at least one is always produced).
pub fn recursive(seed: u64, budget: usize, max_depth: usize) -> Statechart {
    let mut rng = Lcg(seed.wrapping_add(0x9E3779B97F4A7C15));
    let mut b = base(format!("SynthRand{seed}"));
    let mut next_id = 0usize;
    let mut remaining = budget.max(1);
    let segments = 1 + rng.below(3);
    let mut prev: Option<String> = None;
    let mut initial = None;
    for seg in 0..segments {
        let id = build_segment(
            &mut b,
            &mut rng,
            &mut next_id,
            &mut remaining,
            max_depth,
            None,
            0,
        );
        if seg == 0 {
            initial = Some(id.clone());
        }
        if let Some(p) = prev {
            b = b.transition(TransitionDef::new(format!("root_t{seg}"), p, id.clone()));
        }
        prev = Some(id);
    }
    b = b.final_state("ROOT_F").transition(TransitionDef::new(
        "root_done",
        prev.expect("at least one segment"),
        "ROOT_F",
    ));
    b = b.initial(initial.expect("initial set"));
    b.build().expect("random chart is well-formed")
}

/// Builds one segment (a task, or a nested compound/concurrent structure
/// with a single entry == exit id) inside the given parent/region and
/// returns its id.
fn build_segment(
    b: &mut StatechartBuilder,
    rng: &mut Lcg,
    next_id: &mut usize,
    remaining: &mut usize,
    max_depth: usize,
    parent: Option<(String, usize)>,
    depth: usize,
) -> String {
    fn fresh(next_id: &mut usize, tag: &str) -> String {
        let id = format!("{tag}{next_id}");
        *next_id += 1;
        id
    }
    fn add_task(
        b: &mut StatechartBuilder,
        next_id: &mut usize,
        remaining: &mut usize,
        parent: &Option<(String, usize)>,
    ) -> String {
        let id = fresh(next_id, "rt");
        *remaining = remaining.saturating_sub(1);
        let def = TaskDef::new(id.clone(), format!("Task {id}"))
            .service(synth_service_name(*next_id % 8), SYNTH_OPERATION)
            .input("payload", "payload")
            .output("payload", "payload");
        let taken = std::mem::take(b);
        *b = match parent {
            None => taken.task(def),
            Some((p, r)) => taken.task_in_region(p.clone(), *r, def),
        };
        id
    }
    let choice = if depth >= max_depth || *remaining <= 1 {
        0
    } else {
        rng.below(3)
    };
    match choice {
        // Compound wrapping a nested segment.
        1 => {
            let id = fresh(next_id, "rc");
            let child = build_segment(
                b,
                rng,
                next_id,
                remaining,
                max_depth,
                Some((id.clone(), 0)),
                depth + 1,
            );
            let fin = fresh(next_id, "rf");
            let taken = std::mem::take(b);
            *b = match &parent {
                None => taken.compound(id.clone(), format!("Compound {id}"), child.clone()),
                Some((p, r)) => taken.compound_in(
                    p.clone(),
                    *r,
                    id.clone(),
                    format!("Compound {id}"),
                    child.clone(),
                ),
            };
            let taken = std::mem::take(b);
            *b = taken
                .final_in(id.clone(), 0, fin.clone())
                .transition(TransitionDef::new(format!("t_{child}_{fin}"), child, fin));
            id
        }
        // Concurrent block with 2..=3 regions.
        2 => {
            let id = fresh(next_id, "rp");
            let n_regions = 2 + rng.below(2);
            let mut initials = Vec::new();
            for r in 0..n_regions {
                let child = build_segment(
                    b,
                    rng,
                    next_id,
                    remaining,
                    max_depth,
                    Some((id.clone(), r)),
                    depth + 1,
                );
                let fin = fresh(next_id, "rf");
                let taken = std::mem::take(b);
                *b = taken
                    .final_in(id.clone(), r, fin.clone())
                    .transition(TransitionDef::new(
                        format!("t_{child}_{fin}"),
                        child.clone(),
                        fin,
                    ));
                initials.push(child);
            }
            let regions: Vec<(String, String)> = initials
                .iter()
                .enumerate()
                .map(|(r, init)| (format!("r{r}"), init.clone()))
                .collect();
            let region_refs: Vec<(&str, &str)> = regions
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            let taken = std::mem::take(b);
            *b = match &parent {
                None => taken.concurrent(id.clone(), format!("Parallel {id}"), region_refs),
                Some((p, r)) => taken.concurrent_in(
                    p.clone(),
                    *r,
                    id.clone(),
                    format!("Parallel {id}"),
                    region_refs,
                ),
            };
            id
        }
        // Plain task.
        _ => add_task(b, next_id, remaining, &parent),
    }
}

#[cfg(test)]
mod recursive_tests {
    use super::*;

    #[test]
    fn random_charts_validate_cleanly() {
        for seed in 0..40 {
            let sc = recursive(seed, 12, 3);
            let r = sc.validate();
            assert!(r.issues.is_empty(), "seed {seed}: {:?}", r.issues);
            assert!(sc.task_states().count() >= 1);
        }
    }

    #[test]
    fn random_charts_are_deterministic_in_seed() {
        assert_eq!(recursive(7, 10, 3), recursive(7, 10, 3));
        assert_ne!(recursive(7, 10, 3), recursive(8, 10, 3));
    }

    #[test]
    fn random_charts_round_trip_xml() {
        for seed in [1u64, 5, 23] {
            let sc = recursive(seed, 10, 3);
            let back = Statechart::from_xml(&sc.to_xml()).unwrap();
            assert_eq!(back, sc);
        }
    }
}
