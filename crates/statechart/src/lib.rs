//! # selfserv-statechart
//!
//! The declarative composition model of SELF-SERV: **statecharts**.
//!
//! The paper composes web services with "a declarative language for
//! composing services based on statecharts", where "an operation of a
//! composite service can be seen as having input parameters, output
//! parameters, consumed and produced events, and a statechart glueing these
//! elements together" (Section 2). This crate provides:
//!
//! * the statechart model ([`Statechart`], [`State`], [`StateKind`],
//!   [`Transition`]) supporting task states bound to service or community
//!   operations, choice pseudo-states, nested compound (OR) states,
//!   concurrent (AND) states with multiple regions, and final states;
//! * ECA-rule transitions: an optional triggering event, a guard condition
//!   in the `selfserv-expr` language, and variable-assignment actions;
//! * a [`builder`](StatechartBuilder) mirroring what the original service
//!   editor GUI produced;
//! * [`validation`](Statechart::validate) with errors and warnings
//!   (the analysis the service deployer runs before generating routing
//!   tables);
//! * an XML round-trip (the "translated into an XML document" panel of
//!   Figure 2);
//! * the paper's travel scenario ([`travel::travel_statechart`]) and
//!   synthetic statechart families ([`synth`]) used by tests and benches.
//!
//! ## Structural conventions
//!
//! Transitions connect *sibling* states (same parent, same region). A
//! compound state completes when its region reaches a final state; a
//! concurrent state completes when **all** its regions do (AND-join). These
//! restrictions are exactly what makes the peer-to-peer routing tables of
//! `selfserv-routing` statically computable, which is the paper's central
//! trick.

mod builder;
mod model;
pub mod synth;
pub mod travel;
mod validate;
mod xml_codec;

pub use builder::{StatechartBuilder, TaskDef, TransitionDef};
pub use model::{
    Assignment, InputMapping, OutputMapping, RegionSpec, ServiceBinding, State, StateId, StateKind,
    Statechart, TaskSpec, Transition, VarDecl,
};
pub use validate::{ValidationIssue, ValidationReport};
pub use xml_codec::StatechartCodecError;

#[cfg(test)]
mod proptests;
