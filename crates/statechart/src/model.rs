//! Core statechart data model.

use selfserv_expr::{Expr, Value};
use selfserv_wsdl::ParamType;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a state within one statechart (e.g. `"CR"` for the travel
/// scenario's Car Rental state).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub String);

impl StateId {
    /// Wraps a string as a state id.
    pub fn new(s: impl Into<String>) -> Self {
        StateId(s.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StateId {
    fn from(s: &str) -> Self {
        StateId(s.to_string())
    }
}

impl From<String> for StateId {
    fn from(s: String) -> Self {
        StateId(s)
    }
}

/// A declared statechart variable. Variables carry case data between
/// component services (the "input/output parameters" of Figure 2's bottom
/// panel).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
    /// Initial value bound when an instance starts (inputs of the composite
    /// operation override this).
    pub initial: Option<Value>,
}

/// What a task state invokes when entered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceBinding {
    /// A direct (elementary or composite) service operation.
    Service {
        /// Registered service name.
        service: String,
        /// Operation name.
        operation: String,
    },
    /// An operation delegated through a service community, which picks the
    /// concrete provider at run time.
    Community {
        /// Community name.
        community: String,
        /// Generic operation name.
        operation: String,
    },
}

impl ServiceBinding {
    /// The operation name, whichever the binding kind.
    pub fn operation(&self) -> &str {
        match self {
            ServiceBinding::Service { operation, .. }
            | ServiceBinding::Community { operation, .. } => operation,
        }
    }

    /// The target name (service or community).
    pub fn target(&self) -> &str {
        match self {
            ServiceBinding::Service { service, .. } => service,
            ServiceBinding::Community { community, .. } => community,
        }
    }

    /// True for community bindings.
    pub fn is_community(&self) -> bool {
        matches!(self, ServiceBinding::Community { .. })
    }
}

/// Maps a service input parameter to an expression over statechart
/// variables, evaluated when the task state is entered.
#[derive(Debug, Clone, PartialEq)]
pub struct InputMapping {
    /// The operation's input parameter.
    pub param: String,
    /// Expression producing its value.
    pub expr: Expr,
}

/// Maps a service output parameter back into a statechart variable when the
/// task completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputMapping {
    /// The operation's output parameter.
    pub param: String,
    /// Statechart variable receiving the value.
    pub var: String,
}

/// The payload of a task state.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// What to invoke.
    pub binding: ServiceBinding,
    /// Input parameter bindings.
    pub inputs: Vec<InputMapping>,
    /// Output captures.
    pub outputs: Vec<OutputMapping>,
}

/// One region of a concurrent (AND) state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region name, unique within the concurrent state.
    pub name: String,
    /// The region's initial state (must be a child of the concurrent state
    /// assigned to this region).
    pub initial: StateId,
}

/// The kind-specific part of a state.
#[derive(Debug, Clone, PartialEq)]
pub enum StateKind {
    /// A basic state bound to a service/community operation; completes when
    /// the invocation returns.
    Task(TaskSpec),
    /// A pseudo-state with no work: completes immediately, used to fan out
    /// guarded alternatives (e.g. domestic vs. international flight).
    Choice,
    /// An OR-state containing a nested region; completes when the region
    /// reaches a final state.
    Compound {
        /// Initial child state.
        initial: StateId,
    },
    /// An AND-state with parallel regions; completes when all regions reach
    /// their final states.
    Concurrent {
        /// The regions (two or more).
        regions: Vec<RegionSpec>,
    },
    /// A final state; reaching it completes the enclosing region.
    Final,
}

impl StateKind {
    /// Short tag used in XML and diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            StateKind::Task(_) => "task",
            StateKind::Choice => "choice",
            StateKind::Compound { .. } => "compound",
            StateKind::Concurrent { .. } => "concurrent",
            StateKind::Final => "final",
        }
    }
}

/// A state of the composite service's statechart.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Unique id.
    pub id: StateId,
    /// Display name (the editor's "state name" field).
    pub name: String,
    /// Enclosing state; `None` for children of the root region.
    pub parent: Option<StateId>,
    /// Region index within a concurrent parent (always 0 under compound
    /// parents and at root).
    pub region: usize,
    /// Kind-specific payload.
    pub kind: StateKind,
}

impl State {
    /// True for task states.
    pub fn is_task(&self) -> bool {
        matches!(self.kind, StateKind::Task(_))
    }

    /// True for final states.
    pub fn is_final(&self) -> bool {
        matches!(self.kind, StateKind::Final)
    }

    /// The task payload, for task states.
    pub fn task(&self) -> Option<&TaskSpec> {
        match &self.kind {
            StateKind::Task(t) => Some(t),
            _ => None,
        }
    }
}

/// A variable assignment performed when a transition fires (the "A" of the
/// editor's ECA rules).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target statechart variable.
    pub var: String,
    /// Expression over statechart variables.
    pub expr: Expr,
}

/// A transition between sibling states, carrying an ECA rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Unique id.
    pub id: String,
    /// Source state.
    pub source: StateId,
    /// Target state.
    pub target: StateId,
    /// Optional triggering event name; `None` means the transition is
    /// evaluated on source completion.
    pub event: Option<String>,
    /// Optional guard; `None` means always enabled.
    pub guard: Option<Expr>,
    /// Assignments executed when the transition fires.
    pub actions: Vec<Assignment>,
}

/// A complete composite-service statechart.
#[derive(Debug, Clone, PartialEq)]
pub struct Statechart {
    /// The composite service's name.
    pub name: String,
    /// Declared variables.
    pub variables: Vec<VarDecl>,
    /// Initial state of the root region.
    pub initial: StateId,
    /// All states, keyed by id (sorted for deterministic iteration).
    pub(crate) states: BTreeMap<StateId, State>,
    /// All transitions.
    pub transitions: Vec<Transition>,
}

impl Statechart {
    /// Creates an empty statechart; use [`crate::StatechartBuilder`] for
    /// ergonomic construction.
    pub fn empty(name: impl Into<String>, initial: impl Into<StateId>) -> Self {
        Statechart {
            name: name.into(),
            variables: Vec::new(),
            initial: initial.into(),
            states: BTreeMap::new(),
            transitions: Vec::new(),
        }
    }

    /// Inserts a state, replacing any previous state with the same id.
    pub fn insert_state(&mut self, state: State) {
        self.states.insert(state.id.clone(), state);
    }

    /// Looks up a state.
    pub fn state(&self, id: &StateId) -> Option<&State> {
        self.states.get(id)
    }

    /// Looks up a state by string id.
    pub fn state_str(&self, id: &str) -> Option<&State> {
        self.states.get(&StateId::new(id))
    }

    /// Iterates over all states in id order.
    pub fn states(&self) -> impl Iterator<Item = &State> {
        self.states.values()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Declared variable by name.
    pub fn variable(&self, name: &str) -> Option<&VarDecl> {
        self.variables.iter().find(|v| v.name == name)
    }

    /// Children of `parent` in `region`, in id order. `parent = None` walks
    /// the root region (where `region` must be 0).
    pub fn children_of(&self, parent: Option<&StateId>, region: usize) -> Vec<&State> {
        self.states
            .values()
            .filter(|s| s.parent.as_ref() == parent && s.region == region)
            .collect()
    }

    /// All direct children of `parent` regardless of region.
    pub fn all_children_of(&self, parent: &StateId) -> Vec<&State> {
        self.states
            .values()
            .filter(|s| s.parent.as_ref() == Some(parent))
            .collect()
    }

    /// Outgoing transitions of a state, in declaration order.
    pub fn outgoing(&self, id: &StateId) -> Vec<&Transition> {
        self.transitions
            .iter()
            .filter(|t| &t.source == id)
            .collect()
    }

    /// Incoming transitions of a state, in declaration order.
    pub fn incoming(&self, id: &StateId) -> Vec<&Transition> {
        self.transitions
            .iter()
            .filter(|t| &t.target == id)
            .collect()
    }

    /// Final states of `parent`'s region `region` (root region when
    /// `parent` is `None`).
    pub fn final_states_of(&self, parent: Option<&StateId>, region: usize) -> Vec<&State> {
        self.children_of(parent, region)
            .into_iter()
            .filter(|s| s.is_final())
            .collect()
    }

    /// True when `ancestor` encloses `id` (strictly).
    pub fn is_ancestor(&self, ancestor: &StateId, id: &StateId) -> bool {
        let mut cur = self.states.get(id).and_then(|s| s.parent.as_ref());
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.states.get(p).and_then(|s| s.parent.as_ref());
        }
        false
    }

    /// Nesting depth of a state (root children have depth 0).
    pub fn depth_of(&self, id: &StateId) -> usize {
        let mut depth = 0;
        let mut cur = self.states.get(id).and_then(|s| s.parent.as_ref());
        while let Some(p) = cur {
            depth += 1;
            cur = self.states.get(p).and_then(|s| s.parent.as_ref());
        }
        depth
    }

    /// All task states (the ones that invoke component services).
    pub fn task_states(&self) -> impl Iterator<Item = &State> {
        self.states.values().filter(|s| s.is_task())
    }

    /// Names of all communities referenced by task bindings.
    pub fn referenced_communities(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in self.task_states() {
            if let Some(TaskSpec {
                binding: ServiceBinding::Community { community, .. },
                ..
            }) = s.task().cloned().as_ref()
            {
                if !out.contains(community) {
                    out.push(community.clone());
                }
            }
        }
        out
    }

    /// Names of all directly-referenced services.
    pub fn referenced_services(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in self.task_states() {
            if let Some(t) = s.task() {
                if let ServiceBinding::Service { service, .. } = &t.binding {
                    if !out.contains(service) {
                        out.push(service.clone());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::travel::travel_statechart;

    #[test]
    fn state_id_display_and_conversions() {
        let id: StateId = "CR".into();
        assert_eq!(id.to_string(), "CR");
        assert_eq!(id.as_str(), "CR");
        assert_eq!(StateId::from("CR".to_string()), id);
    }

    #[test]
    fn travel_chart_structure() {
        let sc = travel_statechart();
        assert_eq!(sc.name, "Travel Planning");
        assert_eq!(sc.initial, StateId::new("ARR"));
        // Root region: ARR (concurrent), CR, post-choice, final.
        let root = sc.children_of(None, 0);
        assert!(root.iter().any(|s| s.id.as_str() == "ARR"));
        assert!(root.iter().any(|s| s.id.as_str() == "CR"));
        // Two regions under ARR.
        let arr = sc.state_str("ARR").unwrap();
        match &arr.kind {
            StateKind::Concurrent { regions } => assert_eq!(regions.len(), 2),
            other => panic!("ARR should be concurrent, got {}", other.kind_name()),
        }
        // ITA is compound with nested children.
        let ita = sc.state_str("ITA").unwrap();
        assert!(matches!(ita.kind, StateKind::Compound { .. }));
        assert!(sc.is_ancestor(&StateId::new("ITA"), &StateId::new("IFB")));
        assert!(!sc.is_ancestor(&StateId::new("ITA"), &StateId::new("CR")));
    }

    #[test]
    fn children_and_regions() {
        let sc = travel_statechart();
        let arr_id = StateId::new("ARR");
        let region0 = sc.children_of(Some(&arr_id), 0);
        let region1 = sc.children_of(Some(&arr_id), 1);
        assert!(!region0.is_empty());
        assert!(!region1.is_empty());
        // Regions are disjoint.
        for s in &region0 {
            assert!(!region1.iter().any(|t| t.id == s.id));
        }
        let all = sc.all_children_of(&arr_id);
        assert_eq!(all.len(), region0.len() + region1.len());
    }

    #[test]
    fn outgoing_incoming() {
        let sc = travel_statechart();
        let fc = StateId::new("FC");
        let out = sc.outgoing(&fc);
        assert_eq!(out.len(), 2, "flight choice has two guarded branches");
        assert!(out.iter().all(|t| t.guard.is_some()));
        let ab_in = sc.incoming(&StateId::new("AB"));
        assert_eq!(
            ab_in.len(),
            2,
            "both flight branches lead to accommodation booking"
        );
    }

    #[test]
    fn final_states_lookup() {
        let sc = travel_statechart();
        let root_finals = sc.final_states_of(None, 0);
        assert_eq!(root_finals.len(), 1);
        let arr_id = StateId::new("ARR");
        assert_eq!(sc.final_states_of(Some(&arr_id), 0).len(), 1);
        assert_eq!(sc.final_states_of(Some(&arr_id), 1).len(), 1);
    }

    #[test]
    fn depth_of() {
        let sc = travel_statechart();
        assert_eq!(sc.depth_of(&StateId::new("ARR")), 0);
        assert_eq!(sc.depth_of(&StateId::new("AB")), 1);
        assert_eq!(sc.depth_of(&StateId::new("IFB")), 2);
    }

    #[test]
    fn referenced_services_and_communities() {
        let sc = travel_statechart();
        let communities = sc.referenced_communities();
        assert_eq!(communities, vec!["AccommodationBooking".to_string()]);
        let services = sc.referenced_services();
        assert!(services.iter().any(|s| s == "Domestic Flight Booking"));
        assert!(services.iter().any(|s| s == "Attraction Search"));
    }

    #[test]
    fn binding_accessors() {
        let b = ServiceBinding::Community {
            community: "AB".into(),
            operation: "book".into(),
        };
        assert!(b.is_community());
        assert_eq!(b.operation(), "book");
        assert_eq!(b.target(), "AB");
        let s = ServiceBinding::Service {
            service: "CR".into(),
            operation: "rent".into(),
        };
        assert!(!s.is_community());
        assert_eq!(s.target(), "CR");
    }

    #[test]
    fn insert_state_replaces() {
        let mut sc = Statechart::empty("X", "a");
        sc.insert_state(State {
            id: "a".into(),
            name: "first".into(),
            parent: None,
            region: 0,
            kind: StateKind::Choice,
        });
        sc.insert_state(State {
            id: "a".into(),
            name: "second".into(),
            parent: None,
            region: 0,
            kind: StateKind::Final,
        });
        assert_eq!(sc.state_count(), 1);
        assert_eq!(sc.state_str("a").unwrap().name, "second");
    }
}
