//! XML round-trip for statecharts — the document shown in the bottom-right
//! panel of Figure 2 ("the service is translated into an XML document for
//! subsequent analysis and processing by the service deployer").

use crate::model::{
    Assignment, InputMapping, OutputMapping, RegionSpec, ServiceBinding, State, StateId, StateKind,
    Statechart, TaskSpec, Transition, VarDecl,
};
use selfserv_expr::Value;
use selfserv_wsdl::ParamType;
use selfserv_xml::{Element, XmlError};
use std::fmt;

/// Errors produced while encoding/decoding statechart XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatechartCodecError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for StatechartCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statechart codec error: {}", self.message)
    }
}

impl std::error::Error for StatechartCodecError {}

impl From<String> for StatechartCodecError {
    fn from(message: String) -> Self {
        StatechartCodecError { message }
    }
}

impl From<XmlError> for StatechartCodecError {
    fn from(e: XmlError) -> Self {
        StatechartCodecError {
            message: e.to_string(),
        }
    }
}

impl From<selfserv_expr::ParseError> for StatechartCodecError {
    fn from(e: selfserv_expr::ParseError) -> Self {
        StatechartCodecError {
            message: e.to_string(),
        }
    }
}

fn decode_initial_value(ty: ParamType, s: &str) -> Result<Value, StatechartCodecError> {
    Ok(match ty {
        ParamType::Str | ParamType::Date => Value::Str(s.to_string()),
        ParamType::Int => Value::Int(
            s.parse()
                .map_err(|_| StatechartCodecError::from(format!("bad int {s:?}")))?,
        ),
        ParamType::Float => Value::Float(
            s.parse()
                .map_err(|_| StatechartCodecError::from(format!("bad float {s:?}")))?,
        ),
        ParamType::Bool => match s {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => return Err(format!("bad boolean {s:?}").into()),
        },
        ParamType::List => {
            if s.is_empty() {
                Value::List(Vec::new())
            } else {
                Value::List(s.split('|').map(Value::str).collect())
            }
        }
    })
}

impl Statechart {
    /// Encodes the statechart to its XML document form. States nest inside
    /// their parents (concurrent children grouped under `<region>`);
    /// transitions are listed flat at the end.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("statechart")
            .with_attr("name", &self.name)
            .with_attr("initial", self.initial.as_str());
        for v in &self.variables {
            let mut ve = Element::new("variable")
                .with_attr("name", &v.name)
                .with_attr("type", v.ty.name());
            if let Some(init) = &v.initial {
                ve.set_attr("initial", init.to_lexical());
            }
            root.push_child(ve);
        }
        for s in self.children_of(None, 0) {
            root.push_child(self.encode_state(s));
        }
        for t in &self.transitions {
            root.push_child(encode_transition(t));
        }
        root
    }

    fn encode_state(&self, s: &State) -> Element {
        let mut e = Element::new("state")
            .with_attr("id", s.id.as_str())
            .with_attr("name", &s.name)
            .with_attr("kind", s.kind.kind_name());
        match &s.kind {
            StateKind::Task(spec) => {
                match &spec.binding {
                    ServiceBinding::Service { service, operation } => {
                        e.set_attr("service", service);
                        e.set_attr("operation", operation);
                    }
                    ServiceBinding::Community {
                        community,
                        operation,
                    } => {
                        e.set_attr("community", community);
                        e.set_attr("operation", operation);
                    }
                }
                for m in &spec.inputs {
                    e.push_child(
                        Element::new("inputMapping")
                            .with_attr("param", &m.param)
                            .with_attr("expr", m.expr.to_string()),
                    );
                }
                for m in &spec.outputs {
                    e.push_child(
                        Element::new("outputMapping")
                            .with_attr("param", &m.param)
                            .with_attr("var", &m.var),
                    );
                }
            }
            StateKind::Choice | StateKind::Final => {}
            StateKind::Compound { initial } => {
                e.set_attr("initial", initial.as_str());
                for child in self.children_of(Some(&s.id), 0) {
                    e.push_child(self.encode_state(child));
                }
            }
            StateKind::Concurrent { regions } => {
                for (idx, region) in regions.iter().enumerate() {
                    let mut re = Element::new("region")
                        .with_attr("name", &region.name)
                        .with_attr("initial", region.initial.as_str());
                    for child in self.children_of(Some(&s.id), idx) {
                        re.push_child(self.encode_state(child));
                    }
                    e.push_child(re);
                }
            }
        }
        e
    }

    /// Decodes a statechart from its XML document form.
    pub fn from_xml(root: &Element) -> Result<Self, StatechartCodecError> {
        if root.name != "statechart" {
            return Err(format!("expected <statechart>, got <{}>", root.name).into());
        }
        let mut sc = Statechart::empty(root.require_attr("name")?, root.require_attr("initial")?);
        for ve in root.find_all("variable") {
            let ty = ParamType::from_name(ve.require_attr("type")?)
                .map_err(|e| StatechartCodecError::from(e.to_string()))?;
            let initial = match ve.attr("initial") {
                Some(s) => Some(decode_initial_value(ty, s)?),
                None => None,
            };
            sc.variables.push(VarDecl {
                name: ve.require_attr("name")?.to_string(),
                ty,
                initial,
            });
        }
        for se in root.find_all("state") {
            decode_state(&mut sc, se, None, 0)?;
        }
        for te in root.find_all("transition") {
            sc.transitions.push(decode_transition(te)?);
        }
        Ok(sc)
    }

    /// Parses a statechart from XML text.
    pub fn from_xml_str(s: &str) -> Result<Self, StatechartCodecError> {
        Self::from_xml(&selfserv_xml::parse(s)?)
    }
}

fn encode_transition(t: &Transition) -> Element {
    let mut e = Element::new("transition")
        .with_attr("id", &t.id)
        .with_attr("source", t.source.as_str())
        .with_attr("target", t.target.as_str());
    if let Some(ev) = &t.event {
        e.set_attr("event", ev);
    }
    if let Some(g) = &t.guard {
        e.set_attr("guard", g.to_string());
    }
    for a in &t.actions {
        e.push_child(
            Element::new("action")
                .with_attr("var", &a.var)
                .with_attr("expr", a.expr.to_string()),
        );
    }
    e
}

fn decode_transition(e: &Element) -> Result<Transition, StatechartCodecError> {
    let guard = match e.attr("guard") {
        Some(src) => Some(selfserv_expr::parse(src)?),
        None => None,
    };
    let mut actions = Vec::new();
    for ae in e.find_all("action") {
        actions.push(Assignment {
            var: ae.require_attr("var")?.to_string(),
            expr: selfserv_expr::parse(ae.require_attr("expr")?)?,
        });
    }
    Ok(Transition {
        id: e.require_attr("id")?.to_string(),
        source: StateId::new(e.require_attr("source")?),
        target: StateId::new(e.require_attr("target")?),
        event: e.attr("event").map(str::to_string),
        guard,
        actions,
    })
}

fn decode_state(
    sc: &mut Statechart,
    e: &Element,
    parent: Option<&StateId>,
    region: usize,
) -> Result<(), StatechartCodecError> {
    let id = StateId::new(e.require_attr("id")?);
    let name = e.attr("name").unwrap_or(id.as_str()).to_string();
    let kind_name = e.require_attr("kind")?;
    let kind = match kind_name {
        "task" => {
            let operation = e.require_attr("operation")?.to_string();
            let binding = if let Some(svc) = e.attr("service") {
                ServiceBinding::Service {
                    service: svc.to_string(),
                    operation,
                }
            } else if let Some(comm) = e.attr("community") {
                ServiceBinding::Community {
                    community: comm.to_string(),
                    operation,
                }
            } else {
                return Err(format!(
                    "task state '{id}' has neither service nor community attribute"
                )
                .into());
            };
            let mut inputs = Vec::new();
            for m in e.find_all("inputMapping") {
                inputs.push(InputMapping {
                    param: m.require_attr("param")?.to_string(),
                    expr: selfserv_expr::parse(m.require_attr("expr")?)?,
                });
            }
            let mut outputs = Vec::new();
            for m in e.find_all("outputMapping") {
                outputs.push(OutputMapping {
                    param: m.require_attr("param")?.to_string(),
                    var: m.require_attr("var")?.to_string(),
                });
            }
            StateKind::Task(TaskSpec {
                binding,
                inputs,
                outputs,
            })
        }
        "choice" => StateKind::Choice,
        "final" => StateKind::Final,
        "compound" => {
            let initial = StateId::new(e.require_attr("initial")?);
            for child in e.find_all("state") {
                decode_state(sc, child, Some(&id), 0)?;
            }
            StateKind::Compound { initial }
        }
        "concurrent" => {
            let mut regions = Vec::new();
            for (idx, re) in e.find_all("region").enumerate() {
                regions.push(RegionSpec {
                    name: re.require_attr("name")?.to_string(),
                    initial: StateId::new(re.require_attr("initial")?),
                });
                for child in re.find_all("state") {
                    decode_state(sc, child, Some(&id), idx)?;
                }
            }
            StateKind::Concurrent { regions }
        }
        other => return Err(format!("state '{id}' has unknown kind {other:?}").into()),
    };
    sc.insert_state(State {
        id,
        name,
        parent: parent.cloned(),
        region,
        kind,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::travel::travel_statechart;

    #[test]
    fn travel_chart_round_trips() {
        let sc = travel_statechart();
        let xml = sc.to_xml().to_pretty_xml();
        let back = Statechart::from_xml_str(&xml).unwrap();
        assert_eq!(back, sc);
    }

    #[test]
    fn xml_contains_paper_guards() {
        let xml = travel_statechart().to_xml().to_pretty_xml();
        assert!(xml.contains("domestic(destination)"), "{xml}");
        assert!(
            xml.contains("not near(major_attraction, accommodation)"),
            "{xml}"
        );
    }

    #[test]
    fn nested_states_encode_inside_parents() {
        let sc = travel_statechart();
        let xml = sc.to_xml();
        let arr = xml
            .find_all("state")
            .find(|s| s.attr("id") == Some("ARR"))
            .expect("ARR at root");
        let regions: Vec<_> = arr.find_all("region").collect();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].attr("initial"), Some("FC"));
        // ITA nests inside region 0 and carries its own children.
        let ita = regions[0]
            .find_all("state")
            .find(|s| s.attr("id") == Some("ITA"))
            .expect("ITA inside bookings region");
        assert!(ita.find_all("state").any(|s| s.attr("id") == Some("IFB")));
    }

    #[test]
    fn variables_with_initials_round_trip() {
        let mut sc = travel_statechart();
        sc.variables[0].initial = Some(Value::str("Jane"));
        sc.variables.push(VarDecl {
            name: "budget".into(),
            ty: ParamType::Float,
            initial: Some(Value::Float(99.5)),
        });
        sc.variables.push(VarDecl {
            name: "retries".into(),
            ty: ParamType::Int,
            initial: Some(Value::Int(3)),
        });
        sc.variables.push(VarDecl {
            name: "insured".into(),
            ty: ParamType::Bool,
            initial: Some(Value::Bool(true)),
        });
        sc.variables.push(VarDecl {
            name: "tags".into(),
            ty: ParamType::List,
            initial: Some(Value::List(vec![Value::str("a"), Value::str("b")])),
        });
        let back = Statechart::from_xml(&sc.to_xml()).unwrap();
        assert_eq!(back.variables, sc.variables);
    }

    #[test]
    fn rejects_wrong_root_element() {
        assert!(Statechart::from_xml_str("<chart name=\"x\" initial=\"a\"/>").is_err());
    }

    #[test]
    fn rejects_task_without_binding() {
        let xml = r#"<statechart name="x" initial="a">
            <state id="a" kind="task" operation="op"/>
        </statechart>"#;
        let err = Statechart::from_xml_str(xml).unwrap_err();
        assert!(
            err.message.contains("neither service nor community"),
            "{err}"
        );
    }

    #[test]
    fn rejects_unknown_kind() {
        let xml = r#"<statechart name="x" initial="a">
            <state id="a" kind="quantum"/>
        </statechart>"#;
        assert!(Statechart::from_xml_str(xml).is_err());
    }

    #[test]
    fn rejects_bad_guard_expression() {
        let xml = r#"<statechart name="x" initial="a">
            <state id="a" kind="choice"/>
            <transition id="t" source="a" target="a" guard="((("/>
        </statechart>"#;
        assert!(Statechart::from_xml_str(xml).is_err());
    }

    #[test]
    fn rejects_bad_variable_initial() {
        let xml = r#"<statechart name="x" initial="a">
            <variable name="n" type="int" initial="NaN-ish"/>
            <state id="a" kind="final"/>
        </statechart>"#;
        assert!(Statechart::from_xml_str(xml).is_err());
    }

    #[test]
    fn minimal_chart_round_trips() {
        let xml = r#"<statechart name="tiny" initial="f">
            <state id="f" kind="final"/>
        </statechart>"#;
        let sc = Statechart::from_xml_str(xml).unwrap();
        assert_eq!(sc.state_count(), 1);
        let back = Statechart::from_xml(&sc.to_xml()).unwrap();
        assert_eq!(back, sc);
    }
}
