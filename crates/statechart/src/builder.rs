//! Fluent construction of statecharts — the programmatic equivalent of the
//! original service editor GUI.

use crate::model::{
    Assignment, InputMapping, OutputMapping, RegionSpec, ServiceBinding, State, StateId, StateKind,
    Statechart, TaskSpec, Transition, VarDecl,
};
use selfserv_expr::Value;
use selfserv_wsdl::ParamType;

/// Definition of a task state under construction.
#[derive(Debug, Clone)]
pub struct TaskDef {
    id: String,
    name: String,
    binding: Option<ServiceBinding>,
    inputs: Vec<(String, String)>,
    outputs: Vec<(String, String)>,
}

impl TaskDef {
    /// Starts a task definition with the given id and display name.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        TaskDef {
            id: id.into(),
            name: name.into(),
            binding: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Binds the task to a direct service operation.
    pub fn service(mut self, service: impl Into<String>, operation: impl Into<String>) -> Self {
        self.binding = Some(ServiceBinding::Service {
            service: service.into(),
            operation: operation.into(),
        });
        self
    }

    /// Binds the task to a community operation.
    pub fn community(mut self, community: impl Into<String>, operation: impl Into<String>) -> Self {
        self.binding = Some(ServiceBinding::Community {
            community: community.into(),
            operation: operation.into(),
        });
        self
    }

    /// Maps a service input parameter from a guard-language expression over
    /// statechart variables (parsed at [`StatechartBuilder::build`] time).
    pub fn input(mut self, param: impl Into<String>, expr_src: impl Into<String>) -> Self {
        self.inputs.push((param.into(), expr_src.into()));
        self
    }

    /// Captures a service output parameter into a statechart variable.
    pub fn output(mut self, param: impl Into<String>, var: impl Into<String>) -> Self {
        self.outputs.push((param.into(), var.into()));
        self
    }
}

/// Definition of a transition under construction.
#[derive(Debug, Clone)]
pub struct TransitionDef {
    id: String,
    source: String,
    target: String,
    event: Option<String>,
    guard: Option<String>,
    actions: Vec<(String, String)>,
}

impl TransitionDef {
    /// Starts a transition from `source` to `target`.
    pub fn new(
        id: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        TransitionDef {
            id: id.into(),
            source: source.into(),
            target: target.into(),
            event: None,
            guard: None,
            actions: Vec::new(),
        }
    }

    /// Sets the guard condition (guard-language source text).
    pub fn guard(mut self, src: impl Into<String>) -> Self {
        self.guard = Some(src.into());
        self
    }

    /// Sets the triggering event.
    pub fn event(mut self, name: impl Into<String>) -> Self {
        self.event = Some(name.into());
        self
    }

    /// Adds a variable-assignment action.
    pub fn action(mut self, var: impl Into<String>, expr_src: impl Into<String>) -> Self {
        self.actions.push((var.into(), expr_src.into()));
        self
    }
}

/// Builder for [`Statechart`]s.
///
/// `*_in` variants place the state inside a parent state's region;
/// the plain variants place it in the root region.
///
/// ```
/// use selfserv_statechart::{StatechartBuilder, TaskDef, TransitionDef};
/// use selfserv_wsdl::ParamType;
///
/// let sc = StatechartBuilder::new("Ping")
///     .variable("target", ParamType::Str)
///     .initial("P")
///     .task(TaskDef::new("P", "Ping").service("Pinger", "ping").input("host", "target"))
///     .final_state("F")
///     .transition(TransitionDef::new("t1", "P", "F"))
///     .build()
///     .unwrap();
/// assert_eq!(sc.state_count(), 2);
/// ```
/// Raw (param, expression-source) pairs collected for one task before
/// parsing.
type RawMappings = Vec<(String, String)>;

#[derive(Debug, Default)]
pub struct StatechartBuilder {
    name: String,
    variables: Vec<VarDecl>,
    states: Vec<State>,
    task_raw: Vec<(StateId, RawMappings, RawMappings)>,
    transitions_raw: Vec<TransitionDef>,
    initial: Option<StateId>,
    errors: Vec<String>,
}

impl StatechartBuilder {
    /// Starts building a statechart for the named composite service.
    pub fn new(name: impl Into<String>) -> Self {
        StatechartBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a variable.
    pub fn variable(mut self, name: impl Into<String>, ty: ParamType) -> Self {
        self.variables.push(VarDecl {
            name: name.into(),
            ty,
            initial: None,
        });
        self
    }

    /// Declares a variable with an initial value.
    pub fn variable_init(mut self, name: impl Into<String>, ty: ParamType, value: Value) -> Self {
        self.variables.push(VarDecl {
            name: name.into(),
            ty,
            initial: Some(value),
        });
        self
    }

    /// Sets the root region's initial state.
    pub fn initial(mut self, id: impl Into<StateId>) -> Self {
        self.initial = Some(id.into());
        self
    }

    fn push_state(
        &mut self,
        id: StateId,
        name: String,
        parent: Option<StateId>,
        region: usize,
        kind: StateKind,
    ) {
        if self.states.iter().any(|s| s.id == id) {
            self.errors.push(format!("duplicate state id '{id}'"));
            return;
        }
        self.states.push(State {
            id,
            name,
            parent,
            region,
            kind,
        });
    }

    /// Adds a task state to the root region.
    pub fn task(self, def: TaskDef) -> Self {
        self.task_at(None, 0, def)
    }

    /// Adds a task state inside `parent` (region 0 — use
    /// [`Self::task_in_region`] for concurrent parents).
    pub fn task_in(self, parent: impl Into<StateId>, def: TaskDef) -> Self {
        self.task_at(Some(parent.into()), 0, def)
    }

    /// Adds a task state inside a specific region of `parent`.
    pub fn task_in_region(self, parent: impl Into<StateId>, region: usize, def: TaskDef) -> Self {
        self.task_at(Some(parent.into()), region, def)
    }

    fn task_at(mut self, parent: Option<StateId>, region: usize, def: TaskDef) -> Self {
        let id = StateId::new(def.id.clone());
        let Some(binding) = def.binding else {
            self.errors.push(format!(
                "task '{}' has no service/community binding",
                def.id
            ));
            return self;
        };
        self.task_raw.push((id.clone(), def.inputs, def.outputs));
        self.push_state(
            id,
            def.name,
            parent,
            region,
            StateKind::Task(TaskSpec {
                binding,
                inputs: Vec::new(),
                outputs: Vec::new(),
            }),
        );
        self
    }

    /// Adds a choice pseudo-state to the root region.
    pub fn choice(mut self, id: impl Into<StateId>, name: impl Into<String>) -> Self {
        self.push_state(id.into(), name.into(), None, 0, StateKind::Choice);
        self
    }

    /// Adds a choice pseudo-state inside a parent region.
    pub fn choice_in(
        mut self,
        parent: impl Into<StateId>,
        region: usize,
        id: impl Into<StateId>,
        name: impl Into<String>,
    ) -> Self {
        self.push_state(
            id.into(),
            name.into(),
            Some(parent.into()),
            region,
            StateKind::Choice,
        );
        self
    }

    /// Adds a final state to the root region.
    pub fn final_state(mut self, id: impl Into<StateId>) -> Self {
        let id = id.into();
        let name = format!("final:{id}");
        self.push_state(id, name, None, 0, StateKind::Final);
        self
    }

    /// Adds a final state inside a parent region.
    pub fn final_in(
        mut self,
        parent: impl Into<StateId>,
        region: usize,
        id: impl Into<StateId>,
    ) -> Self {
        let id = id.into();
        let name = format!("final:{id}");
        self.push_state(id, name, Some(parent.into()), region, StateKind::Final);
        self
    }

    /// Adds a compound (OR) state to the root region.
    pub fn compound(
        mut self,
        id: impl Into<StateId>,
        name: impl Into<String>,
        initial: impl Into<StateId>,
    ) -> Self {
        self.push_state(
            id.into(),
            name.into(),
            None,
            0,
            StateKind::Compound {
                initial: initial.into(),
            },
        );
        self
    }

    /// Adds a compound (OR) state inside a parent region.
    pub fn compound_in(
        mut self,
        parent: impl Into<StateId>,
        region: usize,
        id: impl Into<StateId>,
        name: impl Into<String>,
        initial: impl Into<StateId>,
    ) -> Self {
        self.push_state(
            id.into(),
            name.into(),
            Some(parent.into()),
            region,
            StateKind::Compound {
                initial: initial.into(),
            },
        );
        self
    }

    /// Adds a concurrent (AND) state to the root region. `regions` pairs
    /// region names with their initial child states.
    pub fn concurrent(
        mut self,
        id: impl Into<StateId>,
        name: impl Into<String>,
        regions: Vec<(&str, &str)>,
    ) -> Self {
        let regions = regions
            .into_iter()
            .map(|(name, initial)| RegionSpec {
                name: name.to_string(),
                initial: StateId::new(initial),
            })
            .collect();
        self.push_state(
            id.into(),
            name.into(),
            None,
            0,
            StateKind::Concurrent { regions },
        );
        self
    }

    /// Adds a concurrent (AND) state inside a parent region.
    pub fn concurrent_in(
        mut self,
        parent: impl Into<StateId>,
        region: usize,
        id: impl Into<StateId>,
        name: impl Into<String>,
        regions: Vec<(&str, &str)>,
    ) -> Self {
        let regions = regions
            .into_iter()
            .map(|(name, initial)| RegionSpec {
                name: name.to_string(),
                initial: StateId::new(initial),
            })
            .collect();
        self.push_state(
            id.into(),
            name.into(),
            Some(parent.into()),
            region,
            StateKind::Concurrent { regions },
        );
        self
    }

    /// Adds a transition.
    pub fn transition(mut self, def: TransitionDef) -> Self {
        self.transitions_raw.push(def);
        self
    }

    /// Assembles the statechart. Returns every accumulated error (duplicate
    /// ids, unparseable guards/expressions, missing initial state) rather
    /// than failing fast, mirroring how the editor reported all problems at
    /// once.
    ///
    /// Structural validation (dangling references, reachability, …) is a
    /// separate step: [`Statechart::validate`].
    pub fn build(mut self) -> Result<Statechart, Vec<String>> {
        let Some(initial) = self.initial.clone() else {
            self.errors.push("no initial state set".to_string());
            return Err(self.errors);
        };
        let mut sc = Statechart::empty(self.name.clone(), initial);
        sc.variables = self.variables.clone();
        // Parse task input/output expressions.
        for (id, inputs, outputs) in &self.task_raw {
            let mut parsed_inputs = Vec::with_capacity(inputs.len());
            for (param, src) in inputs {
                match selfserv_expr::parse(src) {
                    Ok(expr) => parsed_inputs.push(InputMapping {
                        param: param.clone(),
                        expr,
                    }),
                    Err(e) => self
                        .errors
                        .push(format!("task '{id}', input '{param}': {e}")),
                }
            }
            let parsed_outputs = outputs
                .iter()
                .map(|(param, var)| OutputMapping {
                    param: param.clone(),
                    var: var.clone(),
                })
                .collect();
            if let Some(state) = self.states.iter_mut().find(|s| &s.id == id) {
                if let StateKind::Task(spec) = &mut state.kind {
                    spec.inputs = parsed_inputs;
                    spec.outputs = parsed_outputs;
                }
            }
        }
        for s in self.states {
            sc.insert_state(s);
        }
        // Parse transitions.
        let mut seen_tids = std::collections::HashSet::new();
        for def in &self.transitions_raw {
            if !seen_tids.insert(def.id.clone()) {
                self.errors
                    .push(format!("duplicate transition id '{}'", def.id));
                continue;
            }
            let guard = match &def.guard {
                None => None,
                Some(src) => match selfserv_expr::parse(src) {
                    Ok(e) => Some(e),
                    Err(e) => {
                        self.errors
                            .push(format!("transition '{}', guard: {e}", def.id));
                        continue;
                    }
                },
            };
            let mut actions = Vec::with_capacity(def.actions.len());
            let mut ok = true;
            for (var, src) in &def.actions {
                match selfserv_expr::parse(src) {
                    Ok(expr) => actions.push(Assignment {
                        var: var.clone(),
                        expr,
                    }),
                    Err(e) => {
                        self.errors
                            .push(format!("transition '{}', action on '{var}': {e}", def.id));
                        ok = false;
                    }
                }
            }
            if !ok {
                continue;
            }
            sc.transitions.push(Transition {
                id: def.id.clone(),
                source: StateId::new(def.source.clone()),
                target: StateId::new(def.target.clone()),
                event: def.event.clone(),
                guard,
                actions,
            });
        }
        if self.errors.is_empty() {
            Ok(sc)
        } else {
            Err(self.errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StateKind;

    #[test]
    fn builds_simple_sequence() {
        let sc = StatechartBuilder::new("Seq")
            .initial("a")
            .task(TaskDef::new("a", "A").service("SvcA", "run"))
            .task(TaskDef::new("b", "B").service("SvcB", "run"))
            .final_state("f")
            .transition(TransitionDef::new("t1", "a", "b"))
            .transition(TransitionDef::new("t2", "b", "f"))
            .build()
            .unwrap();
        assert_eq!(sc.state_count(), 3);
        assert_eq!(sc.transitions.len(), 2);
    }

    #[test]
    fn duplicate_state_id_is_an_error() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .choice("a", "A again")
            .final_state("f")
            .build()
            .unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("duplicate state id")),
            "{err:?}"
        );
    }

    #[test]
    fn duplicate_transition_id_is_an_error() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("duplicate transition id")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_initial_is_an_error() {
        let err = StatechartBuilder::new("X")
            .choice("a", "A")
            .build()
            .unwrap_err();
        assert!(err.iter().any(|e| e.contains("initial")), "{err:?}");
    }

    #[test]
    fn unbound_task_is_an_error() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .task(TaskDef::new("a", "A"))
            .build()
            .unwrap_err();
        assert!(err.iter().any(|e| e.contains("binding")), "{err:?}");
    }

    #[test]
    fn bad_guard_reports_transition_id() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t9", "a", "f").guard("((("))
            .build()
            .unwrap_err();
        assert!(err.iter().any(|e| e.contains("t9")), "{err:?}");
    }

    #[test]
    fn bad_input_expr_reports_task_and_param() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .task(TaskDef::new("a", "A").service("S", "op").input("p", "1 +"))
            .final_state("f")
            .build()
            .unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("'a'") && e.contains("'p'")),
            "{err:?}"
        );
    }

    #[test]
    fn multiple_errors_all_reported() {
        let err = StatechartBuilder::new("X")
            .initial("a")
            .task(TaskDef::new("a", "A")) // no binding
            .transition(TransitionDef::new("t", "a", "f").guard("(")) // bad guard
            .build()
            .unwrap_err();
        assert!(err.len() >= 2, "{err:?}");
    }

    #[test]
    fn task_mappings_are_parsed() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .task(
                TaskDef::new("a", "A")
                    .service("S", "op")
                    .input("city", "destination")
                    .input("markup", "price * 1.1")
                    .output("conf", "confirmation"),
            )
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap();
        let spec = sc.state_str("a").unwrap().task().unwrap();
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.inputs[1].expr.to_string(), "price * 1.1");
        assert_eq!(spec.outputs[0].var, "confirmation");
    }

    #[test]
    fn transition_actions_are_parsed() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f").action("count", "count + 1"))
            .build()
            .unwrap();
        assert_eq!(sc.transitions[0].actions[0].var, "count");
    }

    #[test]
    fn nested_construction() {
        let sc = StatechartBuilder::new("Nest")
            .initial("outer")
            .compound("outer", "Outer", "inner_a")
            .choice_in("outer", 0, "inner_a", "Inner A")
            .final_in("outer", 0, "inner_f")
            .final_state("f")
            .transition(TransitionDef::new("ti", "inner_a", "inner_f"))
            .transition(TransitionDef::new("to", "outer", "f"))
            .build()
            .unwrap();
        let inner = sc.state_str("inner_a").unwrap();
        assert_eq!(inner.parent, Some(StateId::new("outer")));
        match &sc.state_str("outer").unwrap().kind {
            StateKind::Compound { initial } => assert_eq!(initial.as_str(), "inner_a"),
            _ => panic!(),
        }
    }
}
