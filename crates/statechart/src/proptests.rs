//! Property tests: XML round-trips over the synthetic chart families and
//! validation totality.

use crate::synth;
use crate::Statechart;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequence_round_trip(n in 1usize..24) {
        let sc = synth::sequence(n);
        let back = Statechart::from_xml_str(&sc.to_xml().to_pretty_xml()).unwrap();
        prop_assert_eq!(back, sc);
    }

    #[test]
    fn xor_round_trip(n in 1usize..16) {
        let sc = synth::xor_choice(n);
        let back = Statechart::from_xml_str(&sc.to_xml().to_pretty_xml()).unwrap();
        prop_assert_eq!(back, sc);
    }

    #[test]
    fn parallel_round_trip(n in 2usize..12) {
        let sc = synth::parallel(n);
        let back = Statechart::from_xml_str(&sc.to_xml().to_pretty_xml()).unwrap();
        prop_assert_eq!(back, sc);
    }

    #[test]
    fn nested_round_trip(depth in 1usize..8) {
        let sc = synth::nested(depth);
        let back = Statechart::from_xml_str(&sc.to_xml().to_pretty_xml()).unwrap();
        prop_assert_eq!(back, sc);
    }

    #[test]
    fn ladder_round_trip(width in 2usize..5, depth in 1usize..4) {
        let sc = synth::ladder(width, depth);
        let back = Statechart::from_xml_str(&sc.to_xml().to_pretty_xml()).unwrap();
        prop_assert_eq!(back, sc);
    }

    #[test]
    fn all_synthetic_charts_validate_clean(
        n in 1usize..16,
        width in 2usize..5,
        depth in 1usize..4,
    ) {
        for sc in [
            synth::sequence(n),
            synth::xor_choice(n),
            synth::parallel(width),
            synth::nested(depth),
            synth::ladder(width, depth),
        ] {
            let report = sc.validate();
            prop_assert!(report.issues.is_empty(), "{}: {:?}", sc.name, report.issues);
        }
    }

    #[test]
    fn validation_never_panics_on_mutated_charts(
        n in 1usize..8,
        drop_idx in 0usize..16,
    ) {
        // Remove a random transition: validation must report problems, not
        // panic.
        let mut sc = synth::sequence(n);
        if !sc.transitions.is_empty() {
            let idx = drop_idx % sc.transitions.len();
            sc.transitions.remove(idx);
        }
        let _ = sc.validate();
    }

    #[test]
    fn codec_rejects_or_accepts_without_panic(s in "[ -~]{0,128}") {
        let _ = Statechart::from_xml_str(&s);
    }
}
