//! Structural validation of statecharts — the analysis the service deployer
//! runs before routing tables can be generated.

use crate::model::{State, StateId, StateKind, Statechart};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The statechart cannot be deployed.
    Error,
    /// Deployable, but suspicious (e.g. unreachable states).
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `dangling-transition`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

/// The outcome of validating a statechart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All findings, in discovery order.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// True when no *errors* were found (warnings allowed).
    pub fn is_ok(&self) -> bool {
        !self.issues.iter().any(|i| i.severity == Severity::Error)
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    fn error(&mut self, code: &'static str, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Error,
            code,
            message,
        });
    }

    fn warn(&mut self, code: &'static str, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Warning,
            code,
            message,
        });
    }
}

impl Statechart {
    /// Validates the statechart structure. See the crate docs for the
    /// structural conventions enforced here.
    pub fn validate(&self) -> ValidationReport {
        let mut r = ValidationReport::default();
        self.check_parents(&mut r);
        self.check_initials(&mut r);
        self.check_transitions(&mut r);
        self.check_state_shapes(&mut r);
        self.check_regions(&mut r);
        self.check_guards(&mut r);
        r
    }

    fn check_parents(&self, r: &mut ValidationReport) {
        for s in self.states() {
            if let Some(p) = &s.parent {
                match self.state(p) {
                    None => r.error(
                        "missing-parent",
                        format!("state '{}' references missing parent '{p}'", s.id),
                    ),
                    Some(parent) => match &parent.kind {
                        StateKind::Compound { .. } => {
                            if s.region != 0 {
                                r.error(
                                    "bad-region-index",
                                    format!(
                                        "state '{}' uses region {} of compound '{p}' (must be 0)",
                                        s.id, s.region
                                    ),
                                );
                            }
                        }
                        StateKind::Concurrent { regions } => {
                            if s.region >= regions.len() {
                                r.error(
                                    "bad-region-index",
                                    format!(
                                        "state '{}' uses region {} of concurrent '{p}' (only {} regions)",
                                        s.id, s.region, regions.len()
                                    ),
                                );
                            }
                        }
                        _ => r.error(
                            "leaf-parent",
                            format!(
                                "state '{}' is nested inside '{p}', which is a {} state",
                                s.id,
                                parent.kind.kind_name()
                            ),
                        ),
                    },
                }
            }
        }
    }

    fn check_initials(&self, r: &mut ValidationReport) {
        // Root initial.
        match self.state(&self.initial) {
            None => r.error(
                "missing-initial",
                format!("initial state '{}' does not exist", self.initial),
            ),
            Some(s) if s.parent.is_some() => r.error(
                "initial-not-root",
                format!(
                    "initial state '{}' is not a child of the root region",
                    self.initial
                ),
            ),
            Some(s) if s.is_final() => r.warn(
                "initial-is-final",
                format!(
                    "initial state '{}' is final: the composite does nothing",
                    self.initial
                ),
            ),
            _ => {}
        }
        // Compound and concurrent initials.
        for s in self.states() {
            match &s.kind {
                StateKind::Compound { initial } => {
                    self.check_region_initial(r, &s.id, 0, initial);
                }
                StateKind::Concurrent { regions } => {
                    let mut seen = HashSet::new();
                    for (idx, region) in regions.iter().enumerate() {
                        if !seen.insert(region.name.clone()) {
                            r.error(
                                "duplicate-region",
                                format!(
                                    "concurrent '{}' declares region '{}' twice",
                                    s.id, region.name
                                ),
                            );
                        }
                        self.check_region_initial(r, &s.id, idx, &region.initial);
                    }
                }
                _ => {}
            }
        }
    }

    fn check_region_initial(
        &self,
        r: &mut ValidationReport,
        parent: &StateId,
        region: usize,
        initial: &StateId,
    ) {
        match self.state(initial) {
            None => r.error(
                "missing-initial",
                format!("initial state '{initial}' of '{parent}' region {region} does not exist"),
            ),
            Some(init) => {
                if init.parent.as_ref() != Some(parent) || init.region != region {
                    r.error(
                        "initial-not-child",
                        format!(
                            "initial state '{initial}' is not a child of '{parent}' region {region}"
                        ),
                    );
                }
            }
        }
    }

    fn check_transitions(&self, r: &mut ValidationReport) {
        for t in &self.transitions {
            let src = self.state(&t.source);
            let dst = self.state(&t.target);
            if src.is_none() {
                r.error(
                    "dangling-transition",
                    format!("transition '{}' has unknown source '{}'", t.id, t.source),
                );
            }
            if dst.is_none() {
                r.error(
                    "dangling-transition",
                    format!("transition '{}' has unknown target '{}'", t.id, t.target),
                );
            }
            if let (Some(src), Some(dst)) = (src, dst) {
                if src.parent != dst.parent || src.region != dst.region {
                    r.error(
                        "cross-boundary-transition",
                        format!(
                            "transition '{}' connects '{}' and '{}', which are not siblings \
                             in the same region",
                            t.id, t.source, t.target
                        ),
                    );
                }
                if src.is_final() {
                    r.error(
                        "final-with-outgoing",
                        format!(
                            "final state '{}' has outgoing transition '{}'",
                            t.source, t.id
                        ),
                    );
                }
            }
        }
        // Non-determinism: more than one unguarded, event-less transition
        // from the same source.
        for s in self.states() {
            let unguarded = self
                .outgoing(&s.id)
                .into_iter()
                .filter(|t| t.guard.is_none() && t.event.is_none())
                .count();
            if unguarded > 1 {
                r.warn(
                    "nondeterministic-completion",
                    format!(
                        "state '{}' has {unguarded} unguarded completion transitions; \
                         the first one declared will win",
                        s.id
                    ),
                );
            }
        }
    }

    fn check_state_shapes(&self, r: &mut ValidationReport) {
        for s in self.states() {
            let children = self.all_children_of(&s.id);
            match &s.kind {
                StateKind::Task(_) | StateKind::Choice | StateKind::Final => {
                    if !children.is_empty() {
                        r.error(
                            "leaf-with-children",
                            format!(
                                "{} state '{}' has {} nested state(s)",
                                s.kind.kind_name(),
                                s.id,
                                children.len()
                            ),
                        );
                    }
                }
                StateKind::Compound { .. } => {
                    if children.is_empty() {
                        r.error(
                            "empty-compound",
                            format!("compound state '{}' has no children", s.id),
                        );
                    }
                }
                StateKind::Concurrent { regions } => {
                    if regions.len() < 2 {
                        r.warn(
                            "single-region-concurrent",
                            format!(
                                "concurrent state '{}' has {} region(s); use a compound state",
                                s.id,
                                regions.len()
                            ),
                        );
                    }
                }
            }
            if matches!(s.kind, StateKind::Choice) && self.outgoing(&s.id).is_empty() {
                r.error(
                    "choice-dead-end",
                    format!("choice state '{}' has no outgoing transitions", s.id),
                );
            }
        }
    }

    /// Per-region graph checks: a final state must be reachable from the
    /// region initial; every region member should be reachable (warning).
    /// A non-final member without outgoing transitions stalls the instance
    /// (error).
    fn check_regions(&self, r: &mut ValidationReport) {
        let mut regions: Vec<(Option<StateId>, usize, StateId)> = Vec::new();
        regions.push((None, 0, self.initial.clone()));
        for s in self.states() {
            match &s.kind {
                StateKind::Compound { initial } => {
                    regions.push((Some(s.id.clone()), 0, initial.clone()));
                }
                StateKind::Concurrent { regions: rs } => {
                    for (idx, region) in rs.iter().enumerate() {
                        regions.push((Some(s.id.clone()), idx, region.initial.clone()));
                    }
                }
                _ => {}
            }
        }
        for (parent, region, initial) in regions {
            let members: Vec<&State> = self.children_of(parent.as_ref(), region);
            if members.is_empty() {
                // Reported elsewhere (empty-compound / missing-initial).
                continue;
            }
            let ids: HashSet<&StateId> = members.iter().map(|s| &s.id).collect();
            if !ids.contains(&initial) {
                continue; // missing-initial already reported
            }
            let mut reached: HashSet<&StateId> = HashSet::new();
            let mut queue = VecDeque::new();
            if let Some((id, _)) = ids.get(&initial).map(|i| (*i, ())) {
                reached.insert(id);
                queue.push_back(id);
            }
            while let Some(cur) = queue.pop_front() {
                for t in self.outgoing(cur) {
                    if let Some(next) = ids.get(&t.target) {
                        if reached.insert(next) {
                            queue.push_back(next);
                        }
                    }
                }
            }
            let region_desc = match &parent {
                None => "root region".to_string(),
                Some(p) => format!("'{p}' region {region}"),
            };
            if !members
                .iter()
                .any(|s| s.is_final() && reached.contains(&s.id))
            {
                r.error(
                    "no-final-reachable",
                    format!("no final state is reachable from '{initial}' in {region_desc}"),
                );
            }
            for m in &members {
                if !reached.contains(&m.id) {
                    r.warn(
                        "unreachable-state",
                        format!("state '{}' is unreachable in {region_desc}", m.id),
                    );
                }
                if !m.is_final() && self.outgoing(&m.id).is_empty() {
                    r.error(
                        "dead-end-state",
                        format!(
                            "non-final state '{}' has no outgoing transitions; \
                             instances entering it can never finish",
                            m.id
                        ),
                    );
                }
            }
        }
    }

    fn check_guards(&self, r: &mut ValidationReport) {
        for t in &self.transitions {
            if let Some(g) = &t.guard {
                for var in g.referenced_vars() {
                    // Dotted paths resolve their head segment.
                    let head = var.split('.').next().unwrap_or(&var);
                    if self.variable(&var).is_none() && self.variable(head).is_none() {
                        r.warn(
                            "undeclared-guard-variable",
                            format!(
                                "transition '{}' guard references undeclared variable '{var}'",
                                t.id
                            ),
                        );
                    }
                }
            }
        }
        for s in self.task_states() {
            if let Some(spec) = s.task() {
                for m in &spec.inputs {
                    for var in m.expr.referenced_vars() {
                        let head = var.split('.').next().unwrap_or(&var);
                        if self.variable(&var).is_none() && self.variable(head).is_none() {
                            r.warn(
                                "undeclared-input-variable",
                                format!(
                                    "state '{}' input '{}' references undeclared variable '{var}'",
                                    s.id, m.param
                                ),
                            );
                        }
                    }
                }
                for m in &spec.outputs {
                    if self.variable(&m.var).is_none() {
                        r.warn(
                            "undeclared-output-variable",
                            format!(
                                "state '{}' captures output '{}' into undeclared variable '{}'",
                                s.id, m.param, m.var
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{StatechartBuilder, TaskDef, TransitionDef};

    fn codes(r: &ValidationReport) -> Vec<&'static str> {
        r.issues.iter().map(|i| i.code).collect()
    }

    #[test]
    fn travel_chart_is_clean() {
        let r = crate::travel::travel_statechart().validate();
        assert!(r.is_ok(), "{:?}", r.issues);
        assert_eq!(r.issues.len(), 0, "{:?}", r.issues);
    }

    #[test]
    fn missing_initial_state() {
        let sc = StatechartBuilder::new("X")
            .initial("ghost")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(!r.is_ok());
        assert!(codes(&r).contains(&"missing-initial"));
    }

    #[test]
    fn dangling_transition() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "nowhere"))
            .transition(TransitionDef::new("t2", "a", "f"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"dangling-transition"));
    }

    #[test]
    fn cross_boundary_transition_rejected() {
        let sc = StatechartBuilder::new("X")
            .initial("outer")
            .compound("outer", "Outer", "in_a")
            .choice_in("outer", 0, "in_a", "In A")
            .final_in("outer", 0, "in_f")
            .final_state("f")
            .transition(TransitionDef::new("ti", "in_a", "in_f"))
            .transition(TransitionDef::new("bad", "in_a", "f")) // crosses boundary
            .transition(TransitionDef::new("to", "outer", "f"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(
            codes(&r).contains(&"cross-boundary-transition"),
            "{:?}",
            r.issues
        );
    }

    #[test]
    fn final_with_outgoing_rejected() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .transition(TransitionDef::new("bad", "f", "a"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"final-with-outgoing"));
    }

    #[test]
    fn no_final_reachable_is_error() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .choice("b", "B")
            .final_state("f") // unreachable final
            .transition(TransitionDef::new("t1", "a", "b"))
            .transition(TransitionDef::new("t2", "b", "a"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"no-final-reachable"), "{:?}", r.issues);
        assert!(codes(&r).contains(&"unreachable-state"));
    }

    #[test]
    fn dead_end_state_is_error() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .task(TaskDef::new("b", "B").service("S", "op"))
            .final_state("f")
            .transition(TransitionDef::new("t1", "a", "b"))
            .transition(TransitionDef::new("t2", "a", "f"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"dead-end-state"), "{:?}", r.issues);
    }

    #[test]
    fn nondeterminism_warning() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .final_state("g")
            .transition(TransitionDef::new("t1", "a", "f"))
            .transition(TransitionDef::new("t2", "a", "g"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(r.is_ok(), "warnings only: {:?}", r.issues);
        assert!(codes(&r).contains(&"nondeterministic-completion"));
    }

    #[test]
    fn undeclared_guard_variable_warning() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .final_state("g")
            .transition(TransitionDef::new("t1", "a", "f").guard("mystery == 1"))
            .transition(TransitionDef::new("t2", "a", "g"))
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"undeclared-guard-variable"));
    }

    #[test]
    fn leaf_with_children_rejected() {
        let mut sc = StatechartBuilder::new("X")
            .initial("a")
            .task(TaskDef::new("a", "A").service("S", "op"))
            .final_state("f")
            .transition(TransitionDef::new("t", "a", "f"))
            .build()
            .unwrap();
        // Manually sneak a child under the task.
        sc.insert_state(crate::model::State {
            id: "child".into(),
            name: "child".into(),
            parent: Some("a".into()),
            region: 0,
            kind: crate::model::StateKind::Final,
        });
        let r = sc.validate();
        assert!(codes(&r).contains(&"leaf-with-children"), "{:?}", r.issues);
    }

    #[test]
    fn bad_region_index_rejected() {
        let mut sc = StatechartBuilder::new("X")
            .initial("c")
            .concurrent("c", "C", vec![("r0", "a0"), ("r1", "a1")])
            .choice_in("c", 0, "a0", "A0")
            .final_in("c", 0, "f0")
            .choice_in("c", 1, "a1", "A1")
            .final_in("c", 1, "f1")
            .final_state("f")
            .transition(TransitionDef::new("t0", "a0", "f0"))
            .transition(TransitionDef::new("t1", "a1", "f1"))
            .transition(TransitionDef::new("tc", "c", "f"))
            .build()
            .unwrap();
        sc.insert_state(crate::model::State {
            id: "oob".into(),
            name: "oob".into(),
            parent: Some("c".into()),
            region: 5,
            kind: crate::model::StateKind::Final,
        });
        let r = sc.validate();
        assert!(codes(&r).contains(&"bad-region-index"), "{:?}", r.issues);
    }

    #[test]
    fn choice_dead_end_rejected() {
        let sc = StatechartBuilder::new("X")
            .initial("a")
            .choice("a", "A")
            .final_state("f")
            .build()
            .unwrap();
        let r = sc.validate();
        assert!(codes(&r).contains(&"choice-dead-end"), "{:?}", r.issues);
    }

    #[test]
    fn report_accessors() {
        let mut r = ValidationReport::default();
        r.error("x", "boom".into());
        r.warn("y", "meh".into());
        assert!(!r.is_ok());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert!(r.issues[0].to_string().contains("error[x]"));
    }
}
