//! The community as a network service: membership and delegation over the
//! fabric.
//!
//! A community node accepts `community.invoke` requests, chooses a member
//! via its [`SelectionPolicy`], and delegates. Two delegation modes are
//! provided (experiment E6 compares their hop counts):
//!
//! * [`DelegationMode::Proxy`] — the community forwards the request to the
//!   member and relays the reply (caller sees one hop; community carries
//!   the payload twice);
//! * [`DelegationMode::Redirect`] — the community returns the chosen
//!   member's endpoint and the caller invokes it directly (community stays
//!   off the data path, as a pure broker).
//!
//! On member failure (fault or timeout) the community retries the remaining
//! members — the failover behaviour that keeps composite services running
//! when a provider disappears (experiment E5).
//!
//! Delegation is **continuation-passing**: an invocation never parks an
//! executor worker. `community.invoke` selects a member and fires the
//! member rpc with [`NodeCtx::rpc_async`]; the reply (or its deadline,
//! riding the runtime's timer heap) re-enters the node in
//! [`NodeLogic::on_rpc_done`], which either relays the response to the
//! caller or fails over to the next candidate. A community node therefore
//! sustains thousands of in-flight delegations on a fixed worker pool —
//! `blocked_workers` stays zero regardless of member latency.

use crate::history::{ExecutionHistory, Outcome};
use crate::membership::{Community, CommunityError, Member, MemberId, QosProfile};
use crate::policy::{SelectionContext, SelectionPolicy};
use crate::replication::{membership_body, membership_rows, MemberEntry, MembershipState};
use parking_lot::RwLock;
use selfserv_net::{
    ConnectError, Endpoint, Envelope, LivenessProbe, NodeId, PeerDirectory, PeerStatus, ReplicaSet,
    Transport, TransportHandle,
};
use selfserv_obs::{Counter, Histogram, Registry};
use selfserv_runtime::{
    ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic, RpcDone, RpcToken, TimerToken,
};
use selfserv_wsdl::{MessageDoc, OperationDef};
use selfserv_xml::Element;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message kinds of the community protocol.
pub mod kinds {
    /// Invoke a generic operation through the community.
    pub const INVOKE: &str = "community.invoke";
    /// Join as a member.
    pub const JOIN: &str = "community.join";
    /// Leave the community.
    pub const LEAVE: &str = "community.leave";
    /// Successful reply (body: response message or redirect).
    pub const RESULT: &str = "community.result";
    /// Failure reply.
    pub const FAULT: &str = "community.fault";
    /// Re-advertise an existing member's data (typically new QoS figures).
    pub const UPDATE: &str = "community.update";
    /// Stop the server.
    pub const STOP: &str = "community.stop";
    /// The invocation kind member wrappers must answer.
    pub const MEMBER_INVOKE: &str = "invoke";
    /// The member wrapper's reply kind.
    pub const MEMBER_RESULT: &str = "invoke.result";
    /// Replica anti-entropy push: one replica's full membership snapshot,
    /// answered by [`MDELTA`] when the receiver holds fresher rows.
    pub const MSYNC: &str = "community.msync";
    /// Replica anti-entropy pull half (also the eager join/leave push):
    /// exactly the membership rows the receiver was missing.
    pub const MDELTA: &str = "community.mdelta";
    /// Deterministic clock injection: runs one membership gossip round
    /// immediately, exactly as if the replication timer had fired
    /// (without re-arming it). Convergence tests use this to step
    /// replication at a controlled cadence. Carries no body.
    pub const MTICK: &str = "community.mtick";
}

/// Hot-path metrics of a community server, updated lock-free from the
/// delegation state machine. One instance is typically shared by every
/// replica of a community (replicas are one logical community), while the
/// per-replica gauges live on [`CommunityServerHandle::register_metrics`].
pub struct CommunityMetrics {
    /// End-to-end proxy delegation latency in microseconds, admission to
    /// caller reply — successful delegations only (failover time included).
    pub delegation_latency_us: Arc<Histogram>,
    /// Delegations accepted: proxy attempts fired plus redirects issued.
    pub delegations: Arc<Counter>,
    /// Failovers: member attempts that failed and were retried on another
    /// member.
    pub failovers: Arc<Counter>,
    /// Delegations that resolved with a fault to the caller.
    pub faults: Arc<Counter>,
}

impl CommunityMetrics {
    /// Registers the community metric family under `labels` (typically
    /// `{community="..."}` plus the hub) and returns the shared handle to
    /// hang off [`CommunityServerConfig::metrics`].
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Arc<CommunityMetrics> {
        Arc::new(CommunityMetrics {
            delegation_latency_us: registry.histogram(
                "selfserv_community_delegation_latency_us",
                "End-to-end proxy delegation latency in microseconds (successes only).",
                labels,
            ),
            delegations: registry.counter(
                "selfserv_community_delegations_total",
                "Delegations accepted (proxied or redirected).",
                labels,
            ),
            failovers: registry.counter(
                "selfserv_community_failovers_total",
                "Member attempts that failed and were retried on another member.",
                labels,
            ),
            faults: registry.counter(
                "selfserv_community_faults_total",
                "Delegations that resolved with a fault to the caller.",
                labels,
            ),
        })
    }
}

/// How the community hands a request to the chosen member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationMode {
    /// Forward the request and relay the reply.
    Proxy,
    /// Tell the caller which member to contact.
    Redirect,
}

/// How a replica finds and synchronizes its sibling replicas. A replica
/// with neither static peers nor a directory is **unreplicated**: no
/// gossip timer is armed and no redirect targets exist, exactly the old
/// single-server behaviour.
#[derive(Clone, Default)]
pub struct ReplicationConfig {
    /// Statically known sibling replica nodes (the spawn helpers fill
    /// this with the `<base>` / `<base>.rN` naming family). The replica's
    /// own name is ignored if present.
    pub peers: Vec<NodeId>,
    /// A hub directory to discover siblings through: every gossip round
    /// re-scans it for the replica's naming family, so replicas hosted on
    /// hubs that joined later (learned via discovery gossip) enter the
    /// sync set without reconfiguration.
    pub directory: Option<PeerDirectory>,
    /// Anti-entropy cadence. `None` uses [`ReplicationConfig::DEFAULT_GOSSIP_INTERVAL`].
    pub gossip_interval: Option<Duration>,
}

impl ReplicationConfig {
    /// The default anti-entropy cadence between replicas.
    pub const DEFAULT_GOSSIP_INTERVAL: Duration = Duration::from_millis(200);

    /// True when this replica synchronizes with anyone.
    pub fn is_active(&self) -> bool {
        !self.peers.is_empty() || self.directory.is_some()
    }

    fn interval(&self) -> Duration {
        self.gossip_interval
            .unwrap_or(Self::DEFAULT_GOSSIP_INTERVAL)
    }
}

/// Configuration of a [`CommunityServer`].
#[derive(Clone)]
pub struct CommunityServerConfig {
    /// Delegation mode.
    pub mode: DelegationMode,
    /// Per-member invocation deadline in proxy mode.
    pub member_timeout: Duration,
    /// Maximum number of *different* members tried before faulting.
    pub max_attempts: usize,
    /// Admission cap: the maximum number of delegations this server keeps
    /// in flight at once. Invocations beyond the cap queue in arrival
    /// order and are admitted as slots free up — backpressure that bounds
    /// the load one community replica pushes onto its member pool.
    /// Defaults to unbounded (`usize::MAX`).
    pub max_in_flight: usize,
    /// A failure detector's view of peer liveness (e.g. the
    /// `selfserv-discovery` directory of the community's hub). When set,
    /// members whose endpoints are **evicted** are removed from candidacy
    /// entirely, and **suspected** ones are deprioritized: the policy
    /// selects among healthy members first and falls back to suspected
    /// ones only when no healthy member exists. `None` keeps the old
    /// behaviour (every registered member is a candidate).
    pub liveness: Option<Arc<dyn LivenessProbe>>,
    /// Shared counters/histogram the delegation machine updates. `None`
    /// (the default) records nothing; replicas of one community normally
    /// share a single [`CommunityMetrics`] so their samples aggregate.
    pub metrics: Option<Arc<CommunityMetrics>>,
    /// How this replica synchronizes membership with its siblings. The
    /// default is unreplicated.
    pub replication: ReplicationConfig,
}

impl Default for CommunityServerConfig {
    fn default() -> Self {
        CommunityServerConfig {
            mode: DelegationMode::Proxy,
            member_timeout: Duration::from_secs(5),
            max_attempts: 3,
            max_in_flight: usize::MAX,
            liveness: None,
            metrics: None,
            replication: ReplicationConfig::default(),
        }
    }
}

/// Selection directives (`weight_*` parameters) are consumed by the
/// community, not forwarded to members.
fn strip_directives(msg: &MessageDoc) -> MessageDoc {
    let mut out = MessageDoc::request(msg.operation.clone());
    for (k, v) in msg.iter() {
        if !k.starts_with("weight_") {
            out.set(k, v.clone());
        }
    }
    out
}

/// One proxy delegation awaiting a member reply. Keyed by the `RpcToken`
/// of the outstanding member rpc; the whole retry loop lives in
/// [`CommunityLogic::on_rpc_done`] transitions, never on a worker's stack.
struct PendingDelegation {
    /// The caller's original `community.invoke` envelope (replied to with
    /// `send_correlated` once the delegation resolves either way).
    request: Envelope,
    /// The parsed invocation, directives intact — selection policies read
    /// `weight_*` parameters from it on every failover re-selection.
    msg: MessageDoc,
    /// The request forwarded to members (directives stripped), reused
    /// verbatim across failover attempts.
    forwarded: Element,
    /// The member currently serving the attempt.
    member: Member,
    /// Every member already tried (including `member`) — excluded from
    /// re-selection so `max_attempts` counts *different* members.
    tried: Vec<MemberId>,
    /// Start of the current attempt, for the history's latency sample.
    attempt_started: Instant,
    /// Admission time of the whole delegation, for the end-to-end latency
    /// sample (spans every failover attempt).
    delegation_started: Instant,
}

/// The membership-replication timer (namespace disjoint from the member
/// rpc tokens, which are `RpcToken`s).
const MEMBERSHIP_GOSSIP_TIMER: TimerToken = TimerToken(1);

/// The `<base>` of a replica's naming family: `community.x.r2` → `community.x`;
/// names without a numeric `.rN` suffix are their own base.
fn replica_base(name: &str) -> &str {
    if let Some((base, suffix)) = name.rsplit_once(".r") {
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            return base;
        }
    }
    name
}

/// Replica `i`'s node name in the `<base>` / `<base>.rN` convention
/// (replica 0 is the base name itself — the name callers bind to).
fn replica_name(base: &str, i: usize) -> String {
    if i == 0 {
        base.to_string()
    } else {
        format!("{base}.r{i}")
    }
}

/// A running community node: a continuation-passing delegation machine.
struct CommunityLogic {
    /// The community's name (fault messages, sync-body headers).
    name: String,
    /// The generic operations this community offers (static descriptor
    /// data; an empty list accepts any operation).
    operations: Vec<OperationDef>,
    /// This replica's own membership table. Shared with the handle for
    /// assertions and direct seeding — never with another replica.
    membership: Arc<RwLock<MembershipState>>,
    history: Arc<ExecutionHistory>,
    policy: Arc<dyn SelectionPolicy>,
    config: CommunityServerConfig,
    /// In-flight proxy delegations, keyed by member-rpc token.
    pending: HashMap<RpcToken, PendingDelegation>,
    /// Invocations parked behind the `max_in_flight` admission cap.
    waiting: VecDeque<Envelope>,
    /// Monotonic token source for member rpcs.
    next_token: u64,
    /// Mirror of `pending.len() + waiting.len()` shared with the handle —
    /// the audit gauge for in-flight delegations.
    gauge: Arc<AtomicUsize>,
    /// Mirror of `waiting.len()` alone — the admission-queue depth gauge.
    queued: Arc<AtomicUsize>,
    /// Set when a `community.stop` arrived while delegations were in
    /// flight: the node finishes draining (event-driven — the last
    /// completion finalizes it) instead of parking a worker in `on_stop`.
    stopping: bool,
}

/// Spawner for community servers.
pub struct CommunityServer;

/// Handle to a spawned [`CommunityServer`].
pub struct CommunityServerHandle {
    node: NodeId,
    net: TransportHandle,
    membership: Arc<RwLock<MembershipState>>,
    history: Arc<ExecutionHistory>,
    gauge: Arc<AtomicUsize>,
    queued: Arc<AtomicUsize>,
    handle: Option<NodeHandle>,
}

impl CommunityServerHandle {
    /// The community's node name.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Audit gauge: delegations currently in flight (awaiting a member
    /// reply) plus invocations queued behind the admission cap. Zero once
    /// the server is idle — leak checks assert it drains.
    pub fn in_flight_delegations(&self) -> usize {
        self.gauge.load(Ordering::Relaxed)
    }

    /// Invocations currently parked behind the `max_in_flight` admission
    /// cap (a subset of [`Self::in_flight_delegations`]).
    pub fn admission_queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Registers this replica's gauges: delegations in flight, admission
    /// queue depth, and current member count. The `replica` label (or any
    /// other distinguishing label) must differ between replicas — the
    /// shared [`CommunityMetrics`] aggregates, these gauges do not.
    pub fn register_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        let gauge = Arc::clone(&self.gauge);
        registry.gauge_fn(
            "selfserv_community_in_flight",
            "Delegations awaiting a member reply plus invocations queued for admission.",
            labels,
            move || gauge.load(Ordering::Relaxed) as f64,
        );
        let queued = Arc::clone(&self.queued);
        registry.gauge_fn(
            "selfserv_community_admission_queue_depth",
            "Invocations parked behind the max_in_flight admission cap.",
            labels,
            move || queued.load(Ordering::Relaxed) as f64,
        );
        let membership = Arc::clone(&self.membership);
        registry.gauge_fn(
            "selfserv_community_members",
            "Members currently registered with the community.",
            labels,
            move || membership.read().member_count() as f64,
        );
    }

    /// This replica's own membership table (for assertions, direct
    /// seeding, and hooking up a [`crate::replication::MembershipGossip`]
    /// payload). Replicas do **not** share it — convergence is gossip's
    /// job.
    pub fn membership(&self) -> &Arc<RwLock<MembershipState>> {
        &self.membership
    }

    /// Live members this replica currently knows.
    pub fn member_count(&self) -> usize {
        self.membership.read().member_count()
    }

    /// Shared view of the execution history.
    pub fn history(&self) -> &Arc<ExecutionHistory> {
        &self.history
    }

    /// Stops the server and joins its thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for CommunityServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl CommunityServer {
    /// Spawns a community server on `node_name`, over any [`Transport`],
    /// scheduled on the process-wide shared executor.
    pub fn spawn(
        net: &dyn Transport,
        node_name: &str,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        Self::spawn_on(
            net,
            selfserv_runtime::shared(),
            node_name,
            community,
            policy,
            config,
        )
    }

    /// Spawns a community server scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        let endpoint = net.connect(NodeId::new(node_name))?;
        Self::spawn_logic(net, exec, endpoint, community, policy, config)
    }

    /// Spawns `replicas` community servers, each with its **own**
    /// membership table and execution history: replica 0 takes
    /// `node_name` itself, replica `i` takes `<node_name>.r<i>` (the
    /// convention callers' replica routing probes for). Nothing is shared
    /// — a join or leave through any replica reaches the others as
    /// versioned membership rows (an eager push plus periodic
    /// anti-entropy), the same way it would reach a replica on another
    /// hub or in another process. Spawned on the process-wide shared
    /// executor; see [`CommunityServer::spawn_replicas_on`].
    pub fn spawn_replicas(
        net: &dyn Transport,
        node_name: &str,
        replicas: usize,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<Vec<CommunityServerHandle>, ConnectError> {
        Self::spawn_replicas_on(
            net,
            selfserv_runtime::shared(),
            node_name,
            replicas,
            community,
            policy,
            config,
        )
    }

    /// [`CommunityServer::spawn_replicas`] on an explicit executor.
    pub fn spawn_replicas_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        replicas: usize,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<Vec<CommunityServerHandle>, ConnectError> {
        let total = replicas.max(1);
        (0..total)
            .map(|i| {
                Self::spawn_replica_on(
                    net,
                    exec,
                    node_name,
                    i,
                    total,
                    community.clone(),
                    Arc::clone(&policy),
                    config.clone(),
                )
            })
            .collect()
    }

    /// Spawns **one** replica of a community — the entry point for
    /// pinning replicas to distinct hubs or processes. Replica `index` of
    /// `total` takes the `<base>` / `<base>.rN` name and gets every
    /// sibling name as a static replication peer (on top of whatever
    /// `config.replication` already carries); names resolve wherever the
    /// siblings actually run, because the transport routes by name. Pass
    /// the hub's directory in `config.replication.directory` to also pick
    /// up replicas spawned later on hubs discovered via gossip.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_replica_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        base_name: &str,
        index: usize,
        total: usize,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        mut config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        let name = replica_name(base_name, index);
        for i in 0..total.max(1) {
            if i == index {
                continue;
            }
            let peer = NodeId::new(replica_name(base_name, i));
            if !config.replication.peers.contains(&peer) {
                config.replication.peers.push(peer);
            }
        }
        let endpoint = net.connect(NodeId::new(&name))?;
        Self::spawn_logic(net, exec, endpoint, community, policy, config)
    }

    /// The common spawn tail: seeds this replica's private membership
    /// table from the community descriptor's member set and starts the
    /// node.
    fn spawn_logic(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        endpoint: Endpoint,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        let node = endpoint.node().clone();
        let membership = Arc::new(RwLock::new(MembershipState::seeded_from(&community)));
        let history = Arc::new(ExecutionHistory::new());
        let gauge = Arc::new(AtomicUsize::new(0));
        let queued = Arc::new(AtomicUsize::new(0));
        let logic = CommunityLogic {
            name: community.name.clone(),
            operations: community.operations.clone(),
            membership: Arc::clone(&membership),
            history: Arc::clone(&history),
            policy,
            config,
            pending: HashMap::new(),
            waiting: VecDeque::new(),
            next_token: 0,
            gauge: Arc::clone(&gauge),
            queued: Arc::clone(&queued),
            stopping: false,
        };
        Ok(CommunityServerHandle {
            node,
            net: net.handle(),
            membership,
            history,
            gauge,
            queued,
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

impl NodeLogic for CommunityLogic {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.config.replication.is_active() {
            ctx.set_timer(self.config.replication.interval(), MEMBERSHIP_GOSSIP_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) -> Flow {
        match request.kind.as_str() {
            kinds::STOP => {
                // Event-driven drain: with delegations in flight, defer
                // the stop until the last completion resolves them — no
                // worker parks waiting. New invocations are no longer
                // admitted (callers observe the same silence a stopped
                // node would produce).
                if self.pending.is_empty() {
                    return Flow::Stop;
                }
                self.stopping = true;
            }
            _ if self.stopping => {}
            kinds::JOIN => {
                let reply = self.handle_join(ctx, &request.body);
                self.send_reply(ctx, &request, reply);
            }
            kinds::LEAVE => {
                let reply = self.handle_leave(ctx, &request.body);
                self.send_reply(ctx, &request, reply);
            }
            kinds::UPDATE => {
                let reply = self.handle_update(ctx, &request.body);
                self.send_reply(ctx, &request, reply);
            }
            kinds::INVOKE => {
                if self.pending.len() >= self.config.max_in_flight {
                    self.waiting.push_back(request);
                    self.sync_gauge();
                } else {
                    self.start_delegation(ctx, request);
                }
            }
            // Replica membership sync — fire-and-forget between replicas,
            // so protocol errors are dropped, never faulted back.
            kinds::MSYNC => {
                if let Some((community, rows)) = membership_rows(&request.body) {
                    if community == self.name {
                        let missing = {
                            let mut m = self.membership.write();
                            let missing = m.delta_against(&rows);
                            m.merge_rows(rows);
                            missing
                        };
                        if !missing.is_empty() {
                            let body = membership_body(&self.name, &missing);
                            let _ = ctx
                                .endpoint()
                                .send(request.from.clone(), kinds::MDELTA, body);
                        }
                    }
                }
            }
            kinds::MDELTA => {
                if let Some((community, rows)) = membership_rows(&request.body) {
                    if community == self.name {
                        self.membership.write().merge_rows(rows);
                    }
                }
            }
            kinds::MTICK => self.membership_gossip(ctx),
            other => {
                let err = CommunityError::Protocol(format!("unknown kind {other:?}"));
                self.send_reply(ctx, &request, Err(err));
            }
        }
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) -> Flow {
        if timer == MEMBERSHIP_GOSSIP_TIMER && !self.stopping {
            self.membership_gossip(ctx);
            ctx.set_timer(self.config.replication.interval(), MEMBERSHIP_GOSSIP_TIMER);
        }
        Flow::Continue
    }

    /// A member rpc resolved (reply, timeout, or send failure): relay the
    /// response, or fail over to the next candidate — the continuation of
    /// the old blocking retry loop.
    fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
        if let Some(pending) = self.pending.remove(&done.token) {
            self.advance_delegation(ctx, pending, done.result);
            // A slot freed: admit parked invocations up to the cap.
            while self.pending.len() < self.config.max_in_flight && !self.stopping {
                let Some(request) = self.waiting.pop_front() else {
                    break;
                };
                self.start_delegation(ctx, request);
            }
            self.sync_gauge();
        }
        if self.stopping && self.pending.is_empty() {
            return Flow::Stop;
        }
        Flow::Continue
    }
}

impl CommunityLogic {
    fn send_reply(
        &self,
        ctx: &NodeCtx<'_>,
        request: &Envelope,
        reply: Result<Element, CommunityError>,
    ) {
        let (kind, body) = match reply {
            Ok(body) => (kinds::RESULT, body),
            Err(e) => (
                kinds::FAULT,
                Element::new("fault").with_attr("reason", e.to_string()),
            ),
        };
        let _ = ctx.endpoint().reply(request, kind, body);
    }

    /// Sibling replicas as currently known: the static peer list plus a
    /// directory re-scan of the naming family (replicas on hubs learned
    /// via gossip), minus this node itself.
    fn replica_peers(&self, self_node: &NodeId) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .config
            .replication
            .peers
            .iter()
            .filter(|p| *p != self_node)
            .cloned()
            .collect();
        if let Some(dir) = &self.config.replication.directory {
            let base = replica_base(self_node.as_str());
            for r in ReplicaSet::discover(base, dir).replicas() {
                if r != self_node && !peers.contains(r) {
                    peers.push(r.clone());
                }
            }
        }
        peers.sort();
        peers
    }

    /// One anti-entropy round: push this replica's full snapshot to every
    /// sibling; each answers with exactly the rows we were missing
    /// (`MDELTA`). Sends to dead siblings cost nothing — they enqueue and
    /// the answer simply never comes.
    fn membership_gossip(&mut self, ctx: &mut NodeCtx<'_>) {
        let peers = self.replica_peers(ctx.node());
        if peers.is_empty() {
            return;
        }
        let rows = self.membership.read().snapshot();
        let body = membership_body(&self.name, &rows);
        for peer in peers {
            let _ = ctx.endpoint().send(peer, kinds::MSYNC, body.clone());
        }
    }

    /// Eagerly pushes one freshly written row to every sibling, so a join
    /// or leave is visible fleet-wide in one message delay instead of one
    /// gossip interval. Anti-entropy repairs any loss.
    fn push_row(&self, ctx: &NodeCtx<'_>, entry: &MemberEntry) {
        let peers = self.replica_peers(ctx.node());
        if peers.is_empty() {
            return;
        }
        let row = vec![(entry.member.id.clone(), entry.clone())];
        let body = membership_body(&self.name, &row);
        for peer in peers {
            let _ = ctx.endpoint().send(peer, kinds::MDELTA, body.clone());
        }
    }

    fn handle_join(
        &mut self,
        ctx: &NodeCtx<'_>,
        body: &Element,
    ) -> Result<Element, CommunityError> {
        let member = decode_member(body)?;
        let entry = self.membership.write().join(member)?;
        self.push_row(ctx, &entry);
        Ok(Element::new("ok"))
    }

    fn handle_update(
        &mut self,
        ctx: &NodeCtx<'_>,
        body: &Element,
    ) -> Result<Element, CommunityError> {
        let member = decode_member(body)?;
        let entry = self.membership.write().update(member)?;
        self.push_row(ctx, &entry);
        Ok(Element::new("ok"))
    }

    fn handle_leave(
        &mut self,
        ctx: &NodeCtx<'_>,
        body: &Element,
    ) -> Result<Element, CommunityError> {
        let id = MemberId(
            body.require_attr("id")
                .map_err(CommunityError::Protocol)?
                .to_string(),
        );
        let entry = self.membership.write().leave(&id)?;
        self.history.forget(&id);
        self.push_row(ctx, &entry);
        Ok(Element::new("ok"))
    }

    fn sync_gauge(&self) {
        self.gauge
            .store(self.pending.len() + self.waiting.len(), Ordering::Relaxed);
        self.queued.store(self.waiting.len(), Ordering::Relaxed);
    }

    /// A delegation resolved with a fault to the caller: count it, reply.
    fn fault_delegation(&self, ctx: &NodeCtx<'_>, request: &Envelope, err: CommunityError) {
        if let Some(m) = &self.config.metrics {
            m.faults.inc();
        }
        self.send_reply(ctx, request, Err(err));
    }

    /// Liveness-gated member selection: evicted members are out of
    /// candidacy entirely; suspected ones are only offered to the policy
    /// when no healthy member remains (deprioritization, not exclusion —
    /// suspicion is one detector's unconfirmed observation).
    fn select_member(&self, msg: &MessageDoc, excluded: &[MemberId]) -> Option<Member> {
        let liveness = self.config.liveness.as_deref();
        let c = self.membership.read();
        let mut healthy: Vec<&Member> = Vec::new();
        let mut suspected: Vec<&Member> = Vec::new();
        for m in c.members().filter(|m| !excluded.contains(&m.id)) {
            match liveness.map_or(PeerStatus::Alive, |l| l.status_of(m.endpoint.as_str())) {
                PeerStatus::Alive => healthy.push(m),
                // A contested name routes ambiguously — deprioritize it
                // like a suspected one (directories never return
                // NameConflict from status_of today; future probes may).
                PeerStatus::Suspected | PeerStatus::NameConflict => suspected.push(m),
                PeerStatus::Evicted => {}
            }
        }
        let ctx = SelectionContext {
            operation: &msg.operation,
            request: msg,
            history: &self.history,
            liveness,
        };
        self.policy
            .select(&healthy, &ctx)
            .or_else(|| self.policy.select(&suspected, &ctx))
            .cloned()
    }

    /// Phase 1 — fire: validate the invocation, choose a member, and
    /// either answer immediately (redirect mode, faults) or send the
    /// member rpc and park the delegation in `pending`. Nothing here
    /// waits: member replies and deadlines re-enter via `on_rpc_done`.
    fn start_delegation(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) {
        let msg = match MessageDoc::from_xml(&request.body) {
            Ok(msg) => msg,
            Err(e) => {
                let err = CommunityError::Protocol(e.to_string());
                self.fault_delegation(ctx, &request, err);
                return;
            }
        };
        let operation_known =
            self.operations.is_empty() || self.operations.iter().any(|o| o.name == msg.operation);
        if !operation_known {
            let err = CommunityError::UnknownOperation(msg.operation.clone());
            self.fault_delegation(ctx, &request, err);
            return;
        }
        let forwarded = strip_directives(&msg).to_xml();
        let Some(member) = self.select_member(&msg, &[]) else {
            // Replica-aware redirect: a replica whose local member pool
            // cannot serve (empty, fully evicted, or not yet converged)
            // hands the caller to the rendezvous-ranked next replica
            // instead of faulting. The caller tracks which replicas it
            // has tried, so a ring of empty replicas terminates there.
            if let Some(next) = self.redirect_replica(ctx.node(), &msg) {
                if let Some(m) = &self.config.metrics {
                    m.delegations.inc();
                }
                let body = Element::new("redirect")
                    .with_attr("replica", "1")
                    .with_attr("endpoint", next.as_str());
                self.send_reply(ctx, &request, Ok(body));
                return;
            }
            let err = CommunityError::NoMembersAvailable {
                community: self.name.clone(),
            };
            self.fault_delegation(ctx, &request, err);
            return;
        };
        if let Some(m) = &self.config.metrics {
            m.delegations.inc();
        }
        match self.config.mode {
            DelegationMode::Redirect => {
                // The caller invokes the member itself; history gets no
                // latency sample (the community never observes it).
                let body = Element::new("redirect")
                    .with_attr("member", &member.id.0)
                    .with_attr("provider", &member.provider)
                    .with_attr("endpoint", member.endpoint.as_str());
                self.send_reply(ctx, &request, Ok(body));
            }
            DelegationMode::Proxy => {
                let now = Instant::now();
                let pending = PendingDelegation {
                    request,
                    msg,
                    forwarded,
                    tried: vec![member.id.clone()],
                    member,
                    attempt_started: now,
                    delegation_started: now,
                };
                self.fire_attempt(ctx, pending);
                self.sync_gauge();
            }
        }
    }

    /// Phase 2 — await: send the member rpc for the delegation's current
    /// attempt. The deadline rides the runtime's timer heap; a node stop
    /// cancels the pending rpc with everything else the cell owns.
    fn fire_attempt(&mut self, ctx: &mut NodeCtx<'_>, mut pending: PendingDelegation) {
        self.history.start(&pending.member.id);
        pending.attempt_started = Instant::now();
        let token = RpcToken(self.next_token);
        self.next_token += 1;
        ctx.rpc_async(
            pending.member.endpoint.clone(),
            kinds::MEMBER_INVOKE,
            pending.forwarded.clone(),
            self.config.member_timeout,
            token,
        );
        self.pending.insert(token, pending);
    }

    /// Phase 3 — resolve or fail over: a member rpc finished. Relay a
    /// good response to the caller; on a member fault, timeout, or send
    /// failure, exclude the member and re-select — up to `max_attempts`
    /// *different* members, exactly like the old blocking retry loop.
    fn advance_delegation(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        mut pending: PendingDelegation,
        result: Result<Envelope, selfserv_net::RpcError>,
    ) {
        let elapsed = pending.attempt_started.elapsed();
        if let Ok(reply) = &result {
            if reply.kind == kinds::MEMBER_RESULT {
                let response = match MessageDoc::from_xml(&reply.body) {
                    Ok(response) => response,
                    Err(e) => {
                        let err = CommunityError::Protocol(e.to_string());
                        self.fault_delegation(ctx, &pending.request, err);
                        return;
                    }
                };
                if !response.is_fault() {
                    self.history
                        .complete(&pending.member.id, elapsed, Outcome::Success);
                    if let Some(m) = &self.config.metrics {
                        let us = pending.delegation_started.elapsed().as_micros();
                        m.delegation_latency_us
                            .record(us.min(u128::from(u64::MAX)) as u64);
                    }
                    let mut body = response.to_xml();
                    body.set_attr("delegatee", &pending.member.id.0);
                    self.send_reply(ctx, &pending.request, Ok(body));
                    return;
                }
            }
        }
        // Member fault, unexpected reply kind, timeout, or send failure:
        // record the failure and fail over.
        self.history
            .complete(&pending.member.id, elapsed, Outcome::Failure);
        if pending.tried.len() >= self.config.max_attempts {
            let err = CommunityError::DelegationFailed(format!(
                "all {} attempted member(s) failed",
                pending.tried.len()
            ));
            self.fault_delegation(ctx, &pending.request, err);
            return;
        }
        match self.select_member(&pending.msg, &pending.tried) {
            Some(next) => {
                if let Some(m) = &self.config.metrics {
                    m.failovers.inc();
                }
                pending.tried.push(next.id.clone());
                pending.member = next;
                self.fire_attempt(ctx, pending);
            }
            None => {
                let err = CommunityError::NoMembersAvailable {
                    community: self.name.clone(),
                };
                self.fault_delegation(ctx, &pending.request, err);
            }
        }
    }

    /// The rendezvous-ranked sibling to redirect an unservable invocation
    /// to: liveness-gated like any replica routing, keyed on the
    /// operation so all replicas rank identically, excluding this node.
    fn redirect_replica(&self, self_node: &NodeId, msg: &MessageDoc) -> Option<NodeId> {
        let peers = self.replica_peers(self_node);
        if peers.is_empty() {
            return None;
        }
        ReplicaSet::new(peers).route(
            &format!("{}/{}", self.name, msg.operation),
            self.config.liveness.as_deref(),
            &[],
            &|_| 0,
        )
    }
}

fn decode_member(e: &Element) -> Result<Member, CommunityError> {
    let num = |name: &str, default: f64| -> f64 {
        e.attr(name).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    Ok(Member {
        id: MemberId(
            e.require_attr("id")
                .map_err(CommunityError::Protocol)?
                .to_string(),
        ),
        provider: e.attr("provider").unwrap_or("").to_string(),
        endpoint: NodeId::new(
            e.require_attr("endpoint")
                .map_err(CommunityError::Protocol)?,
        ),
        qos: QosProfile {
            cost: num("cost", 1.0),
            duration_ms: num("duration_ms", 100.0),
            reliability: num("reliability", 0.99),
            reputation: num("reputation", 0.5),
        },
    })
}

fn encode_member(m: &Member) -> Element {
    Element::new("member")
        .with_attr("id", &m.id.0)
        .with_attr("provider", &m.provider)
        .with_attr("endpoint", m.endpoint.as_str())
        .with_attr("cost", m.qos.cost.to_string())
        .with_attr("duration_ms", m.qos.duration_ms.to_string())
        .with_attr("reliability", m.qos.reliability.to_string())
        .with_attr("reputation", m.qos.reputation.to_string())
}

/// Typed client for a community node: join/leave/invoke.
pub struct CommunityClient {
    endpoint: Endpoint,
    community_node: NodeId,
    /// RPC deadline (applies to the whole delegation in proxy mode).
    pub timeout: Duration,
}

impl CommunityClient {
    /// Connects a client node.
    pub fn connect(
        net: &dyn Transport,
        client_name: &str,
        community_node: impl Into<NodeId>,
    ) -> Result<Self, ConnectError> {
        Ok(CommunityClient {
            endpoint: net.connect(NodeId::new(client_name))?,
            community_node: community_node.into(),
            timeout: Duration::from_secs(10),
        })
    }

    /// Registers a member with the community.
    pub fn join(&self, member: &Member) -> Result<(), CommunityError> {
        let reply = self.call(kinds::JOIN, encode_member(member))?;
        let _ = reply;
        Ok(())
    }

    /// Removes a member from the community.
    pub fn leave(&self, id: &MemberId) -> Result<(), CommunityError> {
        self.call(kinds::LEAVE, Element::new("member").with_attr("id", &id.0))?;
        Ok(())
    }

    /// Re-registers a member's QoS profile in place (same id, new
    /// attributes). The replica that takes the update gossips it to its
    /// siblings like any other membership change.
    pub fn update(&self, member: &Member) -> Result<(), CommunityError> {
        self.call(kinds::UPDATE, encode_member(member))?;
        Ok(())
    }

    /// Invokes a generic operation through the community. Redirects are
    /// followed automatically — both member redirects (redirect mode:
    /// the caller talks to the selected member directly) and replica
    /// redirects (a replica with no usable member pool hands us to a
    /// sibling) — so callers always get the final response message.
    pub fn invoke(&self, msg: &MessageDoc) -> Result<MessageDoc, CommunityError> {
        let mut target = self.community_node.clone();
        let mut hops: Vec<NodeId> = Vec::new();
        let body = loop {
            let body = self.call_at(&target, kinds::INVOKE, msg.to_xml())?;
            if body.name == "redirect" && body.attr("replica").is_some() {
                let next = NodeId::new(
                    body.require_attr("endpoint")
                        .map_err(CommunityError::Protocol)?,
                );
                // A replica never redirects to itself, so a repeat means
                // the family's pools are all empty: stop rather than ring.
                if next == target || hops.contains(&next) || hops.len() >= 4 {
                    return Err(CommunityError::DelegationFailed(format!(
                        "replica redirect loop via {next}"
                    )));
                }
                hops.push(target);
                target = next;
                continue;
            }
            break body;
        };
        if body.name == "redirect" {
            let endpoint = body
                .require_attr("endpoint")
                .map_err(CommunityError::Protocol)?
                .to_string();
            let forwarded = strip_directives(msg);
            let reply = self
                .endpoint
                .rpc(
                    endpoint.as_str(),
                    kinds::MEMBER_INVOKE,
                    forwarded.to_xml(),
                    self.timeout,
                )
                .map_err(|e| CommunityError::DelegationFailed(e.to_string()))?;
            let response = MessageDoc::from_xml(&reply.body)
                .map_err(|e| CommunityError::Protocol(e.to_string()))?;
            if response.is_fault() {
                return Err(CommunityError::DelegationFailed(
                    response
                        .fault_reason()
                        .unwrap_or("member fault")
                        .to_string(),
                ));
            }
            return Ok(response);
        }
        let response =
            MessageDoc::from_xml(&body).map_err(|e| CommunityError::Protocol(e.to_string()))?;
        if response.is_fault() {
            return Err(CommunityError::DelegationFailed(
                response
                    .fault_reason()
                    .unwrap_or("member fault")
                    .to_string(),
            ));
        }
        Ok(response)
    }

    fn call(&self, kind: &str, body: Element) -> Result<Element, CommunityError> {
        self.call_at(&self.community_node.clone(), kind, body)
    }

    fn call_at(
        &self,
        target: &NodeId,
        kind: &str,
        body: Element,
    ) -> Result<Element, CommunityError> {
        let reply = self
            .endpoint
            .rpc(target.clone(), kind, body, self.timeout)
            .map_err(|e| CommunityError::DelegationFailed(e.to_string()))?;
        if reply.kind == kinds::FAULT {
            Err(CommunityError::DelegationFailed(
                reply
                    .body
                    .attr("reason")
                    .unwrap_or("unspecified")
                    .to_string(),
            ))
        } else {
            Ok(reply.body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use selfserv_expr::Value;
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_wsdl::OperationDef;

    /// A minimal member wrapper: answers `invoke` with a response that
    /// names itself, optionally failing or delaying.
    fn spawn_member(
        net: &Network,
        node: &str,
        fail: bool,
        delay: Duration,
    ) -> std::thread::JoinHandle<()> {
        let ep = net.connect(node).unwrap();
        let name = node.to_string();
        std::thread::spawn(move || {
            while let Ok(req) = ep.recv() {
                if req.kind != kinds::MEMBER_INVOKE {
                    continue;
                }
                std::thread::sleep(delay);
                let msg = MessageDoc::from_xml(&req.body).unwrap();
                let reply = if fail {
                    MessageDoc::fault(msg.operation.clone(), "member exploded")
                } else {
                    MessageDoc::response(msg.operation.clone())
                        .with("served_by", Value::str(name.clone()))
                };
                let _ = ep.reply(&req, kinds::MEMBER_RESULT, reply.to_xml());
            }
        })
    }

    fn member(id: &str, endpoint: &str) -> Member {
        Member {
            id: MemberId(id.into()),
            provider: format!("P-{id}"),
            endpoint: NodeId::new(endpoint),
            qos: QosProfile::default(),
        }
    }

    fn community() -> Community {
        Community::new("AccommodationBooking", "test")
            .with_operation(OperationDef::new("bookAccommodation"))
    }

    fn setup(mode: DelegationMode) -> (Network, CommunityServerHandle, CommunityClient) {
        let net = Network::new(NetworkConfig::instant());
        let handle = CommunityServer::spawn(
            &net,
            "community.ab",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "client", "community.ab").unwrap();
        (net, handle, client)
    }

    #[test]
    fn proxy_delegation_round_robin() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        let _m2 = spawn_member(&net, "svc.h2", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        client.join(&member("h2", "svc.h2")).unwrap();
        let req = MessageDoc::request("bookAccommodation");
        let r1 = client.invoke(&req).unwrap();
        let r2 = client.invoke(&req).unwrap();
        let servers: Vec<&str> = vec![
            r1.get_str("served_by").unwrap(),
            r2.get_str("served_by").unwrap(),
        ];
        assert!(
            servers.contains(&"svc.h1") && servers.contains(&"svc.h2"),
            "{servers:?}"
        );
    }

    #[test]
    fn redirect_delegation_reaches_member() {
        let (net, _handle, client) = setup(DelegationMode::Redirect);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        let resp = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        assert_eq!(resp.get_str("served_by"), Some("svc.h1"));
    }

    #[test]
    fn empty_community_faults() {
        let (_net, _handle, client) = setup(DelegationMode::Proxy);
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(err.to_string().contains("no members"), "{err}");
    }

    #[test]
    fn unknown_operation_faults() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        let err = client.invoke(&MessageDoc::request("teleport")).unwrap_err();
        assert!(err.to_string().contains("teleport"), "{err}");
    }

    #[test]
    fn failover_masks_failing_member() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _bad = spawn_member(&net, "svc.bad", true, Duration::ZERO);
        let _good = spawn_member(&net, "svc.good", false, Duration::ZERO);
        client.join(&member("a-bad", "svc.bad")).unwrap();
        client.join(&member("b-good", "svc.good")).unwrap();
        // Round-robin starts at the failing member; failover must reach the
        // good one every time.
        for _ in 0..4 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.good"));
        }
        let stats = handle.history().stats(&MemberId("a-bad".into()));
        assert!(
            stats.failures > 0,
            "failures recorded against the bad member"
        );
    }

    #[test]
    fn dead_member_times_out_and_fails_over() {
        let (net, _handle, mut client) = setup(DelegationMode::Proxy);
        // "svc.dead" is registered on the fabric but its node is killed.
        let _dead = spawn_member(&net, "svc.dead", false, Duration::ZERO);
        let _live = spawn_member(&net, "svc.live", false, Duration::ZERO);
        net.kill(&NodeId::new("svc.dead"));
        client.join(&member("a-dead", "svc.dead")).unwrap();
        client.join(&member("b-live", "svc.live")).unwrap();
        client.timeout = Duration::from_secs(10);
        // Shrink the member timeout by respawning? Instead rely on default
        // 5 s — too slow for tests. Use a dedicated server with short
        // timeout below.
        let handle2 = CommunityServer::spawn(
            &net,
            "community.fast",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                mode: DelegationMode::Proxy,
                member_timeout: Duration::from_millis(100),
                max_attempts: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let fast = CommunityClient::connect(&net, "client2", "community.fast").unwrap();
        fast.join(&member("a-dead", "svc.dead")).unwrap();
        fast.join(&member("b-live", "svc.live")).unwrap();
        let resp = fast
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        assert_eq!(resp.get_str("served_by"), Some("svc.live"));
        drop(handle2);
    }

    #[test]
    fn all_members_failing_reports_delegation_failure() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _b1 = spawn_member(&net, "svc.b1", true, Duration::ZERO);
        let _b2 = spawn_member(&net, "svc.b2", true, Duration::ZERO);
        client.join(&member("b1", "svc.b1")).unwrap();
        client.join(&member("b2", "svc.b2")).unwrap();
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(
            matches!(err, CommunityError::DelegationFailed(_)),
            "{err:?}"
        );
    }

    #[test]
    fn leave_removes_member_from_rotation() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        let _m2 = spawn_member(&net, "svc.h2", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        client.join(&member("h2", "svc.h2")).unwrap();
        client.leave(&MemberId("h1".into())).unwrap();
        assert_eq!(handle.member_count(), 1);
        for _ in 0..3 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.h2"));
        }
        assert!(client.leave(&MemberId("h1".into())).is_err());
    }

    #[test]
    fn duplicate_join_faults() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        assert!(client.join(&member("h1", "svc.h1")).is_err());
    }

    #[test]
    fn weight_directives_are_stripped_from_member_requests() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let ep = net.connect("svc.echo").unwrap();
        std::thread::spawn(move || {
            while let Ok(req) = ep.recv() {
                let msg = MessageDoc::from_xml(&req.body).unwrap();
                let mut resp = MessageDoc::response(msg.operation.clone());
                resp.set("param_count", Value::Int(msg.len() as i64));
                let _ = ep.reply(&req, kinds::MEMBER_RESULT, resp.to_xml());
            }
        });
        client.join(&member("echo", "svc.echo")).unwrap();
        let req = MessageDoc::request("bookAccommodation")
            .with("city", Value::str("Sydney"))
            .with("weight_cost", Value::Float(3.0));
        let resp = client.invoke(&req).unwrap();
        assert_eq!(
            resp.get(&"param_count".to_string()[..]),
            Some(&Value::Int(1))
        );
    }

    /// A canned failure-detector view keyed by member endpoint name.
    struct FixedLiveness(std::collections::HashMap<String, PeerStatus>);

    impl LivenessProbe for FixedLiveness {
        fn status_of(&self, name: &str) -> PeerStatus {
            self.0.get(name).copied().unwrap_or(PeerStatus::Alive)
        }
    }

    #[test]
    fn liveness_gate_skips_evicted_and_deprioritizes_suspected() {
        let net = Network::new(NetworkConfig::instant());
        let liveness = Arc::new(FixedLiveness(
            [
                ("svc.gone".to_string(), PeerStatus::Evicted),
                ("svc.shaky".to_string(), PeerStatus::Suspected),
            ]
            .into_iter()
            .collect(),
        ));
        let handle = CommunityServer::spawn(
            &net,
            "community.live",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                liveness: Some(liveness),
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "client", "community.live").unwrap();
        let _gone = spawn_member(&net, "svc.gone", false, Duration::ZERO);
        let _shaky = spawn_member(&net, "svc.shaky", false, Duration::ZERO);
        let _solid = spawn_member(&net, "svc.solid", false, Duration::ZERO);
        client.join(&member("a-gone", "svc.gone")).unwrap();
        client.join(&member("b-shaky", "svc.shaky")).unwrap();
        client.join(&member("c-solid", "svc.solid")).unwrap();
        // Round-robin would cycle all three; the gate pins every call to
        // the only healthy member.
        for _ in 0..6 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.solid"));
        }
        // With the healthy member gone, the suspected one serves as the
        // fallback — but the evicted one never does.
        client.leave(&MemberId("c-solid".into())).unwrap();
        for _ in 0..4 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.shaky"));
        }
        // Only the suspected fallback remains once it also leaves: the
        // evicted member alone means "no members available".
        client.leave(&MemberId("b-shaky".into())).unwrap();
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(err.to_string().contains("no members"), "{err}");
        drop(handle);
    }

    #[test]
    fn metrics_capture_delegations_failovers_and_latency() {
        let net = Network::new(NetworkConfig::instant());
        let registry = Registry::new();
        let metrics = CommunityMetrics::register(&registry, &[("community", "ab")]);
        let handle = CommunityServer::spawn(
            &net,
            "community.metered",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                metrics: Some(Arc::clone(&metrics)),
                ..Default::default()
            },
        )
        .unwrap();
        handle.register_metrics(&registry, &[("community", "ab"), ("replica", "0")]);
        let client = CommunityClient::connect(&net, "client", "community.metered").unwrap();
        let _bad = spawn_member(&net, "svc.bad", true, Duration::ZERO);
        let _good = spawn_member(&net, "svc.good", false, Duration::ZERO);
        client.join(&member("a-bad", "svc.bad")).unwrap();
        client.join(&member("b-good", "svc.good")).unwrap();
        for _ in 0..4 {
            client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
        }
        assert_eq!(metrics.delegations.get(), 4);
        assert!(
            metrics.failovers.get() > 0,
            "round-robin must have failed over"
        );
        assert_eq!(metrics.faults.get(), 0);
        let snap = metrics.delegation_latency_us.snapshot();
        assert_eq!(
            snap.count(),
            4,
            "one latency sample per successful delegation"
        );
        // A delegation against an empty member pool faults and is counted.
        client.leave(&MemberId("a-bad".into())).unwrap();
        client.leave(&MemberId("b-good".into())).unwrap();
        client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert_eq!(metrics.faults.get(), 1);
        let text = registry.render();
        assert!(text.contains("selfserv_community_delegations_total{community=\"ab\"} 4"));
        assert!(text.contains("selfserv_community_members{community=\"ab\",replica=\"0\"} 0"));
        assert!(text.contains("selfserv_community_in_flight{community=\"ab\",replica=\"0\"} 0"));
    }

    #[test]
    fn history_records_latency() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _m = spawn_member(&net, "svc.slow", false, Duration::from_millis(30));
        client.join(&member("slow", "svc.slow")).unwrap();
        client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        let stats = handle.history().stats(&MemberId("slow".into()));
        assert_eq!(stats.completed, 1);
        assert!(stats.latency_ewma_ms.unwrap() >= 25.0);
    }

    /// Polls until the two replicas hold byte-identical membership tables.
    fn await_convergence(a: &CommunityServerHandle, b: &CommunityServerHandle) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if a.membership().read().fingerprint() == b.membership().read().fingerprint() {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replicas never converged: {} vs {} live members",
                a.member_count(),
                b.member_count()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn replica_join_leave_converges_by_eager_push() {
        let net = Network::new(NetworkConfig::instant());
        let handles = CommunityServer::spawn_replicas(
            &net,
            "community.ab",
            2,
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig::default(),
        )
        .unwrap();
        // A join taken by replica 0 becomes visible on replica 1 without
        // any shared memory — the row travels as an MDELTA push.
        let client = CommunityClient::connect(&net, "client", "community.ab").unwrap();
        client.join(&member("h1", "svc.h1")).unwrap();
        await_convergence(&handles[0], &handles[1]);
        assert_eq!(handles[1].member_count(), 1);
        // A leave taken by the *other* replica flows back the same way,
        // tombstoning the member everywhere.
        let client1 = CommunityClient::connect(&net, "client1", "community.ab.r1").unwrap();
        client1.leave(&MemberId("h1".into())).unwrap();
        await_convergence(&handles[0], &handles[1]);
        assert_eq!(handles[0].member_count(), 0);
        // A QoS update bumps the version and wins on both sides.
        client.join(&member("h2", "svc.h2")).unwrap();
        let mut richer = member("h2", "svc.h2");
        richer.qos.cost = 9.0;
        client1.update(&richer).unwrap();
        await_convergence(&handles[0], &handles[1]);
        let m = handles[0].membership().read();
        assert_eq!(m.member(&MemberId("h2".into())).unwrap().qos.cost, 9.0);
    }

    #[test]
    fn mtick_anti_entropy_repairs_divergence() {
        let net = Network::new(NetworkConfig::instant());
        let handles = CommunityServer::spawn_replicas(
            &net,
            "community.ab",
            2,
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                replication: ReplicationConfig {
                    // Effectively disable the periodic timer so only the
                    // injected tick can repair the divergence.
                    gossip_interval: Some(Duration::from_secs(3600)),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Divergence the eager push never saw: a row written straight into
        // replica 1's local table (as a crashed-and-restored state import
        // would).
        handles[1]
            .membership()
            .write()
            .join(member("ghost", "svc.ghost"))
            .unwrap();
        assert_eq!(handles[0].member_count(), 0);
        // One injected anti-entropy round heals it: replica 1 MSYNCs its
        // snapshot, replica 0 merges.
        let ep = net.connect("test.ticker").unwrap();
        ep.send("community.ab.r1", kinds::MTICK, Element::new("tick"))
            .unwrap();
        await_convergence(&handles[0], &handles[1]);
        assert_eq!(handles[0].member_count(), 1);
    }

    #[test]
    fn empty_replica_redirects_to_sibling() {
        let net = Network::new(NetworkConfig::instant());
        let handles = CommunityServer::spawn_replicas(
            &net,
            "community.ab",
            2,
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                replication: ReplicationConfig {
                    gossip_interval: Some(Duration::from_secs(3600)),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let _m = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        // Only replica 1 knows the member (direct table write, no push):
        // replica 0's pool is empty, so it must redirect rather than fault.
        handles[1]
            .membership()
            .write()
            .join(member("h1", "svc.h1"))
            .unwrap();
        let client = CommunityClient::connect(&net, "client", "community.ab").unwrap();
        let resp = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        assert_eq!(resp.get_str("served_by"), Some("svc.h1"));
        // When *every* replica's pool is empty the redirect chain
        // terminates in a loop error, not an infinite ring.
        handles[1]
            .membership()
            .write()
            .leave(&MemberId("h1".into()))
            .unwrap();
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("redirect loop") || text.contains("no members"),
            "{text}"
        );
    }
}
