//! The community as a network service: membership and delegation over the
//! fabric.
//!
//! A community node accepts `community.invoke` requests, chooses a member
//! via its [`SelectionPolicy`], and delegates. Two delegation modes are
//! provided (experiment E6 compares their hop counts):
//!
//! * [`DelegationMode::Proxy`] — the community forwards the request to the
//!   member and relays the reply (caller sees one hop; community carries
//!   the payload twice);
//! * [`DelegationMode::Redirect`] — the community returns the chosen
//!   member's endpoint and the caller invokes it directly (community stays
//!   off the data path, as a pure broker).
//!
//! On member failure (fault or timeout) the community retries the remaining
//! members — the failover behaviour that keeps composite services running
//! when a provider disappears (experiment E5).
//!
//! Delegation is **continuation-passing**: an invocation never parks an
//! executor worker. `community.invoke` selects a member and fires the
//! member rpc with [`NodeCtx::rpc_async`]; the reply (or its deadline,
//! riding the runtime's timer heap) re-enters the node in
//! [`NodeLogic::on_rpc_done`], which either relays the response to the
//! caller or fails over to the next candidate. A community node therefore
//! sustains thousands of in-flight delegations on a fixed worker pool —
//! `blocked_workers` stays zero regardless of member latency.

use crate::history::{ExecutionHistory, Outcome};
use crate::membership::{Community, CommunityError, Member, MemberId, QosProfile};
use crate::policy::{SelectionContext, SelectionPolicy};
use parking_lot::RwLock;
use selfserv_net::{
    ConnectError, Endpoint, Envelope, LivenessProbe, NodeId, PeerStatus, Transport, TransportHandle,
};
use selfserv_obs::{Counter, Histogram, Registry};
use selfserv_runtime::{ExecutorHandle, Flow, NodeCtx, NodeHandle, NodeLogic, RpcDone, RpcToken};
use selfserv_wsdl::MessageDoc;
use selfserv_xml::Element;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message kinds of the community protocol.
pub mod kinds {
    /// Invoke a generic operation through the community.
    pub const INVOKE: &str = "community.invoke";
    /// Join as a member.
    pub const JOIN: &str = "community.join";
    /// Leave the community.
    pub const LEAVE: &str = "community.leave";
    /// Successful reply (body: response message or redirect).
    pub const RESULT: &str = "community.result";
    /// Failure reply.
    pub const FAULT: &str = "community.fault";
    /// Stop the server.
    pub const STOP: &str = "community.stop";
    /// The invocation kind member wrappers must answer.
    pub const MEMBER_INVOKE: &str = "invoke";
    /// The member wrapper's reply kind.
    pub const MEMBER_RESULT: &str = "invoke.result";
}

/// Hot-path metrics of a community server, updated lock-free from the
/// delegation state machine. One instance is typically shared by every
/// replica of a community (replicas are one logical community), while the
/// per-replica gauges live on [`CommunityServerHandle::register_metrics`].
pub struct CommunityMetrics {
    /// End-to-end proxy delegation latency in microseconds, admission to
    /// caller reply — successful delegations only (failover time included).
    pub delegation_latency_us: Arc<Histogram>,
    /// Delegations accepted: proxy attempts fired plus redirects issued.
    pub delegations: Arc<Counter>,
    /// Failovers: member attempts that failed and were retried on another
    /// member.
    pub failovers: Arc<Counter>,
    /// Delegations that resolved with a fault to the caller.
    pub faults: Arc<Counter>,
}

impl CommunityMetrics {
    /// Registers the community metric family under `labels` (typically
    /// `{community="..."}` plus the hub) and returns the shared handle to
    /// hang off [`CommunityServerConfig::metrics`].
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Arc<CommunityMetrics> {
        Arc::new(CommunityMetrics {
            delegation_latency_us: registry.histogram(
                "selfserv_community_delegation_latency_us",
                "End-to-end proxy delegation latency in microseconds (successes only).",
                labels,
            ),
            delegations: registry.counter(
                "selfserv_community_delegations_total",
                "Delegations accepted (proxied or redirected).",
                labels,
            ),
            failovers: registry.counter(
                "selfserv_community_failovers_total",
                "Member attempts that failed and were retried on another member.",
                labels,
            ),
            faults: registry.counter(
                "selfserv_community_faults_total",
                "Delegations that resolved with a fault to the caller.",
                labels,
            ),
        })
    }
}

/// How the community hands a request to the chosen member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationMode {
    /// Forward the request and relay the reply.
    Proxy,
    /// Tell the caller which member to contact.
    Redirect,
}

/// Configuration of a [`CommunityServer`].
#[derive(Clone)]
pub struct CommunityServerConfig {
    /// Delegation mode.
    pub mode: DelegationMode,
    /// Per-member invocation deadline in proxy mode.
    pub member_timeout: Duration,
    /// Maximum number of *different* members tried before faulting.
    pub max_attempts: usize,
    /// Admission cap: the maximum number of delegations this server keeps
    /// in flight at once. Invocations beyond the cap queue in arrival
    /// order and are admitted as slots free up — backpressure that bounds
    /// the load one community replica pushes onto its member pool.
    /// Defaults to unbounded (`usize::MAX`).
    pub max_in_flight: usize,
    /// A failure detector's view of peer liveness (e.g. the
    /// `selfserv-discovery` directory of the community's hub). When set,
    /// members whose endpoints are **evicted** are removed from candidacy
    /// entirely, and **suspected** ones are deprioritized: the policy
    /// selects among healthy members first and falls back to suspected
    /// ones only when no healthy member exists. `None` keeps the old
    /// behaviour (every registered member is a candidate).
    pub liveness: Option<Arc<dyn LivenessProbe>>,
    /// Shared counters/histogram the delegation machine updates. `None`
    /// (the default) records nothing; replicas of one community normally
    /// share a single [`CommunityMetrics`] so their samples aggregate.
    pub metrics: Option<Arc<CommunityMetrics>>,
}

impl Default for CommunityServerConfig {
    fn default() -> Self {
        CommunityServerConfig {
            mode: DelegationMode::Proxy,
            member_timeout: Duration::from_secs(5),
            max_attempts: 3,
            max_in_flight: usize::MAX,
            liveness: None,
            metrics: None,
        }
    }
}

/// Selection directives (`weight_*` parameters) are consumed by the
/// community, not forwarded to members.
fn strip_directives(msg: &MessageDoc) -> MessageDoc {
    let mut out = MessageDoc::request(msg.operation.clone());
    for (k, v) in msg.iter() {
        if !k.starts_with("weight_") {
            out.set(k, v.clone());
        }
    }
    out
}

/// One proxy delegation awaiting a member reply. Keyed by the `RpcToken`
/// of the outstanding member rpc; the whole retry loop lives in
/// [`CommunityLogic::on_rpc_done`] transitions, never on a worker's stack.
struct PendingDelegation {
    /// The caller's original `community.invoke` envelope (replied to with
    /// `send_correlated` once the delegation resolves either way).
    request: Envelope,
    /// The parsed invocation, directives intact — selection policies read
    /// `weight_*` parameters from it on every failover re-selection.
    msg: MessageDoc,
    /// The request forwarded to members (directives stripped), reused
    /// verbatim across failover attempts.
    forwarded: Element,
    /// The member currently serving the attempt.
    member: Member,
    /// Every member already tried (including `member`) — excluded from
    /// re-selection so `max_attempts` counts *different* members.
    tried: Vec<MemberId>,
    /// Start of the current attempt, for the history's latency sample.
    attempt_started: Instant,
    /// Admission time of the whole delegation, for the end-to-end latency
    /// sample (spans every failover attempt).
    delegation_started: Instant,
}

/// A running community node: a continuation-passing delegation machine.
struct CommunityLogic {
    community: Arc<RwLock<Community>>,
    history: Arc<ExecutionHistory>,
    policy: Arc<dyn SelectionPolicy>,
    config: CommunityServerConfig,
    /// In-flight proxy delegations, keyed by member-rpc token.
    pending: HashMap<RpcToken, PendingDelegation>,
    /// Invocations parked behind the `max_in_flight` admission cap.
    waiting: VecDeque<Envelope>,
    /// Monotonic token source for member rpcs.
    next_token: u64,
    /// Mirror of `pending.len() + waiting.len()` shared with the handle —
    /// the audit gauge for in-flight delegations.
    gauge: Arc<AtomicUsize>,
    /// Mirror of `waiting.len()` alone — the admission-queue depth gauge.
    queued: Arc<AtomicUsize>,
    /// Set when a `community.stop` arrived while delegations were in
    /// flight: the node finishes draining (event-driven — the last
    /// completion finalizes it) instead of parking a worker in `on_stop`.
    stopping: bool,
}

/// Spawner for community servers.
pub struct CommunityServer;

/// Handle to a spawned [`CommunityServer`].
pub struct CommunityServerHandle {
    node: NodeId,
    net: TransportHandle,
    community: Arc<RwLock<Community>>,
    history: Arc<ExecutionHistory>,
    gauge: Arc<AtomicUsize>,
    queued: Arc<AtomicUsize>,
    handle: Option<NodeHandle>,
}

impl CommunityServerHandle {
    /// The community's node name.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Audit gauge: delegations currently in flight (awaiting a member
    /// reply) plus invocations queued behind the admission cap. Zero once
    /// the server is idle — leak checks assert it drains.
    pub fn in_flight_delegations(&self) -> usize {
        self.gauge.load(Ordering::Relaxed)
    }

    /// Invocations currently parked behind the `max_in_flight` admission
    /// cap (a subset of [`Self::in_flight_delegations`]).
    pub fn admission_queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Registers this replica's gauges: delegations in flight, admission
    /// queue depth, and current member count. The `replica` label (or any
    /// other distinguishing label) must differ between replicas — the
    /// shared [`CommunityMetrics`] aggregates, these gauges do not.
    pub fn register_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        let gauge = Arc::clone(&self.gauge);
        registry.gauge_fn(
            "selfserv_community_in_flight",
            "Delegations awaiting a member reply plus invocations queued for admission.",
            labels,
            move || gauge.load(Ordering::Relaxed) as f64,
        );
        let queued = Arc::clone(&self.queued);
        registry.gauge_fn(
            "selfserv_community_admission_queue_depth",
            "Invocations parked behind the max_in_flight admission cap.",
            labels,
            move || queued.load(Ordering::Relaxed) as f64,
        );
        let community = Arc::clone(&self.community);
        registry.gauge_fn(
            "selfserv_community_members",
            "Members currently registered with the community.",
            labels,
            move || community.read().member_count() as f64,
        );
    }

    /// Shared view of the membership (for assertions and direct joins).
    pub fn community(&self) -> &Arc<RwLock<Community>> {
        &self.community
    }

    /// Shared view of the execution history.
    pub fn history(&self) -> &Arc<ExecutionHistory> {
        &self.history
    }

    /// Stops the server and joins its thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // Clear any kill left by failure injection so the name isn't
            // poisoned for a redeploy.
            self.net.revive(&self.node);
            handle.stop();
        }
    }
}

impl Drop for CommunityServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl CommunityServer {
    /// Spawns a community server on `node_name`, over any [`Transport`],
    /// scheduled on the process-wide shared executor.
    pub fn spawn(
        net: &dyn Transport,
        node_name: &str,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        Self::spawn_on(
            net,
            selfserv_runtime::shared(),
            node_name,
            community,
            policy,
            config,
        )
    }

    /// Spawns a community server scheduled on an explicit executor.
    pub fn spawn_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        let endpoint = net.connect(NodeId::new(node_name))?;
        let node = endpoint.node().clone();
        let community = Arc::new(RwLock::new(community));
        let history = Arc::new(ExecutionHistory::new());
        Self::spawn_shared_on(
            net, exec, endpoint, node, community, history, policy, config,
        )
    }

    /// Spawns `replicas` community servers sharing one membership and one
    /// execution history: replica 0 takes `node_name` itself, replica `i`
    /// takes `<node_name>.r<i>` (the convention callers' replica routing
    /// probes for). A join or leave through any replica is visible to all
    /// of them, and latency samples aggregate — the replicas are one
    /// community served by N mailboxes, the paper's community-as-unit-of-
    /// scale argument made concrete. Spawned on the process-wide shared
    /// executor; see [`CommunityServer::spawn_replicas_on`].
    pub fn spawn_replicas(
        net: &dyn Transport,
        node_name: &str,
        replicas: usize,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<Vec<CommunityServerHandle>, ConnectError> {
        Self::spawn_replicas_on(
            net,
            selfserv_runtime::shared(),
            node_name,
            replicas,
            community,
            policy,
            config,
        )
    }

    /// [`CommunityServer::spawn_replicas`] on an explicit executor.
    pub fn spawn_replicas_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        node_name: &str,
        replicas: usize,
        community: Community,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<Vec<CommunityServerHandle>, ConnectError> {
        let shared_community = Arc::new(RwLock::new(community));
        let history = Arc::new(ExecutionHistory::new());
        let mut handles = Vec::with_capacity(replicas.max(1));
        for i in 0..replicas.max(1) {
            let name = if i == 0 {
                node_name.to_string()
            } else {
                format!("{node_name}.r{i}")
            };
            let endpoint = net.connect(NodeId::new(&name))?;
            let node = endpoint.node().clone();
            handles.push(Self::spawn_shared_on(
                net,
                exec,
                endpoint,
                node,
                Arc::clone(&shared_community),
                Arc::clone(&history),
                Arc::clone(&policy),
                config.clone(),
            )?);
        }
        Ok(handles)
    }

    /// Spawns one server over pre-shared membership/history state — the
    /// building block replicas use so every replica of a community serves
    /// the same member set and feeds the same execution history.
    #[allow(clippy::too_many_arguments)]
    fn spawn_shared_on(
        net: &dyn Transport,
        exec: &ExecutorHandle,
        endpoint: Endpoint,
        node: NodeId,
        community: Arc<RwLock<Community>>,
        history: Arc<ExecutionHistory>,
        policy: Arc<dyn SelectionPolicy>,
        config: CommunityServerConfig,
    ) -> Result<CommunityServerHandle, ConnectError> {
        let gauge = Arc::new(AtomicUsize::new(0));
        let queued = Arc::new(AtomicUsize::new(0));
        let logic = CommunityLogic {
            community: Arc::clone(&community),
            history: Arc::clone(&history),
            policy,
            config,
            pending: HashMap::new(),
            waiting: VecDeque::new(),
            next_token: 0,
            gauge: Arc::clone(&gauge),
            queued: Arc::clone(&queued),
            stopping: false,
        };
        Ok(CommunityServerHandle {
            node,
            net: net.handle(),
            community,
            history,
            gauge,
            queued,
            handle: Some(exec.spawn_node(endpoint, logic)),
        })
    }
}

impl NodeLogic for CommunityLogic {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) -> Flow {
        match request.kind.as_str() {
            kinds::STOP => {
                // Event-driven drain: with delegations in flight, defer
                // the stop until the last completion resolves them — no
                // worker parks waiting. New invocations are no longer
                // admitted (callers observe the same silence a stopped
                // node would produce).
                if self.pending.is_empty() {
                    return Flow::Stop;
                }
                self.stopping = true;
            }
            _ if self.stopping => {}
            kinds::JOIN => {
                let reply = self.handle_join(&request.body);
                self.send_reply(ctx, &request, reply);
            }
            kinds::LEAVE => {
                let reply = self.handle_leave(&request.body);
                self.send_reply(ctx, &request, reply);
            }
            kinds::INVOKE => {
                if self.pending.len() >= self.config.max_in_flight {
                    self.waiting.push_back(request);
                    self.sync_gauge();
                } else {
                    self.start_delegation(ctx, request);
                }
            }
            other => {
                let err = CommunityError::Protocol(format!("unknown kind {other:?}"));
                self.send_reply(ctx, &request, Err(err));
            }
        }
        Flow::Continue
    }

    /// A member rpc resolved (reply, timeout, or send failure): relay the
    /// response, or fail over to the next candidate — the continuation of
    /// the old blocking retry loop.
    fn on_rpc_done(&mut self, ctx: &mut NodeCtx<'_>, done: RpcDone) -> Flow {
        if let Some(pending) = self.pending.remove(&done.token) {
            self.advance_delegation(ctx, pending, done.result);
            // A slot freed: admit parked invocations up to the cap.
            while self.pending.len() < self.config.max_in_flight && !self.stopping {
                let Some(request) = self.waiting.pop_front() else {
                    break;
                };
                self.start_delegation(ctx, request);
            }
            self.sync_gauge();
        }
        if self.stopping && self.pending.is_empty() {
            return Flow::Stop;
        }
        Flow::Continue
    }
}

impl CommunityLogic {
    fn send_reply(
        &self,
        ctx: &NodeCtx<'_>,
        request: &Envelope,
        reply: Result<Element, CommunityError>,
    ) {
        let (kind, body) = match reply {
            Ok(body) => (kinds::RESULT, body),
            Err(e) => (
                kinds::FAULT,
                Element::new("fault").with_attr("reason", e.to_string()),
            ),
        };
        let _ = ctx.endpoint().reply(request, kind, body);
    }

    fn handle_join(&self, body: &Element) -> Result<Element, CommunityError> {
        let member = decode_member(body)?;
        self.community.write().join(member)?;
        Ok(Element::new("ok"))
    }

    fn handle_leave(&self, body: &Element) -> Result<Element, CommunityError> {
        let id = MemberId(
            body.require_attr("id")
                .map_err(CommunityError::Protocol)?
                .to_string(),
        );
        self.community.write().leave(&id)?;
        self.history.forget(&id);
        Ok(Element::new("ok"))
    }

    fn sync_gauge(&self) {
        self.gauge
            .store(self.pending.len() + self.waiting.len(), Ordering::Relaxed);
        self.queued.store(self.waiting.len(), Ordering::Relaxed);
    }

    /// A delegation resolved with a fault to the caller: count it, reply.
    fn fault_delegation(&self, ctx: &NodeCtx<'_>, request: &Envelope, err: CommunityError) {
        if let Some(m) = &self.config.metrics {
            m.faults.inc();
        }
        self.send_reply(ctx, request, Err(err));
    }

    /// Liveness-gated member selection: evicted members are out of
    /// candidacy entirely; suspected ones are only offered to the policy
    /// when no healthy member remains (deprioritization, not exclusion —
    /// suspicion is one detector's unconfirmed observation).
    fn select_member(&self, msg: &MessageDoc, excluded: &[MemberId]) -> Option<Member> {
        let liveness = self.config.liveness.as_deref();
        let c = self.community.read();
        let mut healthy: Vec<&Member> = Vec::new();
        let mut suspected: Vec<&Member> = Vec::new();
        for m in c.members().filter(|m| !excluded.contains(&m.id)) {
            match liveness.map_or(PeerStatus::Alive, |l| l.status_of(m.endpoint.as_str())) {
                PeerStatus::Alive => healthy.push(m),
                // A contested name routes ambiguously — deprioritize it
                // like a suspected one (directories never return
                // NameConflict from status_of today; future probes may).
                PeerStatus::Suspected | PeerStatus::NameConflict => suspected.push(m),
                PeerStatus::Evicted => {}
            }
        }
        let ctx = SelectionContext {
            operation: &msg.operation,
            request: msg,
            history: &self.history,
            liveness,
        };
        self.policy
            .select(&healthy, &ctx)
            .or_else(|| self.policy.select(&suspected, &ctx))
            .cloned()
    }

    /// Phase 1 — fire: validate the invocation, choose a member, and
    /// either answer immediately (redirect mode, faults) or send the
    /// member rpc and park the delegation in `pending`. Nothing here
    /// waits: member replies and deadlines re-enter via `on_rpc_done`.
    fn start_delegation(&mut self, ctx: &mut NodeCtx<'_>, request: Envelope) {
        let msg = match MessageDoc::from_xml(&request.body) {
            Ok(msg) => msg,
            Err(e) => {
                let err = CommunityError::Protocol(e.to_string());
                self.fault_delegation(ctx, &request, err);
                return;
            }
        };
        let operation_known = {
            let c = self.community.read();
            c.operation(&msg.operation).is_some() || c.operations.is_empty()
        };
        if !operation_known {
            let err = CommunityError::UnknownOperation(msg.operation.clone());
            self.fault_delegation(ctx, &request, err);
            return;
        }
        let forwarded = strip_directives(&msg).to_xml();
        let Some(member) = self.select_member(&msg, &[]) else {
            let err = CommunityError::NoMembersAvailable {
                community: self.community.read().name.clone(),
            };
            self.fault_delegation(ctx, &request, err);
            return;
        };
        if let Some(m) = &self.config.metrics {
            m.delegations.inc();
        }
        match self.config.mode {
            DelegationMode::Redirect => {
                // The caller invokes the member itself; history gets no
                // latency sample (the community never observes it).
                let body = Element::new("redirect")
                    .with_attr("member", &member.id.0)
                    .with_attr("provider", &member.provider)
                    .with_attr("endpoint", member.endpoint.as_str());
                self.send_reply(ctx, &request, Ok(body));
            }
            DelegationMode::Proxy => {
                let now = Instant::now();
                let pending = PendingDelegation {
                    request,
                    msg,
                    forwarded,
                    tried: vec![member.id.clone()],
                    member,
                    attempt_started: now,
                    delegation_started: now,
                };
                self.fire_attempt(ctx, pending);
                self.sync_gauge();
            }
        }
    }

    /// Phase 2 — await: send the member rpc for the delegation's current
    /// attempt. The deadline rides the runtime's timer heap; a node stop
    /// cancels the pending rpc with everything else the cell owns.
    fn fire_attempt(&mut self, ctx: &mut NodeCtx<'_>, mut pending: PendingDelegation) {
        self.history.start(&pending.member.id);
        pending.attempt_started = Instant::now();
        let token = RpcToken(self.next_token);
        self.next_token += 1;
        ctx.rpc_async(
            pending.member.endpoint.clone(),
            kinds::MEMBER_INVOKE,
            pending.forwarded.clone(),
            self.config.member_timeout,
            token,
        );
        self.pending.insert(token, pending);
    }

    /// Phase 3 — resolve or fail over: a member rpc finished. Relay a
    /// good response to the caller; on a member fault, timeout, or send
    /// failure, exclude the member and re-select — up to `max_attempts`
    /// *different* members, exactly like the old blocking retry loop.
    fn advance_delegation(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        mut pending: PendingDelegation,
        result: Result<Envelope, selfserv_net::RpcError>,
    ) {
        let elapsed = pending.attempt_started.elapsed();
        if let Ok(reply) = &result {
            if reply.kind == kinds::MEMBER_RESULT {
                let response = match MessageDoc::from_xml(&reply.body) {
                    Ok(response) => response,
                    Err(e) => {
                        let err = CommunityError::Protocol(e.to_string());
                        self.fault_delegation(ctx, &pending.request, err);
                        return;
                    }
                };
                if !response.is_fault() {
                    self.history
                        .complete(&pending.member.id, elapsed, Outcome::Success);
                    if let Some(m) = &self.config.metrics {
                        let us = pending.delegation_started.elapsed().as_micros();
                        m.delegation_latency_us
                            .record(us.min(u128::from(u64::MAX)) as u64);
                    }
                    let mut body = response.to_xml();
                    body.set_attr("delegatee", &pending.member.id.0);
                    self.send_reply(ctx, &pending.request, Ok(body));
                    return;
                }
            }
        }
        // Member fault, unexpected reply kind, timeout, or send failure:
        // record the failure and fail over.
        self.history
            .complete(&pending.member.id, elapsed, Outcome::Failure);
        if pending.tried.len() >= self.config.max_attempts {
            let err = CommunityError::DelegationFailed(format!(
                "all {} attempted member(s) failed",
                pending.tried.len()
            ));
            self.fault_delegation(ctx, &pending.request, err);
            return;
        }
        match self.select_member(&pending.msg, &pending.tried) {
            Some(next) => {
                if let Some(m) = &self.config.metrics {
                    m.failovers.inc();
                }
                pending.tried.push(next.id.clone());
                pending.member = next;
                self.fire_attempt(ctx, pending);
            }
            None => {
                let err = CommunityError::NoMembersAvailable {
                    community: self.community.read().name.clone(),
                };
                self.fault_delegation(ctx, &pending.request, err);
            }
        }
    }
}

fn decode_member(e: &Element) -> Result<Member, CommunityError> {
    let num = |name: &str, default: f64| -> f64 {
        e.attr(name).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    Ok(Member {
        id: MemberId(
            e.require_attr("id")
                .map_err(CommunityError::Protocol)?
                .to_string(),
        ),
        provider: e.attr("provider").unwrap_or("").to_string(),
        endpoint: NodeId::new(
            e.require_attr("endpoint")
                .map_err(CommunityError::Protocol)?,
        ),
        qos: QosProfile {
            cost: num("cost", 1.0),
            duration_ms: num("duration_ms", 100.0),
            reliability: num("reliability", 0.99),
            reputation: num("reputation", 0.5),
        },
    })
}

fn encode_member(m: &Member) -> Element {
    Element::new("member")
        .with_attr("id", &m.id.0)
        .with_attr("provider", &m.provider)
        .with_attr("endpoint", m.endpoint.as_str())
        .with_attr("cost", m.qos.cost.to_string())
        .with_attr("duration_ms", m.qos.duration_ms.to_string())
        .with_attr("reliability", m.qos.reliability.to_string())
        .with_attr("reputation", m.qos.reputation.to_string())
}

/// Typed client for a community node: join/leave/invoke.
pub struct CommunityClient {
    endpoint: Endpoint,
    community_node: NodeId,
    /// RPC deadline (applies to the whole delegation in proxy mode).
    pub timeout: Duration,
}

impl CommunityClient {
    /// Connects a client node.
    pub fn connect(
        net: &dyn Transport,
        client_name: &str,
        community_node: impl Into<NodeId>,
    ) -> Result<Self, ConnectError> {
        Ok(CommunityClient {
            endpoint: net.connect(NodeId::new(client_name))?,
            community_node: community_node.into(),
            timeout: Duration::from_secs(10),
        })
    }

    /// Registers a member with the community.
    pub fn join(&self, member: &Member) -> Result<(), CommunityError> {
        let reply = self.call(kinds::JOIN, encode_member(member))?;
        let _ = reply;
        Ok(())
    }

    /// Removes a member from the community.
    pub fn leave(&self, id: &MemberId) -> Result<(), CommunityError> {
        self.call(kinds::LEAVE, Element::new("member").with_attr("id", &id.0))?;
        Ok(())
    }

    /// Invokes a generic operation through the community. In redirect mode
    /// the returned redirect is followed automatically, so callers always
    /// get the final response message.
    pub fn invoke(&self, msg: &MessageDoc) -> Result<MessageDoc, CommunityError> {
        let body = self.call(kinds::INVOKE, msg.to_xml())?;
        if body.name == "redirect" {
            let endpoint = body
                .require_attr("endpoint")
                .map_err(CommunityError::Protocol)?
                .to_string();
            let forwarded = strip_directives(msg);
            let reply = self
                .endpoint
                .rpc(
                    endpoint.as_str(),
                    kinds::MEMBER_INVOKE,
                    forwarded.to_xml(),
                    self.timeout,
                )
                .map_err(|e| CommunityError::DelegationFailed(e.to_string()))?;
            let response = MessageDoc::from_xml(&reply.body)
                .map_err(|e| CommunityError::Protocol(e.to_string()))?;
            if response.is_fault() {
                return Err(CommunityError::DelegationFailed(
                    response
                        .fault_reason()
                        .unwrap_or("member fault")
                        .to_string(),
                ));
            }
            return Ok(response);
        }
        let response =
            MessageDoc::from_xml(&body).map_err(|e| CommunityError::Protocol(e.to_string()))?;
        if response.is_fault() {
            return Err(CommunityError::DelegationFailed(
                response
                    .fault_reason()
                    .unwrap_or("member fault")
                    .to_string(),
            ));
        }
        Ok(response)
    }

    fn call(&self, kind: &str, body: Element) -> Result<Element, CommunityError> {
        let reply = self
            .endpoint
            .rpc(self.community_node.clone(), kind, body, self.timeout)
            .map_err(|e| CommunityError::DelegationFailed(e.to_string()))?;
        if reply.kind == kinds::FAULT {
            Err(CommunityError::DelegationFailed(
                reply
                    .body
                    .attr("reason")
                    .unwrap_or("unspecified")
                    .to_string(),
            ))
        } else {
            Ok(reply.body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use selfserv_expr::Value;
    use selfserv_net::{Network, NetworkConfig};
    use selfserv_wsdl::OperationDef;

    /// A minimal member wrapper: answers `invoke` with a response that
    /// names itself, optionally failing or delaying.
    fn spawn_member(
        net: &Network,
        node: &str,
        fail: bool,
        delay: Duration,
    ) -> std::thread::JoinHandle<()> {
        let ep = net.connect(node).unwrap();
        let name = node.to_string();
        std::thread::spawn(move || {
            while let Ok(req) = ep.recv() {
                if req.kind != kinds::MEMBER_INVOKE {
                    continue;
                }
                std::thread::sleep(delay);
                let msg = MessageDoc::from_xml(&req.body).unwrap();
                let reply = if fail {
                    MessageDoc::fault(msg.operation.clone(), "member exploded")
                } else {
                    MessageDoc::response(msg.operation.clone())
                        .with("served_by", Value::str(name.clone()))
                };
                let _ = ep.reply(&req, kinds::MEMBER_RESULT, reply.to_xml());
            }
        })
    }

    fn member(id: &str, endpoint: &str) -> Member {
        Member {
            id: MemberId(id.into()),
            provider: format!("P-{id}"),
            endpoint: NodeId::new(endpoint),
            qos: QosProfile::default(),
        }
    }

    fn community() -> Community {
        Community::new("AccommodationBooking", "test")
            .with_operation(OperationDef::new("bookAccommodation"))
    }

    fn setup(mode: DelegationMode) -> (Network, CommunityServerHandle, CommunityClient) {
        let net = Network::new(NetworkConfig::instant());
        let handle = CommunityServer::spawn(
            &net,
            "community.ab",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "client", "community.ab").unwrap();
        (net, handle, client)
    }

    #[test]
    fn proxy_delegation_round_robin() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        let _m2 = spawn_member(&net, "svc.h2", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        client.join(&member("h2", "svc.h2")).unwrap();
        let req = MessageDoc::request("bookAccommodation");
        let r1 = client.invoke(&req).unwrap();
        let r2 = client.invoke(&req).unwrap();
        let servers: Vec<&str> = vec![
            r1.get_str("served_by").unwrap(),
            r2.get_str("served_by").unwrap(),
        ];
        assert!(
            servers.contains(&"svc.h1") && servers.contains(&"svc.h2"),
            "{servers:?}"
        );
    }

    #[test]
    fn redirect_delegation_reaches_member() {
        let (net, _handle, client) = setup(DelegationMode::Redirect);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        let resp = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        assert_eq!(resp.get_str("served_by"), Some("svc.h1"));
    }

    #[test]
    fn empty_community_faults() {
        let (_net, _handle, client) = setup(DelegationMode::Proxy);
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(err.to_string().contains("no members"), "{err}");
    }

    #[test]
    fn unknown_operation_faults() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        let err = client.invoke(&MessageDoc::request("teleport")).unwrap_err();
        assert!(err.to_string().contains("teleport"), "{err}");
    }

    #[test]
    fn failover_masks_failing_member() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _bad = spawn_member(&net, "svc.bad", true, Duration::ZERO);
        let _good = spawn_member(&net, "svc.good", false, Duration::ZERO);
        client.join(&member("a-bad", "svc.bad")).unwrap();
        client.join(&member("b-good", "svc.good")).unwrap();
        // Round-robin starts at the failing member; failover must reach the
        // good one every time.
        for _ in 0..4 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.good"));
        }
        let stats = handle.history().stats(&MemberId("a-bad".into()));
        assert!(
            stats.failures > 0,
            "failures recorded against the bad member"
        );
    }

    #[test]
    fn dead_member_times_out_and_fails_over() {
        let (net, _handle, mut client) = setup(DelegationMode::Proxy);
        // "svc.dead" is registered on the fabric but its node is killed.
        let _dead = spawn_member(&net, "svc.dead", false, Duration::ZERO);
        let _live = spawn_member(&net, "svc.live", false, Duration::ZERO);
        net.kill(&NodeId::new("svc.dead"));
        client.join(&member("a-dead", "svc.dead")).unwrap();
        client.join(&member("b-live", "svc.live")).unwrap();
        client.timeout = Duration::from_secs(10);
        // Shrink the member timeout by respawning? Instead rely on default
        // 5 s — too slow for tests. Use a dedicated server with short
        // timeout below.
        let handle2 = CommunityServer::spawn(
            &net,
            "community.fast",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                mode: DelegationMode::Proxy,
                member_timeout: Duration::from_millis(100),
                max_attempts: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let fast = CommunityClient::connect(&net, "client2", "community.fast").unwrap();
        fast.join(&member("a-dead", "svc.dead")).unwrap();
        fast.join(&member("b-live", "svc.live")).unwrap();
        let resp = fast
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        assert_eq!(resp.get_str("served_by"), Some("svc.live"));
        drop(handle2);
    }

    #[test]
    fn all_members_failing_reports_delegation_failure() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _b1 = spawn_member(&net, "svc.b1", true, Duration::ZERO);
        let _b2 = spawn_member(&net, "svc.b2", true, Duration::ZERO);
        client.join(&member("b1", "svc.b1")).unwrap();
        client.join(&member("b2", "svc.b2")).unwrap();
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(
            matches!(err, CommunityError::DelegationFailed(_)),
            "{err:?}"
        );
    }

    #[test]
    fn leave_removes_member_from_rotation() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        let _m2 = spawn_member(&net, "svc.h2", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        client.join(&member("h2", "svc.h2")).unwrap();
        client.leave(&MemberId("h1".into())).unwrap();
        assert_eq!(handle.community().read().member_count(), 1);
        for _ in 0..3 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.h2"));
        }
        assert!(client.leave(&MemberId("h1".into())).is_err());
    }

    #[test]
    fn duplicate_join_faults() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let _m1 = spawn_member(&net, "svc.h1", false, Duration::ZERO);
        client.join(&member("h1", "svc.h1")).unwrap();
        assert!(client.join(&member("h1", "svc.h1")).is_err());
    }

    #[test]
    fn weight_directives_are_stripped_from_member_requests() {
        let (net, _handle, client) = setup(DelegationMode::Proxy);
        let ep = net.connect("svc.echo").unwrap();
        std::thread::spawn(move || {
            while let Ok(req) = ep.recv() {
                let msg = MessageDoc::from_xml(&req.body).unwrap();
                let mut resp = MessageDoc::response(msg.operation.clone());
                resp.set("param_count", Value::Int(msg.len() as i64));
                let _ = ep.reply(&req, kinds::MEMBER_RESULT, resp.to_xml());
            }
        });
        client.join(&member("echo", "svc.echo")).unwrap();
        let req = MessageDoc::request("bookAccommodation")
            .with("city", Value::str("Sydney"))
            .with("weight_cost", Value::Float(3.0));
        let resp = client.invoke(&req).unwrap();
        assert_eq!(
            resp.get(&"param_count".to_string()[..]),
            Some(&Value::Int(1))
        );
    }

    /// A canned failure-detector view keyed by member endpoint name.
    struct FixedLiveness(std::collections::HashMap<String, PeerStatus>);

    impl LivenessProbe for FixedLiveness {
        fn status_of(&self, name: &str) -> PeerStatus {
            self.0.get(name).copied().unwrap_or(PeerStatus::Alive)
        }
    }

    #[test]
    fn liveness_gate_skips_evicted_and_deprioritizes_suspected() {
        let net = Network::new(NetworkConfig::instant());
        let liveness = Arc::new(FixedLiveness(
            [
                ("svc.gone".to_string(), PeerStatus::Evicted),
                ("svc.shaky".to_string(), PeerStatus::Suspected),
            ]
            .into_iter()
            .collect(),
        ));
        let handle = CommunityServer::spawn(
            &net,
            "community.live",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                liveness: Some(liveness),
                ..Default::default()
            },
        )
        .unwrap();
        let client = CommunityClient::connect(&net, "client", "community.live").unwrap();
        let _gone = spawn_member(&net, "svc.gone", false, Duration::ZERO);
        let _shaky = spawn_member(&net, "svc.shaky", false, Duration::ZERO);
        let _solid = spawn_member(&net, "svc.solid", false, Duration::ZERO);
        client.join(&member("a-gone", "svc.gone")).unwrap();
        client.join(&member("b-shaky", "svc.shaky")).unwrap();
        client.join(&member("c-solid", "svc.solid")).unwrap();
        // Round-robin would cycle all three; the gate pins every call to
        // the only healthy member.
        for _ in 0..6 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.solid"));
        }
        // With the healthy member gone, the suspected one serves as the
        // fallback — but the evicted one never does.
        client.leave(&MemberId("c-solid".into())).unwrap();
        for _ in 0..4 {
            let resp = client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
            assert_eq!(resp.get_str("served_by"), Some("svc.shaky"));
        }
        // Only the suspected fallback remains once it also leaves: the
        // evicted member alone means "no members available".
        client.leave(&MemberId("b-shaky".into())).unwrap();
        let err = client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert!(err.to_string().contains("no members"), "{err}");
        drop(handle);
    }

    #[test]
    fn metrics_capture_delegations_failovers_and_latency() {
        let net = Network::new(NetworkConfig::instant());
        let registry = Registry::new();
        let metrics = CommunityMetrics::register(&registry, &[("community", "ab")]);
        let handle = CommunityServer::spawn(
            &net,
            "community.metered",
            community(),
            Arc::new(RoundRobin::new()),
            CommunityServerConfig {
                metrics: Some(Arc::clone(&metrics)),
                ..Default::default()
            },
        )
        .unwrap();
        handle.register_metrics(&registry, &[("community", "ab"), ("replica", "0")]);
        let client = CommunityClient::connect(&net, "client", "community.metered").unwrap();
        let _bad = spawn_member(&net, "svc.bad", true, Duration::ZERO);
        let _good = spawn_member(&net, "svc.good", false, Duration::ZERO);
        client.join(&member("a-bad", "svc.bad")).unwrap();
        client.join(&member("b-good", "svc.good")).unwrap();
        for _ in 0..4 {
            client
                .invoke(&MessageDoc::request("bookAccommodation"))
                .unwrap();
        }
        assert_eq!(metrics.delegations.get(), 4);
        assert!(
            metrics.failovers.get() > 0,
            "round-robin must have failed over"
        );
        assert_eq!(metrics.faults.get(), 0);
        let snap = metrics.delegation_latency_us.snapshot();
        assert_eq!(
            snap.count(),
            4,
            "one latency sample per successful delegation"
        );
        // A delegation against an empty member pool faults and is counted.
        client.leave(&MemberId("a-bad".into())).unwrap();
        client.leave(&MemberId("b-good".into())).unwrap();
        client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap_err();
        assert_eq!(metrics.faults.get(), 1);
        let text = registry.render();
        assert!(text.contains("selfserv_community_delegations_total{community=\"ab\"} 4"));
        assert!(text.contains("selfserv_community_members{community=\"ab\",replica=\"0\"} 0"));
        assert!(text.contains("selfserv_community_in_flight{community=\"ab\",replica=\"0\"} 0"));
    }

    #[test]
    fn history_records_latency() {
        let (net, handle, client) = setup(DelegationMode::Proxy);
        let _m = spawn_member(&net, "svc.slow", false, Duration::from_millis(30));
        client.join(&member("slow", "svc.slow")).unwrap();
        client
            .invoke(&MessageDoc::request("bookAccommodation"))
            .unwrap();
        let stats = handle.history().stats(&MemberId("slow".into()));
        assert_eq!(stats.completed, 1);
        assert!(stats.latency_ewma_ms.unwrap() >= 25.0);
    }
}
