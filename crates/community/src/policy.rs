//! Delegatee selection policies.
//!
//! Selection sees all four inputs the paper names: the request parameters
//! (via [`SelectionContext::request`]), the member characteristics
//! ([`crate::QosProfile`]), the execution history, and the ongoing-execution
//! gauge — and returns the member the community delegates to.

use crate::history::ExecutionHistory;
use crate::membership::Member;
#[cfg(test)]
use crate::membership::MemberId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfserv_net::LivenessProbe;
use selfserv_wsdl::MessageDoc;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything a policy may consult when choosing a delegatee.
pub struct SelectionContext<'a> {
    /// The operation being requested.
    pub operation: &'a str,
    /// The request message ("the parameters of the request").
    pub request: &'a MessageDoc,
    /// Execution history + in-flight gauges.
    pub history: &'a ExecutionHistory,
    /// Peer liveness (a failure detector's view, e.g. a
    /// `selfserv-discovery` directory). `None` when the community runs
    /// without one. The server already removes evicted members and
    /// deprioritizes suspected ones before `select` is called; policies
    /// that want finer behaviour (e.g. scoring suspicion as a reliability
    /// penalty) can probe member endpoints here.
    pub liveness: Option<&'a dyn LivenessProbe>,
}

/// A delegatee-selection strategy. Implementations must be deterministic
/// given their own internal state (randomised policies own a seeded RNG).
pub trait SelectionPolicy: Send + Sync {
    /// Chooses one of `candidates` (non-empty, sorted by member id).
    /// Returning `None` makes the community report
    /// [`crate::CommunityError::NoMembersAvailable`].
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member>;

    /// Short policy name for diagnostics and experiment tables.
    fn name(&self) -> &'static str;
}

/// Cycles through members in id order. Best load *spread*, blind to member
/// quality.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// A fresh round-robin counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionPolicy for RoundRobin {
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        _ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member> {
        if candidates.is_empty() {
            return None;
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % candidates.len();
        Some(candidates[idx])
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random choice with a seeded RNG.
pub struct RandomChoice {
    rng: Mutex<StdRng>,
}

impl RandomChoice {
    /// Seeded random policy.
    pub fn new(seed: u64) -> Self {
        RandomChoice {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl SelectionPolicy for RandomChoice {
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        _ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member> {
        if candidates.is_empty() {
            return None;
        }
        let idx = self.rng.lock().gen_range(0..candidates.len());
        Some(candidates[idx])
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Picks the member with the fewest ongoing executions ("status of ongoing
/// executions"), breaking ties by member id.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl SelectionPolicy for LeastLoaded {
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member> {
        candidates
            .iter()
            .min_by_key(|m| (ctx.history.in_flight(&m.id), &m.id))
            .copied()
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Attribute weights for [`WeightedScoring`] / [`HistoryAware`]. Each weight
/// expresses how much the (normalised) attribute matters; weights need not
/// sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of (low) cost.
    pub cost: f64,
    /// Weight of (low) duration.
    pub duration: f64,
    /// Weight of (high) reliability.
    pub reliability: f64,
    /// Weight of (high) reputation.
    pub reputation: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            cost: 1.0,
            duration: 1.0,
            reliability: 1.0,
            reputation: 1.0,
        }
    }
}

/// Simple Additive Weighting (SAW) over the advertised QoS profile —
/// normalises each attribute across the candidate set and picks the highest
/// weighted sum. Request messages may override the weights per call by
/// carrying numeric `weight_cost` / `weight_duration` / `weight_reliability`
/// / `weight_reputation` parameters, which is how "the parameters of the
/// request" steer selection.
#[derive(Debug, Default)]
pub struct WeightedScoring {
    /// Default weights when the request does not override them.
    pub weights: Weights,
}

impl WeightedScoring {
    /// SAW with explicit weights.
    pub fn new(weights: Weights) -> Self {
        WeightedScoring { weights }
    }

    fn effective_weights(&self, request: &MessageDoc) -> Weights {
        let get = |name: &str, default: f64| {
            request
                .get(name)
                .and_then(|v| v.as_f64())
                .unwrap_or(default)
        };
        Weights {
            cost: get("weight_cost", self.weights.cost),
            duration: get("weight_duration", self.weights.duration),
            reliability: get("weight_reliability", self.weights.reliability),
            reputation: get("weight_reputation", self.weights.reputation),
        }
    }
}

/// Normalises `value` into [0, 1] across `[min, max]`; `higher_better`
/// flips the scale for cost-like attributes.
fn normalise(value: f64, min: f64, max: f64, higher_better: bool) -> f64 {
    if (max - min).abs() < f64::EPSILON {
        return 1.0;
    }
    let scaled = (value - min) / (max - min);
    if higher_better {
        scaled
    } else {
        1.0 - scaled
    }
}

fn saw_score(
    members: &[&Member],
    weights: Weights,
    observed: impl Fn(&Member) -> (f64, f64),
) -> Vec<f64> {
    // observed() returns (duration_ms, reliability) — either advertised or
    // history-adjusted. Cost and duration are unbounded, so they are
    // min-max normalised across the candidate set; reliability and
    // reputation already live on [0, 1] and are used raw — min-max
    // normalising them would blow up hair-thin differences (0.99 vs 1.0)
    // to full scale and let them dominate the score.
    let costs: Vec<f64> = members.iter().map(|m| m.qos.cost).collect();
    let durations: Vec<f64> = members.iter().map(|m| observed(m).0).collect();
    let bounds = |xs: &[f64]| {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    };
    let (cmin, cmax) = bounds(&costs);
    let (dmin, dmax) = bounds(&durations);
    (0..members.len())
        .map(|i| {
            weights.cost * normalise(costs[i], cmin, cmax, false)
                + weights.duration * normalise(durations[i], dmin, dmax, false)
                + weights.reliability * observed(members[i]).1.clamp(0.0, 1.0)
                + weights.reputation * members[i].qos.reputation.clamp(0.0, 1.0)
        })
        .collect()
}

impl SelectionPolicy for WeightedScoring {
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member> {
        if candidates.is_empty() {
            return None;
        }
        let weights = self.effective_weights(ctx.request);
        let scores = saw_score(candidates, weights, |m| {
            (m.qos.duration_ms, m.qos.reliability)
        });
        let best = scores
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Tie-break toward the smaller member id for determinism.
                    .then_with(|| candidates[*ib].id.cmp(&candidates[*ia].id))
            })
            .map(|(i, _)| i)?;
        Some(candidates[best])
    }

    fn name(&self) -> &'static str {
        "saw"
    }
}

/// SAW where advertised duration/reliability are replaced by *observed*
/// EWMA values once history exists — "the history of past executions". A
/// member with no history competes on its advertised numbers.
#[derive(Debug, Default)]
pub struct HistoryAware {
    /// Attribute weights.
    pub weights: Weights,
}

impl HistoryAware {
    /// History-aware SAW with explicit weights.
    pub fn new(weights: Weights) -> Self {
        HistoryAware { weights }
    }
}

impl SelectionPolicy for HistoryAware {
    fn select<'m>(
        &self,
        candidates: &[&'m Member],
        ctx: &SelectionContext<'_>,
    ) -> Option<&'m Member> {
        if candidates.is_empty() {
            return None;
        }
        let scores = saw_score(candidates, self.weights, |m| {
            let stats = ctx.history.stats(&m.id);
            let duration = stats.latency_ewma_ms.unwrap_or(m.qos.duration_ms);
            let reliability = if stats.completed == 0 {
                m.qos.reliability
            } else {
                stats.success_ewma
            };
            (duration, reliability)
        });
        let best = scores
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| candidates[*ib].id.cmp(&candidates[*ia].id))
            })
            .map(|(i, _)| i)?;
        Some(candidates[best])
    }

    fn name(&self) -> &'static str {
        "history-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Outcome;
    use crate::membership::QosProfile;
    use selfserv_net::NodeId;
    use std::time::Duration;

    fn member(id: &str, qos: QosProfile) -> Member {
        Member {
            id: MemberId(id.to_string()),
            provider: id.to_string(),
            endpoint: NodeId::new(format!("svc.{id}")),
            qos,
        }
    }

    fn ctx<'a>(request: &'a MessageDoc, history: &'a ExecutionHistory) -> SelectionContext<'a> {
        SelectionContext {
            operation: "op",
            request,
            history,
            liveness: None,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let a = member("a", QosProfile::default());
        let b = member("b", QosProfile::default());
        let c = member("c", QosProfile::default());
        let candidates = vec![&a, &b, &c];
        let policy = RoundRobin::new();
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let picks: Vec<&str> = (0..6)
            .map(|_| {
                policy
                    .select(&candidates, &ctx(&req, &hist))
                    .unwrap()
                    .id
                    .0
                    .as_str()
            })
            .collect();
        assert_eq!(picks, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let a = member("a", QosProfile::default());
        let b = member("b", QosProfile::default());
        let candidates = vec![&a, &b];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let run = |seed| {
            let p = RandomChoice::new(seed);
            (0..20)
                .map(|_| {
                    p.select(&candidates, &ctx(&req, &hist))
                        .unwrap()
                        .id
                        .0
                        .clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same sequence");
        assert!(run(7).iter().any(|x| x == "a") && run(7).iter().any(|x| x == "b"));
    }

    #[test]
    fn least_loaded_prefers_idle_members() {
        let a = member("a", QosProfile::default());
        let b = member("b", QosProfile::default());
        let candidates = vec![&a, &b];
        let hist = ExecutionHistory::new();
        hist.start(&a.id);
        hist.start(&a.id);
        hist.start(&b.id);
        let req = MessageDoc::request("op");
        let p = LeastLoaded;
        assert_eq!(p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0, "b");
        // Tie breaks to the smaller id.
        hist.start(&b.id);
        assert_eq!(p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0, "a");
    }

    #[test]
    fn saw_prefers_dominating_member() {
        let good = member(
            "good",
            QosProfile {
                cost: 1.0,
                duration_ms: 50.0,
                reliability: 0.99,
                reputation: 0.9,
            },
        );
        let bad = member(
            "bad",
            QosProfile {
                cost: 5.0,
                duration_ms: 500.0,
                reliability: 0.8,
                reputation: 0.2,
            },
        );
        let candidates = vec![&bad, &good];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let p = WeightedScoring::default();
        assert_eq!(
            p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0,
            "good"
        );
    }

    #[test]
    fn saw_request_weights_override() {
        // cheap-but-slow vs expensive-but-fast: the request decides.
        let cheap = member(
            "cheap",
            QosProfile {
                cost: 1.0,
                duration_ms: 500.0,
                reliability: 0.9,
                reputation: 0.5,
            },
        );
        let fast = member(
            "fast",
            QosProfile {
                cost: 10.0,
                duration_ms: 20.0,
                reliability: 0.9,
                reputation: 0.5,
            },
        );
        let candidates = vec![&cheap, &fast];
        let hist = ExecutionHistory::new();
        let p = WeightedScoring::default();
        let cost_sensitive = MessageDoc::request("op")
            .with("weight_cost", selfserv_expr::Value::Float(10.0))
            .with("weight_duration", selfserv_expr::Value::Float(0.1));
        assert_eq!(
            p.select(&candidates, &ctx(&cost_sensitive, &hist))
                .unwrap()
                .id
                .0,
            "cheap"
        );
        let latency_sensitive = MessageDoc::request("op")
            .with("weight_cost", selfserv_expr::Value::Float(0.1))
            .with("weight_duration", selfserv_expr::Value::Float(10.0));
        assert_eq!(
            p.select(&candidates, &ctx(&latency_sensitive, &hist))
                .unwrap()
                .id
                .0,
            "fast"
        );
    }

    #[test]
    fn history_aware_dethrones_lying_member() {
        // "liar" advertises 10 ms but actually takes 800 ms; "honest"
        // advertises 100 ms and delivers it. With no history the liar wins;
        // with history the honest member does.
        let liar = member(
            "liar",
            QosProfile {
                cost: 1.0,
                duration_ms: 10.0,
                reliability: 0.99,
                reputation: 0.5,
            },
        );
        let honest = member(
            "honest",
            QosProfile {
                cost: 1.0,
                duration_ms: 100.0,
                reliability: 0.99,
                reputation: 0.5,
            },
        );
        let candidates = vec![&honest, &liar];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let p = HistoryAware::default();
        assert_eq!(
            p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0,
            "liar"
        );
        for _ in 0..10 {
            hist.start(&liar.id);
            hist.complete(&liar.id, Duration::from_millis(800), Outcome::Success);
            hist.start(&honest.id);
            hist.complete(&honest.id, Duration::from_millis(100), Outcome::Success);
        }
        assert_eq!(
            p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0,
            "honest"
        );
    }

    #[test]
    fn history_aware_penalises_failures() {
        let flaky = member(
            "flaky",
            QosProfile {
                cost: 1.0,
                duration_ms: 50.0,
                reliability: 0.99,
                reputation: 0.5,
            },
        );
        let solid = member(
            "solid",
            QosProfile {
                cost: 1.0,
                duration_ms: 50.0,
                reliability: 0.9,
                reputation: 0.5,
            },
        );
        let candidates = vec![&flaky, &solid];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        for _ in 0..10 {
            hist.start(&flaky.id);
            hist.complete(&flaky.id, Duration::from_millis(50), Outcome::Failure);
            hist.start(&solid.id);
            hist.complete(&solid.id, Duration::from_millis(50), Outcome::Success);
        }
        let p = HistoryAware::default();
        assert_eq!(
            p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0,
            "solid"
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let c = ctx(&req, &hist);
        assert!(RoundRobin::new().select(&[], &c).is_none());
        assert!(RandomChoice::new(1).select(&[], &c).is_none());
        assert!(LeastLoaded.select(&[], &c).is_none());
        assert!(WeightedScoring::default().select(&[], &c).is_none());
        assert!(HistoryAware::default().select(&[], &c).is_none());
    }

    #[test]
    fn single_candidate_always_selected() {
        let only = member("only", QosProfile::default());
        let candidates = vec![&only];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let c = ctx(&req, &hist);
        for policy in [
            &RoundRobin::new() as &dyn SelectionPolicy,
            &RandomChoice::new(3),
            &LeastLoaded,
            &WeightedScoring::default(),
            &HistoryAware::default(),
        ] {
            assert_eq!(
                policy.select(&candidates, &c).unwrap().id.0,
                "only",
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn identical_members_tie_break_deterministically() {
        let a = member("a", QosProfile::default());
        let b = member("b", QosProfile::default());
        let candidates = vec![&a, &b];
        let req = MessageDoc::request("op");
        let hist = ExecutionHistory::new();
        let p = WeightedScoring::default();
        let first = p
            .select(&candidates, &ctx(&req, &hist))
            .unwrap()
            .id
            .0
            .clone();
        for _ in 0..5 {
            assert_eq!(
                p.select(&candidates, &ctx(&req, &hist)).unwrap().id.0,
                first
            );
        }
        assert_eq!(first, "a", "ties break toward the smaller id");
    }
}
