//! Execution history: the "history of past executions" and "status of
//! ongoing executions" inputs to delegatee selection.

use crate::membership::MemberId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::Duration;

/// Outcome of one delegated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The member returned a successful response.
    Success,
    /// The member faulted or timed out.
    Failure,
}

/// Per-member rolling statistics. Latency and success rate are exponential
/// weighted moving averages so recent behaviour dominates, matching the
/// "current conditions" flavour of the paper's selection inputs.
#[derive(Debug, Clone)]
pub struct MemberStats {
    /// EWMA of observed latency (ms). `None` until the first completion.
    pub latency_ewma_ms: Option<f64>,
    /// EWMA of success (1.0) / failure (0.0). Starts optimistic at 1.0.
    pub success_ewma: f64,
    /// Completed executions recorded.
    pub completed: u64,
    /// Failures recorded.
    pub failures: u64,
    /// Executions currently in flight (the ongoing-execution gauge).
    pub in_flight: u32,
}

impl Default for MemberStats {
    fn default() -> Self {
        MemberStats {
            latency_ewma_ms: None,
            success_ewma: 1.0,
            completed: 0,
            failures: 0,
            in_flight: 0,
        }
    }
}

impl MemberStats {
    /// Observed failure fraction over all completions (not EWMA).
    pub fn failure_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.failures as f64 / self.completed as f64
        }
    }
}

/// Thread-safe execution history for one community.
#[derive(Debug, Default)]
pub struct ExecutionHistory {
    /// EWMA smoothing factor in (0, 1]; weight of the newest sample.
    alpha: f64,
    stats: RwLock<HashMap<MemberId, MemberStats>>,
}

impl ExecutionHistory {
    /// History with the default smoothing factor (0.3).
    pub fn new() -> Self {
        Self::with_alpha(0.3)
    }

    /// History with an explicit EWMA smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ExecutionHistory {
            alpha,
            stats: RwLock::new(HashMap::new()),
        }
    }

    /// Marks an execution as started (increments the in-flight gauge).
    pub fn start(&self, member: &MemberId) {
        let mut stats = self.stats.write();
        stats.entry(member.clone()).or_default().in_flight += 1;
    }

    /// Records a completion: decrements in-flight, folds the latency and
    /// outcome into the EWMAs.
    pub fn complete(&self, member: &MemberId, latency: Duration, outcome: Outcome) {
        let mut stats = self.stats.write();
        let s = stats.entry(member.clone()).or_default();
        s.in_flight = s.in_flight.saturating_sub(1);
        s.completed += 1;
        let sample_ms = latency.as_secs_f64() * 1e3;
        s.latency_ewma_ms = Some(match s.latency_ewma_ms {
            None => sample_ms,
            Some(prev) => self.alpha * sample_ms + (1.0 - self.alpha) * prev,
        });
        let outcome_val = match outcome {
            Outcome::Success => 1.0,
            Outcome::Failure => {
                s.failures += 1;
                0.0
            }
        };
        s.success_ewma = self.alpha * outcome_val + (1.0 - self.alpha) * s.success_ewma;
    }

    /// Snapshot of one member's stats (default stats if never seen).
    pub fn stats(&self, member: &MemberId) -> MemberStats {
        self.stats.read().get(member).cloned().unwrap_or_default()
    }

    /// Current in-flight count for a member.
    pub fn in_flight(&self, member: &MemberId) -> u32 {
        self.stats.read().get(member).map_or(0, |s| s.in_flight)
    }

    /// Snapshot of all members' stats.
    pub fn all(&self) -> HashMap<MemberId, MemberStats> {
        self.stats.read().clone()
    }

    /// Forgets a member (e.g. after it leaves the community).
    pub fn forget(&self, member: &MemberId) {
        self.stats.write().remove(member);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: &str) -> MemberId {
        MemberId(id.to_string())
    }

    #[test]
    fn in_flight_gauge() {
        let h = ExecutionHistory::new();
        h.start(&m("a"));
        h.start(&m("a"));
        assert_eq!(h.in_flight(&m("a")), 2);
        h.complete(&m("a"), Duration::from_millis(10), Outcome::Success);
        assert_eq!(h.in_flight(&m("a")), 1);
        assert_eq!(h.in_flight(&m("never-seen")), 0);
    }

    #[test]
    fn ewma_latency_converges_toward_recent_samples() {
        let h = ExecutionHistory::with_alpha(0.5);
        for _ in 0..20 {
            h.start(&m("a"));
            h.complete(&m("a"), Duration::from_millis(100), Outcome::Success);
        }
        let slow = h.stats(&m("a")).latency_ewma_ms.unwrap();
        assert!((slow - 100.0).abs() < 1.0, "{slow}");
        for _ in 0..20 {
            h.start(&m("a"));
            h.complete(&m("a"), Duration::from_millis(10), Outcome::Success);
        }
        let fast = h.stats(&m("a")).latency_ewma_ms.unwrap();
        assert!(fast < 11.0, "recent fast samples dominate: {fast}");
    }

    #[test]
    fn success_ewma_decays_on_failures() {
        let h = ExecutionHistory::with_alpha(0.5);
        assert_eq!(h.stats(&m("a")).success_ewma, 1.0, "optimistic prior");
        h.start(&m("a"));
        h.complete(&m("a"), Duration::from_millis(5), Outcome::Failure);
        let after_one = h.stats(&m("a")).success_ewma;
        assert!(after_one < 1.0);
        h.start(&m("a"));
        h.complete(&m("a"), Duration::from_millis(5), Outcome::Failure);
        assert!(h.stats(&m("a")).success_ewma < after_one);
        h.start(&m("a"));
        h.complete(&m("a"), Duration::from_millis(5), Outcome::Success);
        assert!(h.stats(&m("a")).success_ewma > h.stats(&m("b")).success_ewma * 0.0);
    }

    #[test]
    fn failure_rate_counts() {
        let h = ExecutionHistory::new();
        for i in 0..10 {
            h.start(&m("a"));
            let outcome = if i % 2 == 0 {
                Outcome::Success
            } else {
                Outcome::Failure
            };
            h.complete(&m("a"), Duration::from_millis(1), outcome);
        }
        let s = h.stats(&m("a"));
        assert_eq!(s.completed, 10);
        assert_eq!(s.failures, 5);
        assert!((s.failure_rate() - 0.5).abs() < f64::EPSILON);
        assert_eq!(MemberStats::default().failure_rate(), 0.0);
    }

    #[test]
    fn forget_removes_member() {
        let h = ExecutionHistory::new();
        h.start(&m("a"));
        h.complete(&m("a"), Duration::from_millis(1), Outcome::Success);
        assert_eq!(h.stats(&m("a")).completed, 1);
        h.forget(&m("a"));
        assert_eq!(h.stats(&m("a")).completed, 0);
        assert_eq!(h.all().len(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        let _ = ExecutionHistory::with_alpha(0.0);
    }

    #[test]
    fn concurrent_updates() {
        let h = std::sync::Arc::new(ExecutionHistory::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    h.start(&m("shared"));
                    h.complete(&m("shared"), Duration::from_millis(1), Outcome::Success);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let s = h.stats(&m("shared"));
        assert_eq!(s.completed, 800);
        assert_eq!(s.in_flight, 0);
    }
}
