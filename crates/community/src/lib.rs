//! # selfserv-community
//!
//! **Service communities**: containers of alternative services.
//!
//! Per the paper (Section 2), communities "provide descriptions of desired
//! services without referring to any actual provider", and at run time a
//! community "delegates [a request] to one of its current members. The
//! choice of the delegatee is based on the parameters of the request, the
//! characteristics of the members, the history of past executions and the
//! status of ongoing executions." This crate implements exactly those four
//! selection inputs:
//!
//! * [`Community`] — membership (join/leave), the generic operations the
//!   community advertises, and delegation;
//! * [`QosProfile`] — static member characteristics (cost, advertised
//!   duration, reliability, reputation);
//! * [`ExecutionHistory`] — EWMA latency and success statistics from past
//!   executions, plus an in-flight (ongoing execution) gauge;
//! * [`SelectionPolicy`] implementations: round-robin, uniform random,
//!   least-loaded, score-based Simple Additive Weighting over QoS
//!   ([`WeightedScoring`]), and [`HistoryAware`] (SAW re-weighted by
//!   observed latency/success);
//! * [`CommunityServer`] — a fabric node that accepts `invoke` requests and
//!   delegates to members either by **proxying** the call or by
//!   **redirecting** the caller to the chosen member's binding.

mod history;
mod membership;
mod policy;
pub mod replication;
mod server;

pub use history::{ExecutionHistory, MemberStats, Outcome};
pub use membership::{Community, CommunityError, Member, MemberId, QosProfile};
pub use policy::{
    HistoryAware, LeastLoaded, RandomChoice, RoundRobin, SelectionContext, SelectionPolicy,
    WeightedScoring, Weights,
};
pub use replication::{MemberEntry, MembershipGossip, MembershipState};
pub use server::kinds;
pub use server::{
    CommunityClient, CommunityMetrics, CommunityServer, CommunityServerConfig,
    CommunityServerHandle, DelegationMode, ReplicationConfig,
};

#[cfg(test)]
mod proptests;
