//! Replicated community membership: a versioned, tombstoned member table
//! with the [`PeerDirectory`]'s last-writer-wins merge discipline.
//!
//! Each community replica owns a private [`MembershipState`] — no shared
//! `Arc` between replicas, no shared memory between hubs. Joins, leaves,
//! and QoS re-advertisements mutate the local table under a per-member
//! **version counter**; departures become **tombstones** (the row stays,
//! flagged evicted, so the departure travels as far as the arrival did).
//! Replicas converge by exchanging rows: a full snapshot out, a delta of
//! exactly the missing rows back — over the replica-to-replica
//! `community.msync`/`community.mdelta` kinds, and piggybacked on the
//! discovery gossip via [`MembershipGossip`].
//!
//! The merge is deterministic and total: between two rows for one member
//! the greater `(version, evicted, payload)` triple wins everywhere, so
//! any exchange order — any gossip schedule, any loss pattern, any
//! replay — converges every replica to the same table. At equal versions
//! a tombstone beats a live row (departure wins the race it lost by a
//! heartbeat), and equal-version same-eviction rows fall back to the
//! canonical payload encoding, an arbitrary but *agreed* order.
//!
//! [`PeerDirectory`]: selfserv_net::PeerDirectory

use crate::membership::{Community, CommunityError, Member, MemberId, QosProfile};
use parking_lot::RwLock;
use selfserv_net::gossip::{GossipPayload, PAYLOAD_ELEMENT};
use selfserv_net::NodeId;
use selfserv_xml::Element;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One member's row in the replicated table: the advertised member data
/// under a version counter and a departure tombstone.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberEntry {
    /// The advertised member (id, provider, endpoint, QoS). Tombstones
    /// keep the last-known payload — useful for forensics and required
    /// for the merge order to stay total.
    pub member: Member,
    /// Version counter: bumped by every local mutation of this member
    /// (join, leave, QoS update). Higher version wins every merge.
    pub version: u64,
    /// True once the member left: the row is a tombstone, excluded from
    /// selection but still gossiped so the departure propagates.
    pub evicted: bool,
}

impl MemberEntry {
    /// The total merge order. Version dominates; at equal versions a
    /// tombstone wins (`true > false`); at equal version and eviction the
    /// canonical payload encoding breaks the tie identically on every
    /// replica.
    fn merge_key(&self) -> (u64, bool, String) {
        (self.version, self.evicted, canonical_payload(&self.member))
    }

    /// True when `other` beats this row under the merge order. Equal rows
    /// lose (idempotence: re-merging what we hold changes nothing).
    pub fn loses_to(&self, other: &MemberEntry) -> bool {
        self.merge_key() < other.merge_key()
    }
}

/// The member payload in a canonical, replica-independent encoding — the
/// final tiebreak of the merge order and an input to the fingerprint.
fn canonical_payload(m: &Member) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}",
        m.provider,
        m.endpoint.as_str(),
        m.qos.cost,
        m.qos.duration_ms,
        m.qos.reliability,
        m.qos.reputation
    )
}

/// One replica's membership table. Plain data — the community server
/// wraps it in its own lock; property tests drive it directly.
#[derive(Debug, Clone, Default)]
pub struct MembershipState {
    entries: BTreeMap<MemberId, MemberEntry>,
}

impl MembershipState {
    /// An empty table.
    pub fn new() -> MembershipState {
        MembershipState::default()
    }

    /// A table seeded from a [`Community`]'s member set (each at version
    /// 1) — how a replica adopts the members its spawner declared.
    pub fn seeded_from(community: &Community) -> MembershipState {
        let mut state = MembershipState::new();
        for member in community.members() {
            let _ = state.join(member.clone());
        }
        state
    }

    /// Registers a member: an error on a live duplicate, a version bump
    /// over a tombstone (rejoining after a departure is a new life for
    /// the same id). Returns the row to gossip.
    pub fn join(&mut self, member: Member) -> Result<MemberEntry, CommunityError> {
        let version = match self.entries.get(&member.id) {
            Some(e) if !e.evicted => {
                return Err(CommunityError::DuplicateMember(member.id));
            }
            Some(tombstone) => tombstone.version + 1,
            None => 1,
        };
        let entry = MemberEntry {
            member,
            version,
            evicted: false,
        };
        self.entries.insert(entry.member.id.clone(), entry.clone());
        Ok(entry)
    }

    /// Re-advertises a live member's data (typically new QoS figures).
    /// Unknown or departed members error. Returns the row to gossip.
    pub fn update(&mut self, member: Member) -> Result<MemberEntry, CommunityError> {
        match self.entries.get_mut(&member.id) {
            Some(e) if !e.evicted => {
                e.member = member;
                e.version += 1;
                Ok(e.clone())
            }
            _ => Err(CommunityError::UnknownMember(member.id)),
        }
    }

    /// Removes a member by tombstoning its row at `version + 1`. Unknown
    /// or already-departed members error. Returns the tombstone to
    /// gossip.
    pub fn leave(&mut self, id: &MemberId) -> Result<MemberEntry, CommunityError> {
        match self.entries.get_mut(id) {
            Some(e) if !e.evicted => {
                e.evicted = true;
                e.version += 1;
                Ok(e.clone())
            }
            _ => Err(CommunityError::UnknownMember(id.clone())),
        }
    }

    /// Merges one remote row under the total order; returns whether the
    /// local table changed.
    pub fn merge_entry(&mut self, id: MemberId, incoming: MemberEntry) -> bool {
        match self.entries.get_mut(&id) {
            Some(current) if current.loses_to(&incoming) => {
                *current = incoming;
                true
            }
            Some(_) => false,
            None => {
                self.entries.insert(id, incoming);
                true
            }
        }
    }

    /// Merges a batch of remote rows; returns how many changed the table.
    pub fn merge_rows(&mut self, rows: impl IntoIterator<Item = (MemberId, MemberEntry)>) -> usize {
        rows.into_iter()
            .filter(|(id, entry)| self.merge_entry(id.clone(), entry.clone()))
            .count()
    }

    /// Rows of this table that strictly dominate (or are absent from) a
    /// peer's snapshot — the delta half of push-pull: the receiver of a
    /// full snapshot answers with exactly what the sender is missing.
    pub fn delta_against(
        &self,
        theirs: &[(MemberId, MemberEntry)],
    ) -> Vec<(MemberId, MemberEntry)> {
        self.entries
            .iter()
            .filter(|(id, mine)| match theirs.iter().find(|(t, _)| t == *id) {
                Some((_, their_row)) => their_row.loses_to(mine),
                None => true,
            })
            .map(|(id, e)| (id.clone(), e.clone()))
            .collect()
    }

    /// The gossip-able view: every row, tombstones included, in id order.
    pub fn snapshot(&self) -> Vec<(MemberId, MemberEntry)> {
        self.entries
            .iter()
            .map(|(id, e)| (id.clone(), e.clone()))
            .collect()
    }

    /// Live members in id order (the selection candidates).
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.entries
            .values()
            .filter(|e| !e.evicted)
            .map(|e| &e.member)
    }

    /// A live member by id.
    pub fn member(&self, id: &MemberId) -> Option<&Member> {
        self.entries
            .get(id)
            .filter(|e| !e.evicted)
            .map(|e| &e.member)
    }

    /// Number of live members.
    pub fn member_count(&self) -> usize {
        self.entries.values().filter(|e| !e.evicted).count()
    }

    /// True when no live member exists.
    pub fn is_empty(&self) -> bool {
        self.member_count() == 0
    }

    /// Order-independent fingerprint of the full table (tombstones
    /// included). Replicas that have converged report equal fingerprints;
    /// the churn and convergence tests poll this.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for (id, e) in &self.entries {
            let mut h = DefaultHasher::new();
            id.0.hash(&mut h);
            e.version.hash(&mut h);
            e.evicted.hash(&mut h);
            canonical_payload(&e.member).hash(&mut h);
            acc ^= h.finish();
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Wire codec: membership rows as XML elements
// ---------------------------------------------------------------------------

/// Encodes one membership row as a `<member>` element — the row format of
/// both the replica sync kinds and the discovery piggyback.
pub fn member_entry_to_xml(entry: &MemberEntry) -> Element {
    let m = &entry.member;
    let mut el = Element::new("member")
        .with_attr("id", &m.id.0)
        .with_attr("provider", &m.provider)
        .with_attr("endpoint", m.endpoint.as_str())
        .with_attr("cost", m.qos.cost.to_string())
        .with_attr("duration_ms", m.qos.duration_ms.to_string())
        .with_attr("reliability", m.qos.reliability.to_string())
        .with_attr("reputation", m.qos.reputation.to_string())
        .with_attr("version", entry.version.to_string());
    if entry.evicted {
        el.set_attr("evicted", "1");
    }
    el
}

/// Decodes a `<member>` row. Malformed rows decode to `None` and are
/// skipped by receivers (one bad row must not poison a whole exchange).
pub fn member_entry_from_xml(el: &Element) -> Option<(MemberId, MemberEntry)> {
    if el.name != "member" {
        return None;
    }
    let num = |name: &str| el.attr(name).and_then(|s| s.parse::<f64>().ok());
    let id = MemberId(el.attr("id")?.to_string());
    Some((
        id.clone(),
        MemberEntry {
            member: Member {
                id,
                provider: el.attr("provider").unwrap_or("").to_string(),
                endpoint: NodeId::new(el.attr("endpoint")?),
                qos: QosProfile {
                    cost: num("cost")?,
                    duration_ms: num("duration_ms")?,
                    reliability: num("reliability")?,
                    reputation: num("reputation")?,
                },
            },
            version: el.attr("version")?.parse().ok()?,
            evicted: el.attr("evicted") == Some("1"),
        },
    ))
}

/// Encodes a set of rows under a `<membership>` header (the body of the
/// replica sync kinds).
pub fn membership_body(community: &str, rows: &[(MemberId, MemberEntry)]) -> Element {
    Element::new("membership")
        .with_attr("community", community)
        .with_children(rows.iter().map(|(_, e)| member_entry_to_xml(e)))
}

/// Decodes a `<membership>` body into its community name and rows.
pub fn membership_rows(body: &Element) -> Option<(String, Vec<(MemberId, MemberEntry)>)> {
    if body.name != "membership" {
        return None;
    }
    let community = body.attr("community")?.to_string();
    let rows = body
        .child_elements()
        .filter_map(member_entry_from_xml)
        .collect();
    Some((community, rows))
}

// ---------------------------------------------------------------------------
// Discovery piggyback: membership as a gossip payload
// ---------------------------------------------------------------------------

/// Adapts one replica's membership table to the discovery channel: the
/// table's snapshot rides every discovery exchange of the hub, and rows
/// merge under the same total order as the replica-to-replica sync. Hubs
/// hosting replicas of the same community converge through either path —
/// whichever message arrives first.
pub struct MembershipGossip {
    community: String,
    state: Arc<RwLock<MembershipState>>,
}

impl MembershipGossip {
    /// Wraps a replica's shared membership handle (see
    /// `CommunityServerHandle::membership`).
    pub fn new(community: impl Into<String>, state: Arc<RwLock<MembershipState>>) -> Arc<Self> {
        Arc::new(MembershipGossip {
            community: community.into(),
            state,
        })
    }
}

impl GossipPayload for MembershipGossip {
    fn key(&self) -> String {
        format!("membership:{}", self.community)
    }

    fn snapshot(&self) -> Element {
        let rows = self.state.read().snapshot();
        Element::new(PAYLOAD_ELEMENT)
            .with_attr("key", self.key())
            .with_children(rows.iter().map(|(_, e)| member_entry_to_xml(e)))
    }

    fn merge(&self, incoming: &Element) -> Option<Element> {
        let rows: Vec<(MemberId, MemberEntry)> = incoming
            .child_elements()
            .filter_map(member_entry_from_xml)
            .collect();
        // A delta section is an *answer* — a partial row set covering only
        // what we were missing. Absence of a row says nothing about the
        // sender's state, so merge it silently; answering would bounce our
        // unrelated rows back forever. Only full snapshots earn a reply.
        if incoming.attr("delta").is_some() {
            self.state.write().merge_rows(rows);
            return None;
        }
        let missing = {
            let mut state = self.state.write();
            let missing = state.delta_against(&rows);
            state.merge_rows(rows);
            missing
        };
        if missing.is_empty() {
            return None;
        }
        Some(
            Element::new(PAYLOAD_ELEMENT)
                .with_attr("key", self.key())
                .with_attr("delta", "1")
                .with_children(missing.iter().map(|(_, e)| member_entry_to_xml(e))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(id: &str) -> Member {
        Member {
            id: MemberId(id.to_string()),
            provider: format!("Provider {id}"),
            endpoint: NodeId::new(format!("svc.{id}")),
            qos: QosProfile::default(),
        }
    }

    #[test]
    fn join_leave_rejoin_bumps_versions() {
        let mut s = MembershipState::new();
        let joined = s.join(member("a")).unwrap();
        assert_eq!((joined.version, joined.evicted), (1, false));
        assert!(matches!(
            s.join(member("a")),
            Err(CommunityError::DuplicateMember(_))
        ));
        let gone = s.leave(&MemberId("a".into())).unwrap();
        assert_eq!((gone.version, gone.evicted), (2, true));
        assert!(s.leave(&MemberId("a".into())).is_err());
        assert_eq!(s.member_count(), 0);
        // The tombstone stays in the gossip-able view …
        assert_eq!(s.snapshot().len(), 1);
        // … and a rejoin resurrects the id above it.
        let back = s.join(member("a")).unwrap();
        assert_eq!((back.version, back.evicted), (3, false));
        assert_eq!(s.member_count(), 1);
    }

    #[test]
    fn update_readvertises_live_members_only() {
        let mut s = MembershipState::new();
        s.join(member("a")).unwrap();
        let mut changed = member("a");
        changed.qos.cost = 9.0;
        let updated = s.update(changed).unwrap();
        assert_eq!(updated.version, 2);
        assert_eq!(s.member(&MemberId("a".into())).unwrap().qos.cost, 9.0);
        assert!(s.update(member("ghost")).is_err());
        s.leave(&MemberId("a".into())).unwrap();
        assert!(s.update(member("a")).is_err());
    }

    #[test]
    fn tombstone_wins_at_equal_version() {
        let live = MemberEntry {
            member: member("a"),
            version: 3,
            evicted: false,
        };
        let dead = MemberEntry {
            member: member("a"),
            version: 3,
            evicted: true,
        };
        assert!(live.loses_to(&dead));
        assert!(!dead.loses_to(&live));
        let mut s = MembershipState::new();
        s.merge_entry(MemberId("a".into()), live);
        assert!(s.merge_entry(MemberId("a".into()), dead));
        assert_eq!(s.member_count(), 0);
    }

    #[test]
    fn push_pull_converges_two_replicas() {
        let mut left = MembershipState::new();
        let mut right = MembershipState::new();
        left.join(member("a")).unwrap();
        left.join(member("b")).unwrap();
        left.leave(&MemberId("b".into())).unwrap();
        right.join(member("c")).unwrap();
        // Push: left's snapshot reaches right; pull: right answers with
        // what left was missing.
        let push = left.snapshot();
        let delta = right.delta_against(&push);
        right.merge_rows(push);
        left.merge_rows(delta);
        assert_eq!(left.fingerprint(), right.fingerprint());
        assert_eq!(left.member_count(), 2); // a and c live, b tombstoned
    }

    #[test]
    fn xml_roundtrip_preserves_rows() {
        let mut s = MembershipState::new();
        s.join(member("a")).unwrap();
        s.join(member("b")).unwrap();
        s.leave(&MemberId("b".into())).unwrap();
        let rows = s.snapshot();
        let body = membership_body("X", &rows);
        let (community, decoded) = membership_rows(&body).unwrap();
        assert_eq!(community, "X");
        assert_eq!(decoded, rows);
        // Non-membership bodies and malformed rows are rejected/skipped.
        assert!(membership_rows(&Element::new("directory")).is_none());
        assert!(member_entry_from_xml(&Element::new("member").with_attr("id", "x")).is_none());
    }

    #[test]
    fn gossip_payload_merges_and_answers_missing_rows() {
        let left = Arc::new(RwLock::new(MembershipState::new()));
        let right = Arc::new(RwLock::new(MembershipState::new()));
        left.write().join(member("a")).unwrap();
        right.write().join(member("b")).unwrap();
        let lp = MembershipGossip::new("X", Arc::clone(&left));
        let rp = MembershipGossip::new("X", Arc::clone(&right));
        assert_eq!(lp.key(), "membership:X");
        // left's snapshot reaches right: right adopts a, answers with b.
        let answer = rp.merge(&lp.snapshot()).expect("right holds fresher rows");
        assert!(lp.merge(&answer).is_none(), "left is now up to date");
        assert_eq!(
            left.read().fingerprint(),
            right.read().fingerprint(),
            "one push-pull round converges"
        );
    }
}
