//! Community membership: members, QoS profiles, join/leave.

use selfserv_net::NodeId;
use selfserv_wsdl::OperationDef;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a member within one community.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub String);

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Static member characteristics — the "characteristics of the members"
/// input to delegatee selection. Values are advertised by providers when
/// they join (as in the original's membership documents).
#[derive(Debug, Clone, PartialEq)]
pub struct QosProfile {
    /// Monetary cost per invocation (arbitrary currency units).
    pub cost: f64,
    /// Advertised mean execution duration, in milliseconds.
    pub duration_ms: f64,
    /// Advertised probability of success (0–1).
    pub reliability: f64,
    /// Reputation score (0–1), e.g. from user ratings.
    pub reputation: f64,
}

impl Default for QosProfile {
    fn default() -> Self {
        QosProfile {
            cost: 1.0,
            duration_ms: 100.0,
            reliability: 0.99,
            reputation: 0.5,
        }
    }
}

impl QosProfile {
    /// Builder: sets the cost.
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Builder: sets the advertised duration.
    pub fn with_duration_ms(mut self, d: f64) -> Self {
        self.duration_ms = d;
        self
    }

    /// Builder: sets the advertised reliability.
    pub fn with_reliability(mut self, r: f64) -> Self {
        self.reliability = r;
        self
    }

    /// Builder: sets the reputation.
    pub fn with_reputation(mut self, r: f64) -> Self {
        self.reputation = r;
        self
    }
}

/// A community member: a concrete service that can stand in for the
/// community's generic operations.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// Member id (unique within the community).
    pub id: MemberId,
    /// Display/provider name.
    pub provider: String,
    /// Fabric node where the member's wrapper listens.
    pub endpoint: NodeId,
    /// Static QoS characteristics.
    pub qos: QosProfile,
}

/// Errors from community operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunityError {
    /// A member with this id is already registered.
    DuplicateMember(MemberId),
    /// No such member.
    UnknownMember(MemberId),
    /// The community currently has no members able to serve a request.
    NoMembersAvailable {
        /// The community name.
        community: String,
    },
    /// The requested operation is not one of the community's generic
    /// operations.
    UnknownOperation(String),
    /// Wire-protocol problem.
    Protocol(String),
    /// Delegation failed (member unreachable / faulted).
    DelegationFailed(String),
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::DuplicateMember(m) => write!(f, "member '{m}' already registered"),
            CommunityError::UnknownMember(m) => write!(f, "unknown member '{m}'"),
            CommunityError::NoMembersAvailable { community } => {
                write!(f, "community '{community}' has no members available")
            }
            CommunityError::UnknownOperation(op) => {
                write!(f, "operation '{op}' is not offered by this community")
            }
            CommunityError::Protocol(m) => write!(f, "community protocol error: {m}"),
            CommunityError::DelegationFailed(m) => write!(f, "delegation failed: {m}"),
        }
    }
}

impl std::error::Error for CommunityError {}

/// A service community: a named capability with generic operations and a
/// mutable member set.
#[derive(Debug, Clone, Default)]
pub struct Community {
    /// Community name (e.g. `AccommodationBooking`).
    pub name: String,
    /// Human-readable purpose.
    pub description: String,
    /// Generic operations, described "without referring to any actual
    /// provider".
    pub operations: Vec<OperationDef>,
    /// Current members, keyed by id (sorted for deterministic iteration).
    members: BTreeMap<MemberId, Member>,
}

impl Community {
    /// Creates an empty community.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Community {
            name: name.into(),
            description: description.into(),
            operations: Vec::new(),
            members: BTreeMap::new(),
        }
    }

    /// Builder: adds a generic operation.
    pub fn with_operation(mut self, op: OperationDef) -> Self {
        self.operations.push(op);
        self
    }

    /// Looks up a generic operation.
    pub fn operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Registers a member.
    pub fn join(&mut self, member: Member) -> Result<(), CommunityError> {
        if self.members.contains_key(&member.id) {
            return Err(CommunityError::DuplicateMember(member.id));
        }
        self.members.insert(member.id.clone(), member);
        Ok(())
    }

    /// Removes a member.
    pub fn leave(&mut self, id: &MemberId) -> Result<Member, CommunityError> {
        self.members
            .remove(id)
            .ok_or_else(|| CommunityError::UnknownMember(id.clone()))
    }

    /// Looks up a member.
    pub fn member(&self, id: &MemberId) -> Option<&Member> {
        self.members.get(id)
    }

    /// Iterates over members in id order.
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.members.values()
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// True when the community has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfserv_wsdl::{OperationDef, Param, ParamType};

    fn member(id: &str) -> Member {
        Member {
            id: MemberId(id.to_string()),
            provider: format!("Provider {id}"),
            endpoint: NodeId::new(format!("svc.{id}")),
            qos: QosProfile::default(),
        }
    }

    #[test]
    fn join_leave_lookup() {
        let mut c = Community::new("AccommodationBooking", "Hotels and hostels");
        assert!(c.is_empty());
        c.join(member("ritz")).unwrap();
        c.join(member("hilton")).unwrap();
        assert_eq!(c.member_count(), 2);
        assert!(c.member(&MemberId("ritz".into())).is_some());
        let gone = c.leave(&MemberId("ritz".into())).unwrap();
        assert_eq!(gone.provider, "Provider ritz");
        assert!(c.member(&MemberId("ritz".into())).is_none());
        assert!(c.leave(&MemberId("ritz".into())).is_err());
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut c = Community::new("X", "");
        c.join(member("a")).unwrap();
        assert!(matches!(
            c.join(member("a")),
            Err(CommunityError::DuplicateMember(_))
        ));
    }

    #[test]
    fn members_iterate_in_id_order() {
        let mut c = Community::new("X", "");
        c.join(member("zeta")).unwrap();
        c.join(member("alpha")).unwrap();
        let ids: Vec<&str> = c.members().map(|m| m.id.0.as_str()).collect();
        assert_eq!(ids, vec!["alpha", "zeta"]);
    }

    #[test]
    fn operations_lookup() {
        let c = Community::new("AccommodationBooking", "").with_operation(
            OperationDef::new("bookAccommodation")
                .with_input(Param::required("city", ParamType::Str)),
        );
        assert!(c.operation("bookAccommodation").is_some());
        assert!(c.operation("teleport").is_none());
    }

    #[test]
    fn qos_builders() {
        let q = QosProfile::default()
            .with_cost(2.0)
            .with_duration_ms(50.0)
            .with_reliability(0.9)
            .with_reputation(0.8);
        assert_eq!(q.cost, 2.0);
        assert_eq!(q.duration_ms, 50.0);
        assert_eq!(q.reliability, 0.9);
        assert_eq!(q.reputation, 0.8);
    }

    #[test]
    fn error_display() {
        let e = CommunityError::NoMembersAvailable {
            community: "AB".into(),
        };
        assert!(e.to_string().contains("AB"));
    }
}
