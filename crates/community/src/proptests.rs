//! Property tests over selection policies (totality, candidate membership,
//! round-robin fairness) and the replicated-membership merge algebra
//! (commutative, idempotent, associative, tombstone-wins — the same laws
//! `selfserv-discovery` proves for the directory, because membership rides
//! the same gossip schedule and must converge under any exchange order).

use crate::history::{ExecutionHistory, Outcome};
use crate::membership::{Member, MemberId, QosProfile};
use crate::policy::*;
use crate::replication::{MemberEntry, MembershipState};
use proptest::prelude::*;
use selfserv_net::NodeId;
use selfserv_wsdl::MessageDoc;
use std::time::Duration;

fn make_members(qos: Vec<(f64, f64, f64, f64)>) -> Vec<Member> {
    qos.into_iter()
        .enumerate()
        .map(|(i, (cost, duration_ms, reliability, reputation))| Member {
            id: MemberId(format!("m{i:02}")),
            provider: format!("P{i}"),
            endpoint: NodeId::new(format!("svc.m{i}")),
            qos: QosProfile {
                cost,
                duration_ms,
                reliability,
                reputation,
            },
        })
        .collect()
}

fn arb_qos() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0.1f64..100.0, 1.0f64..2000.0, 0.0f64..1.0, 0.0f64..1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every policy picks a member from the candidate list (or None only
    /// when the list is empty).
    #[test]
    fn policies_select_from_candidates(
        qos in proptest::collection::vec(arb_qos(), 0..10),
        seed in any::<u64>(),
        completions in proptest::collection::vec((0usize..10, 1u64..500, any::<bool>()), 0..30),
    ) {
        let members = make_members(qos);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        for (idx, ms, ok) in completions {
            if members.is_empty() { break; }
            let id = &members[idx % members.len()].id;
            history.start(id);
            history.complete(
                id,
                Duration::from_millis(ms),
                if ok { Outcome::Success } else { Outcome::Failure },
            );
        }
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomChoice::new(seed)),
            Box::new(LeastLoaded),
            Box::new(WeightedScoring::default()),
            Box::new(HistoryAware::default()),
        ];
        for p in &policies {
            match p.select(&refs, &ctx) {
                Some(chosen) => {
                    prop_assert!(
                        members.iter().any(|m| m.id == chosen.id),
                        "{} chose a non-candidate",
                        p.name()
                    );
                }
                None => prop_assert!(members.is_empty(), "{} returned None with candidates", p.name()),
            }
        }
    }

    /// Round-robin distributes k*n requests exactly k per member.
    #[test]
    fn round_robin_is_fair(n in 1usize..12, k in 1usize..8) {
        let members = make_members(vec![(1.0, 100.0, 0.9, 0.5); n]);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let policy = RoundRobin::new();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n * k {
            let chosen = policy.select(&refs, &ctx).unwrap();
            *counts.entry(chosen.id.clone()).or_insert(0usize) += 1;
        }
        for m in &members {
            prop_assert_eq!(counts.get(&m.id).copied().unwrap_or(0), k);
        }
    }

    /// SAW never picks a strictly dominated member when a dominating one
    /// exists.
    #[test]
    fn saw_never_picks_strictly_dominated(qos in proptest::collection::vec(arb_qos(), 2..8)) {
        let members = make_members(qos);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let chosen = WeightedScoring::default().select(&refs, &ctx).unwrap();
        let dominated_by_someone = members.iter().any(|other| {
            other.id != chosen.id
                && other.qos.cost < chosen.qos.cost
                && other.qos.duration_ms < chosen.qos.duration_ms
                && other.qos.reliability > chosen.qos.reliability
                && other.qos.reputation > chosen.qos.reputation
        });
        prop_assert!(!dominated_by_someone, "SAW picked a strictly dominated member");
    }
}

// ---------------------------------------------------------------------------
// Membership merge algebra
// ---------------------------------------------------------------------------

/// A small id universe so generated row sets collide on members often —
/// collisions are where merge laws can break.
fn arb_row() -> impl Strategy<Value = (MemberId, MemberEntry)> {
    (0u8..5, 0u8..4, 1u64..6, any::<bool>(), 0u8..3).prop_map(
        |(id, endpoint, version, evicted, cost)| {
            let id = MemberId(format!("m{id}"));
            (
                id.clone(),
                MemberEntry {
                    member: Member {
                        id,
                        provider: format!("P{endpoint}"),
                        endpoint: NodeId::new(format!("svc.e{endpoint}")),
                        qos: QosProfile {
                            cost: f64::from(cost),
                            ..QosProfile::default()
                        },
                    },
                    version,
                    evicted,
                },
            )
        },
    )
}

fn arb_rows() -> impl Strategy<Value = Vec<(MemberId, MemberEntry)>> {
    proptest::collection::vec(arb_row(), 0..12)
}

/// Merges row batches into a fresh table and returns its canonical state.
fn apply(batches: &[&[(MemberId, MemberEntry)]]) -> Vec<(MemberId, MemberEntry)> {
    let mut state = MembershipState::new();
    for batch in batches {
        state.merge_rows(batch.iter().cloned());
    }
    state.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Commutativity: A then B converges to the same table as B then A.
    #[test]
    fn membership_merge_is_commutative(a in arb_rows(), b in arb_rows()) {
        prop_assert_eq!(apply(&[&a, &b]), apply(&[&b, &a]));
    }

    /// Idempotence: replaying a batch (gossip redelivery, the eager push
    /// racing the anti-entropy snapshot) changes nothing.
    #[test]
    fn membership_merge_is_idempotent(a in arb_rows(), b in arb_rows()) {
        prop_assert_eq!(apply(&[&a, &b]), apply(&[&a, &b, &a, &b, &b]));
    }

    /// Associativity: a relay replica pre-combining B and C and forwarding
    /// its snapshot equals receiving both directly.
    #[test]
    fn membership_merge_is_associative(a in arb_rows(), b in arb_rows(), c in arb_rows()) {
        let via_relay = {
            let mut relay = MembershipState::new();
            relay.merge_rows(b.iter().cloned());
            relay.merge_rows(c.iter().cloned());
            let combined = relay.snapshot();
            apply(&[&a, &combined])
        };
        prop_assert_eq!(apply(&[&a, &b, &c]), via_relay);
    }

    /// Tombstone-wins: once any replica has merged a tombstone, no
    /// same-or-lower-versioned live row for that member ever resurrects it.
    #[test]
    fn membership_tombstone_wins_at_equal_version(
        (id, mut row) in arb_row(),
        later in arb_rows(),
    ) {
        row.evicted = true;
        let tombstone_version = row.version;
        let mut state = MembershipState::new();
        state.merge_entry(id.clone(), row);
        // Only rows for this id at <= the tombstone's version: none may
        // bring the member back.
        let stale: Vec<_> = later
            .into_iter()
            .filter(|(rid, e)| *rid == id && e.version <= tombstone_version && !e.evicted)
            .collect();
        state.merge_rows(stale);
        prop_assert!(state.member(&id).is_none(), "tombstone was resurrected");
    }

    /// Convergence: two replicas exchanging snapshots (either order,
    /// different histories) end with identical tables and fingerprints —
    /// the guarantee the churn test polls for after quiescence.
    #[test]
    fn membership_snapshot_exchange_converges(a in arb_rows(), b in arb_rows()) {
        let mut left = MembershipState::new();
        let mut right = MembershipState::new();
        left.merge_rows(a.iter().cloned());
        right.merge_rows(b.iter().cloned());
        left.merge_rows(right.snapshot());
        right.merge_rows(left.snapshot());
        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.fingerprint(), right.fingerprint());
    }

    /// The pull half is exact: after one push-pull round the two tables
    /// are identical, and the delta the receiver answers with contains
    /// only rows that actually beat what the sender held.
    #[test]
    fn membership_push_pull_delta_is_exact(a in arb_rows(), b in arb_rows()) {
        let mut sender = MembershipState::new();
        let mut receiver = MembershipState::new();
        sender.merge_rows(a.iter().cloned());
        receiver.merge_rows(b.iter().cloned());
        let push = sender.snapshot();
        let delta = receiver.delta_against(&push);
        for (id, row) in &delta {
            let held = push.iter().find(|(pid, _)| pid == id);
            prop_assert!(
                held.is_none_or(|(_, sent)| sent.loses_to(row)),
                "delta row for {:?} does not beat the pushed row", id
            );
        }
        receiver.merge_rows(push);
        sender.merge_rows(delta);
        prop_assert_eq!(sender.fingerprint(), receiver.fingerprint());
    }
}
