//! Property tests over selection policies: totality, candidate membership,
//! and round-robin fairness.

use crate::history::{ExecutionHistory, Outcome};
use crate::membership::{Member, MemberId, QosProfile};
use crate::policy::*;
use proptest::prelude::*;
use selfserv_net::NodeId;
use selfserv_wsdl::MessageDoc;
use std::time::Duration;

fn make_members(qos: Vec<(f64, f64, f64, f64)>) -> Vec<Member> {
    qos.into_iter()
        .enumerate()
        .map(|(i, (cost, duration_ms, reliability, reputation))| Member {
            id: MemberId(format!("m{i:02}")),
            provider: format!("P{i}"),
            endpoint: NodeId::new(format!("svc.m{i}")),
            qos: QosProfile {
                cost,
                duration_ms,
                reliability,
                reputation,
            },
        })
        .collect()
}

fn arb_qos() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0.1f64..100.0, 1.0f64..2000.0, 0.0f64..1.0, 0.0f64..1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every policy picks a member from the candidate list (or None only
    /// when the list is empty).
    #[test]
    fn policies_select_from_candidates(
        qos in proptest::collection::vec(arb_qos(), 0..10),
        seed in any::<u64>(),
        completions in proptest::collection::vec((0usize..10, 1u64..500, any::<bool>()), 0..30),
    ) {
        let members = make_members(qos);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        for (idx, ms, ok) in completions {
            if members.is_empty() { break; }
            let id = &members[idx % members.len()].id;
            history.start(id);
            history.complete(
                id,
                Duration::from_millis(ms),
                if ok { Outcome::Success } else { Outcome::Failure },
            );
        }
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomChoice::new(seed)),
            Box::new(LeastLoaded),
            Box::new(WeightedScoring::default()),
            Box::new(HistoryAware::default()),
        ];
        for p in &policies {
            match p.select(&refs, &ctx) {
                Some(chosen) => {
                    prop_assert!(
                        members.iter().any(|m| m.id == chosen.id),
                        "{} chose a non-candidate",
                        p.name()
                    );
                }
                None => prop_assert!(members.is_empty(), "{} returned None with candidates", p.name()),
            }
        }
    }

    /// Round-robin distributes k*n requests exactly k per member.
    #[test]
    fn round_robin_is_fair(n in 1usize..12, k in 1usize..8) {
        let members = make_members(vec![(1.0, 100.0, 0.9, 0.5); n]);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let policy = RoundRobin::new();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n * k {
            let chosen = policy.select(&refs, &ctx).unwrap();
            *counts.entry(chosen.id.clone()).or_insert(0usize) += 1;
        }
        for m in &members {
            prop_assert_eq!(counts.get(&m.id).copied().unwrap_or(0), k);
        }
    }

    /// SAW never picks a strictly dominated member when a dominating one
    /// exists.
    #[test]
    fn saw_never_picks_strictly_dominated(qos in proptest::collection::vec(arb_qos(), 2..8)) {
        let members = make_members(qos);
        let refs: Vec<&Member> = members.iter().collect();
        let history = ExecutionHistory::new();
        let req = MessageDoc::request("op");
        let ctx = SelectionContext { operation: "op", request: &req, history: &history, liveness: None };
        let chosen = WeightedScoring::default().select(&refs, &ctx).unwrap();
        let dominated_by_someone = members.iter().any(|other| {
            other.id != chosen.id
                && other.qos.cost < chosen.qos.cost
                && other.qos.duration_ms < chosen.qos.duration_ms
                && other.qos.reliability > chosen.qos.reliability
                && other.qos.reputation > chosen.qos.reputation
        });
        prop_assert!(!dominated_by_someone, "SAW picked a strictly dominated member");
    }
}
