//! # SELF-SERV (Rust reproduction)
//!
//! Facade crate re-exporting the full SELF-SERV platform: declarative
//! composition of web services with statecharts, UDDI-style discovery,
//! service communities, and peer-to-peer orchestration through coordinators
//! driven by statically generated routing tables.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory. The
//! runnable entry points live in `examples/` (start with
//! `cargo run --example quickstart`).

pub use selfserv_community as community;
pub use selfserv_core as core;
pub use selfserv_discovery as discovery;
pub use selfserv_expr as expr;
pub use selfserv_net as net;
pub use selfserv_obs as obs;
pub use selfserv_registry as registry;
pub use selfserv_routing as routing;
pub use selfserv_runtime as runtime;
pub use selfserv_statechart as statechart;
pub use selfserv_wsdl as wsdl;
pub use selfserv_xml as xml;

/// The platform version advertised by service managers.
pub const PLATFORM_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::PLATFORM_VERSION.is_empty());
    }
}
