//! The paper's Section 4 demo, end to end: register providers, define and
//! deploy the travel composite, locate it through the discovery engine,
//! and execute bookings on both guard branches.
//!
//! ```text
//! cargo run --example travel_scenario
//! ```

use selfserv::core::{AccommodationChoice, TravelDemo, TravelDemoConfig};
use selfserv::net::{Network, NetworkConfig};
use selfserv::registry::FindQuery;
use std::time::Duration;

fn main() {
    // A WAN-ish fabric: 5–25 ms per hop, like providers spread across the
    // Internet, with 5 ms of work inside each provider.
    let net = Network::new(NetworkConfig::wan());
    let demo = TravelDemo::launch(
        &net,
        TravelDemoConfig {
            service_latency: Duration::from_millis(5),
            accommodation: AccommodationChoice::Mixed,
            ..Default::default()
        },
    )
    .expect("demo launches");

    // ---- Locating services (the Search panel of Figure 3) ----
    println!("=== discovery engine contents ===");
    for record in demo.manager.registry().find(&FindQuery::any()) {
        println!(
            "  [{}] {:30} by {:20} ops: {}",
            record.key,
            record.description.name,
            record.provider_name,
            record
                .description
                .operations
                .iter()
                .map(|o| o.name.clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    let travel = &demo
        .manager
        .registry()
        .find(&FindQuery::any().operation("execute"))[0];
    println!(
        "\ncomposite '{}' is bound to fabric endpoint '{}'",
        travel.description.name,
        travel.description.primary_binding().unwrap().endpoint
    );

    // ---- Routing tables (what the deployer uploaded) ----
    println!("\n=== routing table of the Car Rental coordinator ===");
    let cr_table = demo.deployment.plan().table(&"CR".into()).unwrap();
    println!("{}", cr_table.to_xml().to_pretty_xml());

    // ---- Executing (the Execute button) ----
    println!("=== booking a domestic trip (Sydney) ===");
    let out = demo
        .book_trip("Eileen Mak", "Sydney", "2002-08-20", "2002-08-27")
        .expect("domestic booking succeeds");
    print_booking(&out);

    println!("\n=== booking an international trip (Hong Kong) ===");
    let out = demo
        .book_trip("Quan Sheng", "Hong Kong", "2002-08-20", "2002-09-01")
        .expect("international booking succeeds");
    print_booking(&out);

    // ---- What the peers did ----
    let metrics = net.metrics();
    println!("\n=== peer-to-peer traffic (per coordinator) ===");
    for node in &metrics.nodes {
        if node.node.as_str().contains(".coord.") {
            println!(
                "  {:40} sent {:3} received {:3}",
                node.node.as_str(),
                node.sent,
                node.received
            );
        }
    }
    let wrapper = metrics.node("travel-planning.wrapper").unwrap();
    println!(
        "  wrapper handled {} messages — coordination ran peer-to-peer, not through it",
        wrapper.handled()
    );
}

fn print_booking(out: &selfserv::wsdl::MessageDoc) {
    let field = |k: &str| out.get_str(k).unwrap_or("—").to_string();
    println!("  flight        : {}", field("flight_confirmation"));
    println!(
        "  flight price  : {}",
        out.get("flight_price")
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
    println!("  insurance     : {}", field("insurance_policy"));
    println!("  accommodation : {}", field("accommodation"));
    println!("  attraction    : {}", field("major_attraction"));
    println!("  car rental    : {}", field("car_confirmation"));
    println!(
        "  elapsed       : {} ms",
        out.get("_elapsed_ms")
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
}
