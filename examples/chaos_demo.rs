//! A composite surviving scheduled chaos: a seeded fault schedule delays
//! coordinator traffic and crashes the preferred provider's host
//! mid-execution, the community fails over to the surviving member, and
//! after the scheduled restart the revived provider serves again.
//!
//! ```text
//! cargo run --release --example chaos_demo           # seed 7
//! cargo run --release --example chaos_demo -- 42     # any other seed
//! ```
//!
//! The same seed always expands to the same fault schedule — rerun with
//! the seed printed below and the identical crash/restart/delay sequence
//! replays (the deterministic engine behind `tests/chaos.rs`).

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, RoundRobin,
};
use selfserv::core::{naming, Deployer, ServiceBackend, ServiceHost, SyntheticService};
use selfserv::net::{
    ChaosConfig, ChaosController, FaultSchedule, KindRule, Network, NetworkConfig, NodeId,
};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let net = Network::new(NetworkConfig::instant());

    // A community of two workers. Alpha is slow enough that the scheduled
    // crash lands while it is serving; beta is the failover target.
    let community = CommunityServer::spawn(
        &net,
        naming::community("Workers").as_str(),
        Community::new("Workers", "chaos demo workers").with_operation(OperationDef::new("run")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            member_timeout: Duration::from_millis(120),
            ..Default::default()
        },
    )
    .expect("community spawns");
    let mut hosts = Vec::new();
    let admin = CommunityClient::connect(&net, "admin", community.node().clone()).unwrap();
    for (id, latency_ms) in [("alpha", 40u64), ("beta", 5)] {
        let node = format!("svc.{id}");
        let backend: Arc<dyn ServiceBackend> =
            Arc::new(SyntheticService::new(id).with_latency(Duration::from_millis(latency_ms)));
        hosts.push(ServiceHost::spawn(&net, node.as_str(), backend).unwrap());
        admin
            .join(&Member {
                id: MemberId(id.to_string()),
                provider: id.to_string(),
                endpoint: NodeId::new(node),
                qos: QosProfile::default(),
            })
            .unwrap();
    }

    // One composite whose single task routes through the community.
    let chart = StatechartBuilder::new("ChaosComposite")
        .variable("payload", ParamType::Str)
        .initial("w")
        .task(
            TaskDef::new("w", "Work")
                .community("Workers", "run")
                .input("payload", "payload")
                .output("served_by", "worker"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "w", "f"))
        .build()
        .unwrap();
    let dep = Deployer::new(&net)
        .deploy(&chart, &HashMap::new())
        .expect("composite deploys");

    // The seeded schedule: light jitter on coordinator traffic, plus a
    // timed crash of alpha's host mid-run and its restart 300 ms in.
    let config = ChaosConfig::default()
        .rule(KindRule::for_kind("coord.").delay(
            0.15,
            Duration::from_millis(1),
            Duration::from_millis(3),
        ))
        .crash(Duration::from_millis(20), "svc.alpha")
        .restart(Duration::from_millis(300), "svc.alpha");
    let schedule = FaultSchedule::sample(seed, config);
    println!("=== chaos schedule (seed {seed}) ===");
    for event in schedule.node_events() {
        println!(
            "  {:?} {} @{}ms",
            event.fault,
            event.node,
            event.at.as_millis()
        );
    }

    net.install_chaos(Arc::clone(&schedule));
    let controller = ChaosController::start(&schedule, Arc::new(net.clone()));
    println!("\n=== executing through the crash window ===");
    let started = Instant::now();
    let mut workers = Vec::new();
    while started.elapsed() < Duration::from_millis(450) {
        let t0 = Instant::now();
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("job")),
                Duration::from_secs(5),
            )
            .expect("failover keeps the composite completing");
        let worker = out.get_str("worker").unwrap_or("?").to_string();
        println!(
            "  +{:3}ms composite completed in {:3}ms, served by {worker}",
            started.elapsed().as_millis(),
            t0.elapsed().as_millis(),
        );
        workers.push(worker);
    }
    controller.stop();
    net.clear_chaos();

    assert!(
        workers.iter().any(|w| w == "beta"),
        "failover to beta never happened"
    );
    println!("\n=== after the scheduled restart ===");
    let mut revived = Vec::new();
    for _ in 0..6 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str("job")),
                Duration::from_secs(5),
            )
            .expect("revived deployment serves");
        revived.push(out.get_str("worker").unwrap_or("?").to_string());
    }
    println!(
        "  6 post-restart executions served by: {}",
        revived.join(", ")
    );
    assert!(
        revived.iter().any(|w| w == "alpha"),
        "alpha never served again after its scheduled restart"
    );
    println!("\nevery execution completed: the crash cost latency (member timeout");
    println!("+ failover), never correctness — and the restart put alpha back in rotation.");
    println!("replay this exact run: cargo run --release --example chaos_demo -- {seed}");

    // Print the full replayable fault log, the same artifact the chaos
    // harness minimizes on a violation.
    println!("\n=== recorded fault events ===");
    for event in schedule.events() {
        println!("  {event}");
    }
    dep.undeploy();
}
