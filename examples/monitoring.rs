//! Execution monitoring: watch a composite-service instance unfold across
//! its distributed coordinators — the platform-side equivalent of the
//! demo's "Execution Result" panel.
//!
//! ```text
//! cargo run --example monitoring
//! ```

use selfserv::core::{
    Deployer, EchoService, ExecutionMonitor, FunctionLibrary, InstanceId, ServiceBackend,
    SyntheticService,
};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::synth;
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let net = Network::new(NetworkConfig::instant());
    let monitor = ExecutionMonitor::spawn(&net, "monitor").expect("monitor spawns");

    // A fork-join pipeline with visible service times, deployed with
    // tracing enabled.
    let sc = synth::ladder(3, 2);
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for (i, name) in sc.referenced_services().into_iter().enumerate() {
        let backend: Arc<dyn ServiceBackend> = if i % 2 == 0 {
            Arc::new(
                SyntheticService::new(name.clone())
                    .with_latency(Duration::from_millis(15 + 10 * (i as u64 % 3))),
            )
        } else {
            Arc::new(EchoService::new(name.clone()))
        };
        backends.insert(name, backend);
    }
    let deployment = Deployer::new(&net)
        .with_functions(FunctionLibrary::new())
        .with_monitor(monitor.node().clone())
        .deploy(&sc, &backends)
        .expect("deploys");

    println!(
        "executing two instances of '{}' with tracing on…\n",
        deployment.composite()
    );
    for i in 0..2 {
        deployment
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("case-{i}"))),
                Duration::from_secs(10),
            )
            .expect("execution succeeds");
    }
    // Traces are fire-and-forget; give the monitor a beat to drain.
    std::thread::sleep(Duration::from_millis(100));

    for instance in monitor.instances() {
        println!("{}", monitor.render_timeline(instance));
    }
    println!("collected {} events total", monitor.event_count());

    // The trace shows the AND-regions of each stage activating together
    // and the stage-1 lanes waiting for the full stage-0 join.
    let first = monitor.trace(InstanceId(1));
    let activations = first
        .iter()
        .filter(|e| e.kind == selfserv::core::TraceKind::Activated)
        .count();
    println!("instance i1 activated {activations} states (3 lanes × 2 stages = 6)");
}
