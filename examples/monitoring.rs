//! Execution monitoring: watch a composite-service instance unfold across
//! its distributed coordinators — the platform-side equivalent of the
//! demo's "Execution Result" panel — and read the same run back through
//! the Prometheus `/metrics` endpoint an operator would scrape.
//!
//! ```text
//! cargo run --example monitoring
//! ```

use selfserv::core::{
    Deployer, EchoService, ExecutionMonitor, FunctionLibrary, InstanceId, MonitorMetrics,
    MonitorOptions, ServiceBackend, SyntheticService,
};
use selfserv::net::{Network, NetworkConfig};
use selfserv::obs::{http_get, parse, MetricsServer, Registry};
use selfserv::statechart::synth;
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let net = Network::new(NetworkConfig::instant());

    // A monitor wired to a metrics registry: every trace it ingests also
    // feeds lifecycle counters and latency histograms, and the registry is
    // served over HTTP exactly as Prometheus would scrape it.
    let registry = Registry::new();
    let metrics = MonitorMetrics::register(&registry, &[("deployment", "demo")]);
    let monitor = ExecutionMonitor::spawn_with(
        &net,
        selfserv::runtime::shared(),
        "monitor",
        MonitorOptions {
            metrics: Some(metrics),
            max_traces: None,
        },
    )
    .expect("monitor spawns");
    let server = MetricsServer::serve(registry, "127.0.0.1:0").expect("metrics endpoint binds");
    println!("serving metrics at http://{}/metrics\n", server.addr());

    // A fork-join pipeline with visible service times, deployed with
    // tracing enabled.
    let sc = synth::ladder(3, 2);
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for (i, name) in sc.referenced_services().into_iter().enumerate() {
        let backend: Arc<dyn ServiceBackend> = if i % 2 == 0 {
            Arc::new(
                SyntheticService::new(name.clone())
                    .with_latency(Duration::from_millis(15 + 10 * (i as u64 % 3))),
            )
        } else {
            Arc::new(EchoService::new(name.clone()))
        };
        backends.insert(name, backend);
    }
    let deployment = Deployer::new(&net)
        .with_functions(FunctionLibrary::new())
        .with_monitor(monitor.node().clone())
        .deploy(&sc, &backends)
        .expect("deploys");

    println!(
        "executing eight instances of '{}' with tracing on…\n",
        deployment.composite()
    );
    for i in 0..8 {
        deployment
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("case-{i}"))),
                Duration::from_secs(10),
            )
            .expect("execution succeeds");
    }
    // Traces are fire-and-forget; give the monitor a beat to drain.
    std::thread::sleep(Duration::from_millis(100));

    for instance in monitor.instances().into_iter().take(2) {
        println!("{}", monitor.render_timeline(instance));
    }
    println!("collected {} events total", monitor.event_count());

    // The trace shows the AND-regions of each stage activating together
    // and the stage-1 lanes waiting for the full stage-0 join.
    let first = monitor.trace(InstanceId(1));
    let activations = first
        .iter()
        .filter(|e| e.kind == selfserv::core::TraceKind::Activated)
        .count();
    println!("instance i1 activated {activations} states (3 lanes × 2 stages = 6)");

    // The same run, queried from the monitor's trace log: monotonic
    // timestamps make per-instance end-to-end latency a subtraction.
    let lat = monitor
        .instance_latency_us(InstanceId(1))
        .expect("finished instance has a latency");
    println!("instance i1 end-to-end latency: {lat} µs");

    // …and scraped over HTTP, the way an external dashboard sees it. The
    // exposition parses back into (name, labels, value) samples; latency
    // histograms export p50/p99/p999 quantiles plus sum and count.
    let text = http_get(server.addr(), "/metrics", Duration::from_secs(2)).expect("scrape");
    let expo = parse::parse(&text).expect("exposition parses");
    expo.validate().expect("exposition is well-formed");
    let demo = [("deployment", "demo")];
    let quantile = |q: &str| {
        expo.value(
            "selfserv_instance_latency_us",
            &[("deployment", "demo"), ("quantile", q)],
        )
        .unwrap_or(0.0)
    };
    println!("\nscraped from /metrics:");
    println!(
        "  instances: {} started, {} finished, {} open",
        expo.value("selfserv_instances_started_total", &demo)
            .unwrap_or(0.0),
        expo.value("selfserv_instances_finished_total", &demo)
            .unwrap_or(0.0),
        expo.value("selfserv_instances_open", &demo).unwrap_or(0.0),
    );
    println!(
        "  instance latency µs: p50 {} / p99 {} / p999 {} over {} samples",
        quantile("0.5"),
        quantile("0.99"),
        quantile("0.999"),
        expo.value("selfserv_instance_latency_us_count", &demo)
            .unwrap_or(0.0),
    );
    println!(
        "  phase latency µs:    p50 {} over {} coordinator phases",
        expo.value(
            "selfserv_phase_latency_us",
            &[("deployment", "demo"), ("quantile", "0.5")],
        )
        .unwrap_or(0.0),
        expo.value("selfserv_phase_latency_us_count", &demo)
            .unwrap_or(0.0),
    );
}
