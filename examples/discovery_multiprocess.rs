//! Multi-process deployment with zero manual wiring: this example spawns
//! **a second OS process** of itself, hands it exactly one seed address,
//! and deploys a composite service whose only task is served by a
//! community living in that other process.
//!
//! ```text
//! cargo run --example discovery_multiprocess
//! ```
//!
//! * The **consumer** (parent process) creates a `TcpTransport` hub, runs
//!   `selfserv-discovery` on it, and re-executes itself as the provider,
//!   passing its discovery listener's address on the command line — the
//!   only deployment knowledge that ever crosses the process boundary.
//! * The **provider** (child process) seeds its own discovery node with
//!   that address. The handshake swaps both registries; gossip keeps them
//!   converged. It then hosts the `Booking` community and a member
//!   service — names the parent learns without any `register_peer` call.
//! * The consumer waits for the community's name to surface, deploys a
//!   composite bound to it, and executes: coordinator (parent) →
//!   community (child) → member (child) → back, every hop a named rpc
//!   across real process boundaries.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, RoundRobin,
};
use selfserv::core::{naming, Deployer, EchoService, ServiceHost};
use selfserv::expr::Value;
use selfserv::net::{NodeId, TcpTransport, Transport};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv::xml::Element;
use selfserv_discovery::{DiscoveryConfig, PeerDiscovery};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const COMMUNITY: &str = "Booking";
const PROVIDER_CTL: &str = "demo.provider-ctl";

fn discovery_config() -> DiscoveryConfig {
    // Demo-friendly cadence: sub-second convergence, visible but quick
    // failure detection.
    DiscoveryConfig::default().with_cadence(Duration::from_millis(50))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--provider") => provider(args[2].parse().expect("seed address argument")),
        _ => consumer(),
    }
}

/// Kills the provider process on drop unless the happy path already
/// reaped it — a consumer panic (e.g. a timed-out wait) must not leave an
/// orphan blocking CI on inherited stdio.
struct ChildGuard(Option<std::process::Child>);

impl ChildGuard {
    /// Hands the child back for a graceful `wait`, disarming the guard.
    fn disarm(mut self) -> std::process::Child {
        self.0.take().expect("guard still armed")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The child process: joins the network through the seed address and
/// hosts the community + member until told to exit.
fn provider(seed: SocketAddr) {
    let hub = TcpTransport::new();
    let _disc = PeerDiscovery::spawn(&hub, discovery_config().with_seed(seed))
        .expect("spawn provider discovery");
    let community = CommunityServer::spawn(
        &hub,
        naming::community(COMMUNITY).as_str(),
        Community::new(COMMUNITY, "multi-process demo community")
            .with_operation(OperationDef::new("book")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig::default(),
    )
    .expect("spawn community");
    let _host = ServiceHost::spawn(
        &hub,
        "svc.bookings",
        Arc::new(EchoService::new(format!(
            "provider-pid-{}",
            std::process::id()
        ))),
    )
    .expect("spawn member host");
    let admin = CommunityClient::connect(&hub, "provider.admin", community.node().clone())
        .expect("connect admin");
    admin
        .join(&Member {
            id: MemberId("m1".into()),
            provider: "demo provider".into(),
            endpoint: NodeId::new("svc.bookings"),
            qos: QosProfile::default(),
        })
        .expect("join member");
    println!("[provider {}] community up, serving", std::process::id());

    // Park on a control endpoint until the consumer says goodbye.
    let ctl = Transport::connect(&hub, NodeId::new(PROVIDER_CTL)).expect("connect ctl");
    loop {
        match ctl.recv() {
            Ok(env) if env.kind == "demo.exit" => {
                println!("[provider {}] exiting", std::process::id());
                return;
            }
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// The parent process: spawns the provider, deploys against its
/// community, executes, shuts everything down.
fn consumer() {
    let hub = TcpTransport::new();
    let disc = PeerDiscovery::spawn(&hub, discovery_config()).expect("spawn consumer discovery");
    println!(
        "[consumer {}] discovery listening on {} — spawning provider process",
        std::process::id(),
        disc.seed_addr()
    );
    let child = ChildGuard(Some(
        std::process::Command::new(std::env::current_exe().expect("own path"))
            .arg("--provider")
            .arg(disc.seed_addr().to_string())
            .spawn()
            .expect("spawn provider process"),
    ));

    // One seed address later, the provider's names gossip in.
    let community_node = naming::community(COMMUNITY);
    assert!(
        disc.wait_until_bound(community_node.as_str(), Duration::from_secs(30)),
        "provider's community never surfaced"
    );
    println!(
        "[consumer {}] learned {} peers: {:?}",
        std::process::id(),
        disc.directory().names().len(),
        disc.directory()
            .names()
            .iter()
            .map(|n| n.as_str().to_string())
            .collect::<Vec<_>>()
    );

    // Deploy a composite whose single task delegates to that community.
    let statechart = StatechartBuilder::new("MultiProcessBooking")
        .variable("payload", ParamType::Str)
        .initial("b")
        .task(
            TaskDef::new("b", "Book")
                .community(COMMUNITY, "book")
                .input("payload", "payload")
                .output("echoed_by", "worker"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "b", "f"))
        .build()
        .expect("valid statechart");
    let dep = Deployer::new(&hub)
        .deploy(&statechart, &HashMap::new())
        .expect("deploy across processes");
    for i in 0..3 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("trip-{i}"))),
                Duration::from_secs(10),
            )
            .expect("cross-process execution");
        println!(
            "[consumer {}] execution {i}: payload={:?} served_by={:?}",
            std::process::id(),
            out.get_str("payload").unwrap_or("?"),
            out.get_str("worker").unwrap_or("?")
        );
        assert_eq!(out.get_str("payload"), Some(format!("trip-{i}").as_str()));
        assert!(out
            .get_str("worker")
            .is_some_and(|w| w.starts_with("provider-pid-")));
    }
    drop(dep);

    // Tell the provider to exit — by name, across the process boundary.
    assert!(disc.wait_until_bound(PROVIDER_CTL, Duration::from_secs(10)));
    let goodbye = Transport::connect(&hub, NodeId::new("consumer.ctl")).expect("connect ctl");
    goodbye
        .send(PROVIDER_CTL, "demo.exit", Element::new("bye"))
        .expect("send exit");
    let status = child.disarm().wait().expect("provider exit status");
    assert!(status.success(), "provider exited cleanly");
    println!(
        "[consumer {}] done — provider exited cleanly",
        std::process::id()
    );
}
