//! The same XML envelopes over real TCP sockets — the platform's protocol
//! is transport-agnostic ("exchanged through Java sockets" in the
//! original).
//!
//! ```text
//! cargo run --example tcp_demo
//! ```

use selfserv::net::tcp::TcpEndpoint;
use selfserv::net::{Envelope, MessageId, NodeId};
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::time::Duration;

fn main() {
    // A "provider" listening on a real socket.
    let provider = TcpEndpoint::bind("127.0.0.1:0").expect("bind provider");
    let provider_addr = provider.addr().to_string();
    println!("provider listening on {provider_addr}");

    let server = std::thread::spawn(move || {
        let request = provider
            .recv_timeout(Duration::from_secs(5))
            .expect("receive invocation");
        println!("provider received {} from {}", request.kind, request.from);
        let input = MessageDoc::from_xml(&request.body).unwrap();
        let reply = MessageDoc::response(input.operation.clone())
            .with("confirmation", Value::str("TCP-0042"))
            .with("echo_city", input.get("city").cloned().unwrap_or(Value::Null));
        // Reply over a fresh connection to the caller's listener.
        let reply_env = Envelope {
            id: MessageId(2),
            from: request.to.clone(),
            to: request.from.clone(),
            kind: "invoke.result".into(),
            correlation: Some(request.id),
            body: reply.to_xml(),
        };
        let caller_addr = request.body.attr("reply_to").unwrap().to_string();
        TcpEndpoint::send_to(&caller_addr, &reply_env).expect("send reply");
    });

    // The "client" side: its own listener for the reply, then one
    // length-prefixed XML frame to the provider.
    let client = TcpEndpoint::bind("127.0.0.1:0").expect("bind client");
    let mut body = MessageDoc::request("bookAccommodation")
        .with("customer", Value::str("Eileen"))
        .with("city", Value::str("Sydney"))
        .to_xml();
    body.set_attr("reply_to", client.addr().to_string());
    let request = Envelope {
        id: MessageId(1),
        from: NodeId::new("tcp.client"),
        to: NodeId::new("tcp.provider"),
        kind: "invoke".into(),
        correlation: None,
        body,
    };
    TcpEndpoint::send_to(&provider_addr, &request).expect("send invocation");

    let reply = client.recv_timeout(Duration::from_secs(5)).expect("receive reply");
    let msg = MessageDoc::from_xml(&reply.body).unwrap();
    println!(
        "client got {} → confirmation={} echo_city={}",
        reply.kind,
        msg.get_str("confirmation").unwrap(),
        msg.get_str("echo_city").unwrap(),
    );
    server.join().unwrap();
    assert_eq!(msg.get_str("confirmation"), Some("TCP-0042"));
    println!("same envelopes, real sockets — transport independence demonstrated.");
}
