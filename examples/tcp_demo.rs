//! The same XML envelopes over real TCP sockets — the platform's protocol
//! is transport-agnostic ("exchanged through Java sockets" in the
//! original).
//!
//! Part 1 drives the raw wire format by hand (length-prefixed XML frames
//! between two listeners). Part 2 runs an *entire composite deployment* —
//! coordinators, wrapper, service hosts — over [`TcpTransport`], the
//! socket implementation of the platform's `Transport` seam.
//!
//! ```text
//! cargo run --example tcp_demo
//! ```

use selfserv::core::{Deployer, EchoService, ServiceBackend};
use selfserv::net::tcp::TcpEndpoint;
use selfserv::net::{Envelope, MessageId, NodeId, TcpTransport, Transport};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    raw_frames_demo();
    platform_over_tcp_demo();
}

/// A two-state composite deployed and executed entirely over TCP sockets.
fn platform_over_tcp_demo() {
    println!("\n--- part 2: a composite service over TcpTransport ---");
    let tcp = TcpTransport::new();
    let statechart = StatechartBuilder::new("Socket Pipeline")
        .variable("item", ParamType::Str)
        .initial("Quote")
        .task(
            TaskDef::new("Quote", "Quote")
                .service("Pricing", "quote")
                .input("item", "item")
                .output("echoed_by", "quoted_by"),
        )
        .task(
            TaskDef::new("Confirm", "Confirm")
                .service("Orders", "confirm")
                .input("item", "item")
                .output("echoed_by", "confirmed_by"),
        )
        .final_state("Done")
        .transition(TransitionDef::new("t1", "Quote", "Confirm"))
        .transition(TransitionDef::new("t2", "Confirm", "Done"))
        .build()
        .expect("well-formed statechart");
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for name in ["Pricing", "Orders"] {
        backends.insert(name.to_string(), Arc::new(EchoService::new(name)));
    }
    let deployment = Deployer::new(&tcp)
        .deploy(&statechart, &backends)
        .expect("deploys");
    for node in tcp.node_names() {
        if let Some(addr) = tcp.addr_of(node.as_str()) {
            println!("  {node:32} listening on {addr}");
        }
    }
    let out = deployment
        .execute(
            MessageDoc::request("execute").with("item", Value::str("coffee beans")),
            Duration::from_secs(10),
        )
        .expect("executes over sockets");
    println!(
        "  executed over sockets → quoted_by={:?} confirmed_by={:?}",
        out.get_str("quoted_by"),
        out.get_str("confirmed_by"),
    );
    assert_eq!(out.get_str("confirmed_by"), Some("Orders"));
    println!("the full coordinator protocol ran over real TCP listeners.");
}

/// The original low-level demo: hand-rolled envelopes over raw frames.
fn raw_frames_demo() {
    println!("--- part 1: raw length-prefixed frames ---");
    // A "provider" listening on a real socket.
    let provider = TcpEndpoint::bind("127.0.0.1:0").expect("bind provider");
    let provider_addr = provider.addr().to_string();
    println!("provider listening on {provider_addr}");

    let server = std::thread::spawn(move || {
        let request = provider
            .recv_timeout(Duration::from_secs(5))
            .expect("receive invocation");
        println!("provider received {} from {}", request.kind, request.from);
        let input = MessageDoc::from_xml(&request.body).unwrap();
        let reply = MessageDoc::response(input.operation.clone())
            .with("confirmation", Value::str("TCP-0042"))
            .with(
                "echo_city",
                input.get("city").cloned().unwrap_or(Value::Null),
            );
        // Reply over a fresh connection to the caller's listener.
        let reply_env = Envelope {
            id: MessageId(2),
            from: request.to.clone(),
            to: request.from.clone(),
            kind: "invoke.result".into(),
            correlation: Some(request.id),
            body: reply.to_xml(),
        };
        let caller_addr = request.body.attr("reply_to").unwrap().to_string();
        TcpEndpoint::send_to(&caller_addr, &reply_env).expect("send reply");
    });

    // The "client" side: its own listener for the reply, then one
    // length-prefixed XML frame to the provider.
    let client = TcpEndpoint::bind("127.0.0.1:0").expect("bind client");
    let mut body = MessageDoc::request("bookAccommodation")
        .with("customer", Value::str("Eileen"))
        .with("city", Value::str("Sydney"))
        .to_xml();
    body.set_attr("reply_to", client.addr().to_string());
    let request = Envelope {
        id: MessageId(1),
        from: NodeId::new("tcp.client"),
        to: NodeId::new("tcp.provider"),
        kind: "invoke".into(),
        correlation: None,
        body,
    };
    TcpEndpoint::send_to(&provider_addr, &request).expect("send invocation");

    let reply = client
        .recv_timeout(Duration::from_secs(5))
        .expect("receive reply");
    let msg = MessageDoc::from_xml(&reply.body).unwrap();
    println!(
        "client got {} → confirmation={} echo_city={}",
        reply.kind,
        msg.get_str("confirmation").unwrap(),
        msg.get_str("echo_city").unwrap(),
    );
    server.join().unwrap();
    assert_eq!(msg.get_str("confirmation"), Some("TCP-0042"));
    println!("same envelopes, real sockets — transport independence demonstrated.");
}
