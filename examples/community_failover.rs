//! Service communities in action: QoS-aware member selection, execution
//! history, and transparent failover when a provider dies mid-run.
//!
//! ```text
//! cargo run --example community_failover
//! ```

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, HistoryAware, Member,
    MemberId, QosProfile,
};
use selfserv::core::{ServiceBackend, ServiceHost, SyntheticService};
use selfserv::net::{Network, NetworkConfig, NodeId};
use selfserv::wsdl::{MessageDoc, OperationDef, Param, ParamType};
use selfserv_expr::Value;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let net = Network::new(NetworkConfig::instant());

    // A community of accommodation providers with very different quality.
    let community = CommunityServer::spawn(
        &net,
        "community.accommodation",
        Community::new("AccommodationBooking", "hotels & hostels").with_operation(
            OperationDef::new("bookAccommodation")
                .with_input(Param::required("customer", ParamType::Str))
                .with_input(Param::required("city", ParamType::Str)),
        ),
        Arc::new(HistoryAware::default()),
        CommunityServerConfig {
            member_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .expect("community spawns");
    let client = CommunityClient::connect(&net, "travel-agent", "community.accommodation").unwrap();

    // Three members: a fast hotel, a slow hostel, and a "liar" that
    // advertises 5 ms but actually takes 80 ms.
    let mut hosts = Vec::new();
    for (id, actual_ms, advertised_ms, rate) in [
        ("cbd-hotel", 10u64, 10.0, 210.0),
        ("bondi-hostel", 60, 60.0, 85.0),
        ("bargain-inn", 80, 5.0, 60.0),
    ] {
        let node = format!("svc.{id}");
        let backend: Arc<dyn ServiceBackend> = Arc::new(
            SyntheticService::new(id)
                .with_latency(Duration::from_millis(actual_ms))
                .with_output("nightly_rate", Value::Float(rate)),
        );
        hosts.push(ServiceHost::spawn(&net, node.as_str(), backend).unwrap());
        client
            .join(&Member {
                id: MemberId(id.to_string()),
                provider: id.to_string(),
                endpoint: NodeId::new(node),
                qos: QosProfile::default()
                    .with_duration_ms(advertised_ms)
                    .with_cost(rate),
            })
            .unwrap();
    }

    let request = MessageDoc::request("bookAccommodation")
        .with("customer", Value::str("Eileen"))
        .with("city", Value::str("Sydney"));

    println!("=== first 10 bookings (history builds up, the liar gets demoted) ===");
    for i in 0..10 {
        let out = client.invoke(&request).expect("booking succeeds");
        println!(
            "  booking {:2} served by {}",
            i + 1,
            out.get_str("served_by").unwrap()
        );
    }
    println!("\n=== member statistics observed by the community ===");
    for (id, stats) in community.history().all() {
        println!(
            "  {:14} completed {:3}  ewma latency {:6.1} ms  success {:.2}",
            id.to_string(),
            stats.completed,
            stats.latency_ewma_ms.unwrap_or(0.0),
            stats.success_ewma,
        );
    }

    // Kill the currently-preferred member: the community fails over.
    println!("\n=== killing svc.bondi-hostel (the current favourite) mid-service ===");
    net.kill(&NodeId::new("svc.bondi-hostel"));
    let mut served = Vec::new();
    for _ in 0..5 {
        let out = client
            .invoke(&request)
            .expect("failover keeps bookings working");
        served.push(out.get_str("served_by").unwrap().to_string());
    }
    println!("  5 more bookings served by: {}", served.join(", "));
    assert!(served.iter().all(|s| s != "bondi-hostel"));
    println!("\nno booking was lost: the community retried with live members,");
    println!("and the timeouts it observed now count against the dead member's history.");
}
