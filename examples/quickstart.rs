//! Quickstart: define a tiny composite service, deploy it peer-to-peer,
//! and execute it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use selfserv::core::{Deployer, EchoService, ServiceBackend};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Define a composite service declaratively, as the service editor
    //    would: quote a price, then either confirm or escalate.
    let statechart = StatechartBuilder::new("Quote And Confirm")
        .variable("item", ParamType::Str)
        .variable("amount", ParamType::Int)
        .initial("Quote")
        .task(
            TaskDef::new("Quote", "Quote Price")
                .service("Pricing", "quote")
                .input("item", "item")
                .input("amount", "amount")
                .output("echoed_by", "quoted_by"),
        )
        .task(
            TaskDef::new("Confirm", "Confirm Order")
                .service("Orders", "confirm")
                .input("item", "item")
                .output("echoed_by", "confirmed_by"),
        )
        .task(
            TaskDef::new("Escalate", "Escalate To Human")
                .service("Helpdesk", "escalate")
                .input("item", "item"),
        )
        .final_state("Done")
        .transition(TransitionDef::new("t1", "Quote", "Confirm").guard("amount <= 100"))
        .transition(TransitionDef::new("t2", "Quote", "Escalate").guard("amount > 100"))
        .transition(TransitionDef::new("t3", "Confirm", "Done"))
        .transition(TransitionDef::new("t4", "Escalate", "Done"))
        .build()
        .expect("well-formed statechart");

    // The editor's XML translation (bottom-right panel of Figure 2).
    println!("--- statechart XML (excerpt) ---");
    let xml = statechart.to_xml().to_pretty_xml();
    for line in xml.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", xml.lines().count());

    // 2. The pool of services: three trivial providers.
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for name in ["Pricing", "Orders", "Helpdesk"] {
        backends.insert(name.to_string(), Arc::new(EchoService::new(name)));
    }

    // 3. Deploy: routing tables are generated from the statechart and one
    //    coordinator is spawned per state, plus the composite wrapper.
    let deployment = Deployer::new(&net)
        .deploy(&statechart, &backends)
        .expect("deploys");
    println!(
        "deployed '{}' with {} coordinators",
        deployment.composite(),
        deployment.coordinator_count()
    );
    println!(
        "routing plan: {} precondition alternatives, {} notification routes\n",
        deployment.plan().total_preconditions(),
        deployment.plan().total_notifications()
    );

    // 4. Execute — the small order takes the Confirm branch…
    let out = deployment
        .execute(
            MessageDoc::request("execute")
                .with("item", Value::str("coffee beans"))
                .with("amount", Value::Int(12)),
            Duration::from_secs(5),
        )
        .expect("small order succeeds");
    println!(
        "small order  → confirmed_by = {:?}",
        out.get_str("confirmed_by")
    );
    assert!(out.get_str("confirmed_by").is_some());

    // …and the big one escalates.
    let out = deployment
        .execute(
            MessageDoc::request("execute")
                .with("item", Value::str("espresso machines"))
                .with("amount", Value::Int(5000)),
            Duration::from_secs(5),
        )
        .expect("big order succeeds");
    println!(
        "large order → confirmed_by = {:?} (escalated instead)",
        out.get_str("confirmed_by")
    );
    assert!(out.get_str("confirmed_by").is_none());

    // 5. The fabric counted every message each peer handled.
    let metrics = net.metrics();
    println!("\n--- per-node message counts ---");
    for node in &metrics.nodes {
        if node.handled() > 0 && !node.node.as_str().contains('~') {
            println!(
                "{:40} sent {:3}  received {:3}",
                node.node.as_str(),
                node.sent,
                node.received
            );
        }
    }
}
