//! Cross-process community replication: two replicas of ONE community run
//! in **two separate OS processes** with no shared membership state —
//! every join and leave crosses the process boundary as gossiped,
//! versioned membership rows.
//!
//! ```text
//! cargo run --example community_multiprocess
//! ```
//!
//! * The **parent** process hosts replica 0 (`community.Jobs`) on its own
//!   hub, joins a member through it, and re-executes itself as the child,
//!   handing over exactly one discovery seed address.
//! * The **child** process hosts replica 1 (`Jobs.r1`) plus its own
//!   member. It joins that member through its *local* replica, then polls
//!   its own table until the parent's member surfaces — a row it can only
//!   have received via membership gossip, because nothing else connects
//!   the two tables.
//! * The parent symmetrically waits until the child's member appears in
//!   replica 0, then deploys a composite and executes it until both
//!   members — one per process — have served.
//! * Finally the parent *leaves* its member and tells the child to exit;
//!   the child refuses to exit cleanly until it has seen the tombstone,
//!   so a successful child exit status proves deletions converge too.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, ReplicationConfig, RoundRobin,
};
use selfserv::core::{naming, Deployer, EchoService, ServiceHost};
use selfserv::expr::Value;
use selfserv::net::{NodeId, TcpTransport, Transport};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv::xml::Element;
use selfserv_discovery::{DiscoveryConfig, DiscoveryHandle, PeerDiscovery};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const COMMUNITY: &str = "Jobs";
const CHILD_CTL: &str = "xproc.child-ctl";

fn discovery_config() -> DiscoveryConfig {
    DiscoveryConfig::default().with_cadence(Duration::from_millis(50))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--replica") => child(args[2].parse().expect("seed address argument")),
        _ => parent(),
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// One replica of the community, pinned to this process's hub. The
/// discovery directory is the only way a replica learns where its
/// siblings live — there is no static wiring across the processes.
fn spawn_replica(
    hub: &TcpTransport,
    disc: &DiscoveryHandle,
    index: usize,
) -> selfserv::community::CommunityServerHandle {
    CommunityServer::spawn_replica_on(
        hub,
        selfserv::runtime::shared(),
        naming::community(COMMUNITY).as_str(),
        index,
        2,
        Community::new(COMMUNITY, "cross-process demo community")
            .with_operation(OperationDef::new("work")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            replication: ReplicationConfig {
                directory: Some(disc.directory().clone()),
                gossip_interval: Some(Duration::from_millis(50)),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("replica spawns")
}

/// Kills the child process on drop unless the happy path already reaped
/// it — a parent panic must not leave an orphan holding stdio open.
struct ChildGuard(Option<std::process::Child>);

impl ChildGuard {
    fn disarm(mut self) -> std::process::Child {
        self.0.take().expect("guard still armed")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The child process: hosts replica 1 and its own member, observes the
/// parent's membership through gossip alone.
fn child(seed: SocketAddr) {
    let pid = std::process::id();
    let hub = TcpTransport::new();
    let disc = PeerDiscovery::spawn(&hub, discovery_config().with_seed(seed))
        .expect("spawn child discovery");
    let replica = spawn_replica(&hub, &disc, 1);
    let _host = ServiceHost::spawn(
        &hub,
        "svc.jobs-child",
        Arc::new(EchoService::new(format!("child-pid-{pid}"))),
    )
    .expect("spawn child member host");
    // Join through the LOCAL replica — the parent only ever hears about
    // this row as a gossiped membership delta.
    let admin = CommunityClient::connect(&hub, "child.admin", replica.node().clone())
        .expect("connect child admin");
    admin
        .join(&Member {
            id: MemberId("child".into()),
            provider: format!("child process {pid}"),
            endpoint: NodeId::new("svc.jobs-child"),
            qos: QosProfile::default(),
        })
        .expect("join child member");

    // The parent joined ITS member through replica 0; that row reaching
    // this table is the cross-process gossip observation.
    assert!(
        wait_until(Duration::from_secs(30), || {
            replica
                .membership()
                .read()
                .member(&MemberId("parent".into()))
                .is_some()
        }),
        "child never observed the parent's member via gossip"
    );
    println!("[child {pid}] observed parent's member via membership gossip");

    // Park until the parent says goodbye — but refuse to exit before the
    // parent's LEAVE has tombstoned its member here, so our clean exit
    // status is the parent's proof that deletions converge.
    let ctl = Transport::connect(&hub, NodeId::new(CHILD_CTL)).expect("connect ctl");
    loop {
        match ctl.recv() {
            Ok(env) if env.kind == "xproc.exit" => {
                assert!(
                    wait_until(Duration::from_secs(10), || {
                        replica
                            .membership()
                            .read()
                            .member(&MemberId("parent".into()))
                            .is_none()
                    }),
                    "parent's leave never reached the child as a tombstone"
                );
                println!("[child {pid}] parent's leave tombstoned here — exiting");
                return;
            }
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// The parent process: hosts replica 0, drives the demo.
fn parent() {
    let pid = std::process::id();
    let hub = TcpTransport::new();
    let disc = PeerDiscovery::spawn(&hub, discovery_config()).expect("spawn parent discovery");
    let replica = spawn_replica(&hub, &disc, 0);
    let _host = ServiceHost::spawn(
        &hub,
        "svc.jobs-parent",
        Arc::new(EchoService::new(format!("parent-pid-{pid}"))),
    )
    .expect("spawn parent member host");
    let admin = CommunityClient::connect(&hub, "parent.admin", replica.node().clone())
        .expect("connect parent admin");
    let parent_member = Member {
        id: MemberId("parent".into()),
        provider: format!("parent process {pid}"),
        endpoint: NodeId::new("svc.jobs-parent"),
        qos: QosProfile::default(),
    };
    admin.join(&parent_member).expect("join parent member");

    println!("[parent {pid}] replica 0 up — spawning replica 1 as a separate OS process");
    let child = ChildGuard(Some(
        std::process::Command::new(std::env::current_exe().expect("own path"))
            .arg("--replica")
            .arg(disc.seed_addr().to_string())
            .spawn()
            .expect("spawn child process"),
    ));

    // The child joins its member through replica 1 over there; the row
    // lands here as a gossiped delta — replica 0 never saw that join rpc.
    assert!(
        wait_until(Duration::from_secs(30), || replica.member_count() == 2),
        "parent never observed the child's member via gossip"
    );
    println!("[parent {pid}] observed child's member via membership gossip");
    // The deployer's replica probe must also find Jobs.r1 across the
    // process boundary before composites route to it.
    let r1 = naming::community_replica(COMMUNITY, 1);
    assert!(
        disc.wait_until_bound(r1.as_str(), Duration::from_secs(30)),
        "replica 1's name never surfaced via discovery"
    );

    let statechart = StatechartBuilder::new("CrossProcessJobs")
        .variable("payload", ParamType::Str)
        .initial("w")
        .task(
            TaskDef::new("w", "Work")
                .community(COMMUNITY, "work")
                .input("payload", "payload")
                .output("echoed_by", "worker"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "w", "f"))
        .build()
        .expect("valid statechart");
    let dep = Deployer::new(&hub)
        .deploy(&statechart, &HashMap::new())
        .expect("deploy against the replicated community");

    // Round-robin over a converged table must rotate across BOTH
    // members — i.e. both OS processes serve — within a few executions.
    let mut served = std::collections::HashSet::new();
    for i in 0..16 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("job-{i}"))),
                Duration::from_secs(10),
            )
            .expect("cross-process execution");
        let worker = out.get_str("worker").unwrap_or("?").to_string();
        println!("[parent {pid}] job-{i} served_by={worker}");
        served.insert(worker);
        if served.len() == 2 {
            break;
        }
    }
    assert!(
        served.iter().any(|w| w.starts_with("parent-pid-"))
            && served.iter().any(|w| w.starts_with("child-pid-")),
        "both processes' members should serve, saw only {served:?}"
    );
    drop(dep);

    // Leave through replica 0, then ask the child to exit: it only exits
    // cleanly once the tombstone has gossiped over.
    admin.leave(&parent_member.id).expect("leave parent member");
    assert!(disc.wait_until_bound(CHILD_CTL, Duration::from_secs(10)));
    let goodbye = Transport::connect(&hub, NodeId::new("parent.ctl")).expect("connect ctl");
    goodbye
        .send(CHILD_CTL, "xproc.exit", Element::new("bye"))
        .expect("send exit");
    let status = child.disarm().wait().expect("child exit status");
    assert!(status.success(), "child exited cleanly");
    println!("[parent {pid}] done — both directions of membership gossip verified");
}
