//! The paper's core architectural claim, measured: peer-to-peer
//! orchestration spreads coordination load that a centralized engine
//! concentrates on itself.
//!
//! ```text
//! cargo run --release --example p2p_vs_centralized
//! ```

use selfserv::core::{
    naming, CentralConfig, CentralizedOrchestrator, Deployer, EchoService, FunctionLibrary,
    ServiceBackend, ServiceHost,
};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::synth;
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const INSTANCES: usize = 100;

fn main() {
    println!("sequence(N), {INSTANCES} instances — messages through the hottest node\n");
    println!(
        "{:>4} | {:>18} | {:>18} | ratio",
        "N", "p2p hottest coord", "central engine"
    );
    println!("{}", "-".repeat(60));
    for n in [2usize, 4, 8, 16, 32] {
        let p2p = run_p2p(n);
        let central = run_central(n);
        println!(
            "{n:>4} | {:>18} | {:>18} | {:.1}x",
            p2p,
            central,
            central as f64 / p2p.max(1) as f64
        );
    }
    println!(
        "\nthe centralized engine handles ~2 messages per component per instance;\n\
         the hottest SELF-SERV coordinator stays flat regardless of N — the paper's claim."
    );
}

fn input(i: usize) -> MessageDoc {
    MessageDoc::request("execute").with("payload", Value::str(format!("case-{i}")))
}

fn run_p2p(n: usize) -> u64 {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::sequence(n);
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for i in 0..n {
        let name = synth::synth_service_name(i);
        backends.insert(name.clone(), Arc::new(EchoService::new(name)));
    }
    let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
    net.reset_metrics();
    for i in 0..INSTANCES {
        dep.execute(input(i), Duration::from_secs(30)).unwrap();
    }
    net.metrics()
        .busiest_matching(|name| name.contains(".coord."))
        .map(|m| m.handled())
        .unwrap_or(0)
}

fn run_central(n: usize) -> u64 {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::sequence(n);
    let mut hosts = Vec::new();
    let mut service_nodes = HashMap::new();
    for i in 0..n {
        let name = synth::synth_service_name(i);
        let node = naming::service_host(&name);
        hosts.push(
            ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new(name.clone())))
                .unwrap(),
        );
        service_nodes.insert(name, node);
    }
    let central = CentralizedOrchestrator::spawn(
        &net,
        CentralConfig {
            statechart: sc.clone(),
            functions: FunctionLibrary::new(),
            service_nodes,
            community_nodes: HashMap::new(),
        },
    )
    .unwrap();
    net.reset_metrics();
    for i in 0..INSTANCES {
        central.execute(input(i), Duration::from_secs(30)).unwrap();
    }
    net.metrics()
        .busiest_matching(|name| name.ends_with(".central"))
        .map(|m| m.handled())
        .unwrap_or(0)
}
