//! Scaling in-flight invocations: 10,000 composite instances all awaiting
//! a slow provider at once, on a 4-worker executor, with zero threads
//! parked for the waits.
//!
//! ```text
//! cargo run --release --example inflight_scale
//! ```
//!
//! The continuation-passing coordinator dispatches each state task with
//! `NodeCtx::rpc_async` and resumes when the completion event arrives, so
//! the number of concurrently *blocked* invocations no longer appears in
//! the process's thread budget. This example deploys one community-task
//! composite, submits 10k instances without blocking the caller
//! (`Deployment::submit`), holds every one of them inside a deliberately
//! slow community, prints the thread count while they wait, then releases
//! the backlog and collects all 10k results.

use selfserv::core::Deployer;
use selfserv::net::{Envelope, Network, NetworkConfig};
use selfserv::runtime::{Executor, Flow, NodeCtx, NodeLogic, TimerToken};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const INSTANCES: usize = 10_000;
const WORKERS: usize = 4;

/// A provider community that answers every invocation `HOLD` after it
/// arrived — event-driven, so the *provider* parks no threads either.
struct SlowCommunity {
    holding: Vec<Envelope>,
    arrived: Arc<AtomicUsize>,
}

const HOLD: Duration = Duration::from_millis(1500);
const FLUSH: TimerToken = TimerToken(1);

impl NodeLogic for SlowCommunity {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind == "community.invoke" {
            if self.holding.is_empty() {
                ctx.set_timer(HOLD, FLUSH);
            }
            self.holding.push(env);
            if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == INSTANCES {
                // The full backlog is parked here at once; answer it.
                self.flush(ctx);
            }
        }
        Flow::Continue
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerToken) -> Flow {
        self.flush(ctx); // safety flush for stragglers
        Flow::Continue
    }
}

impl SlowCommunity {
    fn flush(&mut self, ctx: &NodeCtx<'_>) {
        for request in self.holding.drain(..) {
            let op = MessageDoc::from_xml(&request.body)
                .map(|m| m.operation)
                .unwrap_or_else(|_| "op".to_string());
            let response = MessageDoc::response(op).with("served_by", Value::str("SlowFarm"));
            let _ = ctx
                .endpoint()
                .reply(&request, "community.result", response.to_xml());
        }
    }
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

fn main() {
    let exec = Executor::new(WORKERS);
    let net = Network::new(NetworkConfig::instant());

    let arrived = Arc::new(AtomicUsize::new(0));
    let community = exec.handle().spawn_node(
        net.connect("community.slowfarm")
            .expect("community connects"),
        SlowCommunity {
            holding: Vec::new(),
            arrived: Arc::clone(&arrived),
        },
    );

    let statechart = StatechartBuilder::new("Bulk Order")
        .variable("order", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("Place")
        .task(
            TaskDef::new("Place", "Place Order")
                .community("slowfarm", "place")
                .input("order", "order")
                .output("served_by", "served_by"),
        )
        .final_state("Done")
        .transition(TransitionDef::new("t", "Place", "Done"))
        .build()
        .expect("well-formed chart");

    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_secs(60);
    let dep = deployer
        .deploy(&statechart, &HashMap::new())
        .expect("deploys");

    println!(
        "deployed '{}' on a {WORKERS}-worker executor; threads now: {}",
        dep.composite(),
        thread_count()
    );

    // Fire 10k instances from this one thread — submit never blocks.
    let t0 = Instant::now();
    for i in 0..INSTANCES {
        dep.submit(MessageDoc::request("execute").with("order", Value::str(format!("o-{i}"))))
            .expect("submit accepted");
    }
    println!("submitted {INSTANCES} instances in {:?}", t0.elapsed());

    // Wait until every instance is parked inside the slow community.
    while arrived.load(Ordering::SeqCst) < INSTANCES {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "{} invocations simultaneously awaiting a reply; threads: {} \
         (workers {WORKERS} + timer + transport/harness — nothing scales with instances)",
        arrived.load(Ordering::SeqCst),
        thread_count()
    );

    // The community flushes after its hold; collect all 10k completions.
    let mut ok = 0usize;
    while ok < INSTANCES {
        let (_, outcome) = dep
            .collect_result(Duration::from_secs(30))
            .expect("completion arrives");
        outcome.expect("instance completes");
        ok += 1;
    }
    println!(
        "collected {ok} results in {:?} total; peak threads: {}",
        t0.elapsed(),
        thread_count()
    );

    dep.undeploy();
    community.stop();
    exec.shutdown();
}
