//! P2P (routing-table) execution and the centralized interpreter must
//! produce the same results on the same charts — the decentralization is
//! an implementation strategy, not a semantics change.

use selfserv::core::{
    naming, CentralConfig, CentralizedOrchestrator, Deployer, EchoService, FunctionLibrary,
    ServiceBackend, ServiceHost,
};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::{synth, Statechart};
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn run_both(sc: &Statechart, input: MessageDoc) -> (MessageDoc, MessageDoc) {
    // P2P.
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for name in sc.referenced_services() {
        backends.insert(name.clone(), Arc::new(EchoService::new(name)));
    }
    let dep = Deployer::new(&net).deploy(sc, &backends).unwrap();
    let p2p = dep.execute(input.clone(), Duration::from_secs(20)).unwrap();

    // Central.
    let net = Network::new(NetworkConfig::instant());
    let mut hosts = Vec::new();
    let mut service_nodes = HashMap::new();
    for name in sc.referenced_services() {
        let node = naming::service_host(&name);
        hosts.push(
            ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new(name.clone())))
                .unwrap(),
        );
        service_nodes.insert(name, node);
    }
    let central = CentralizedOrchestrator::spawn(
        &net,
        CentralConfig {
            statechart: sc.clone(),
            functions: FunctionLibrary::new(),
            service_nodes,
            community_nodes: HashMap::new(),
        },
    )
    .unwrap();
    let cen = central.execute(input, Duration::from_secs(20)).unwrap();
    (p2p, cen)
}

/// Compares the domain variables (ignoring runtime bookkeeping params).
fn assert_same_outcome(a: &MessageDoc, b: &MessageDoc) {
    let domain = |m: &MessageDoc| -> Vec<(String, String)> {
        m.iter()
            .filter(|(k, _)| !k.starts_with('_') && *k != "served_by" && *k != "echoed_by")
            .map(|(k, v)| (k.to_string(), v.to_lexical()))
            .collect()
    };
    assert_eq!(domain(a), domain(b));
}

#[test]
fn sequences_agree() {
    for n in [1usize, 3, 7] {
        let sc = synth::sequence(n);
        let input = MessageDoc::request("execute").with("payload", Value::str("data"));
        let (p, c) = run_both(&sc, input);
        assert_same_outcome(&p, &c);
    }
}

#[test]
fn xor_branches_agree() {
    for branch in 0..4i64 {
        let sc = synth::xor_choice(4);
        let input = MessageDoc::request("execute")
            .with("payload", Value::str("data"))
            .with("branch", Value::Int(branch));
        let (p, c) = run_both(&sc, input);
        assert_same_outcome(&p, &c);
    }
}

#[test]
fn parallel_and_nested_agree() {
    for sc in [synth::parallel(4), synth::nested(3), synth::ladder(3, 2)] {
        let input = MessageDoc::request("execute").with("payload", Value::str("data"));
        let (p, c) = run_both(&sc, input);
        assert_same_outcome(&p, &c);
    }
}

#[test]
fn guarded_arithmetic_chart_agrees() {
    use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv::wsdl::ParamType;
    // A chart with actions and guards over computed values.
    let sc = StatechartBuilder::new("Arith")
        .variable("n", ParamType::Int)
        .variable("total", ParamType::Int)
        .initial("start")
        .choice("start", "Start")
        .task(
            TaskDef::new("small", "Small")
                .service("SvcA", "run")
                .input("x", "n"),
        )
        .task(
            TaskDef::new("big", "Big")
                .service("SvcB", "run")
                .input("x", "n"),
        )
        .final_state("f")
        .transition(
            TransitionDef::new("t1", "start", "small")
                .guard("n * 2 <= 10")
                .action("total", "n * 2"),
        )
        .transition(
            TransitionDef::new("t2", "start", "big")
                .guard("n * 2 > 10")
                .action("total", "n * n"),
        )
        .transition(TransitionDef::new("t3", "small", "f"))
        .transition(TransitionDef::new("t4", "big", "f"))
        .build()
        .unwrap();
    for n in [2i64, 5, 6, 100] {
        let input = MessageDoc::request("execute").with("n", Value::Int(n));
        let (p, c) = run_both(&sc, input);
        assert_same_outcome(&p, &c);
        let expected = if n * 2 <= 10 { n * 2 } else { n * n };
        assert_eq!(p.get("total"), Some(&Value::Int(expected)));
    }
}
