//! Deep structural cases for the routing cascade: compounds inside
//! concurrents inside compounds, and completion cascades that cross two
//! final states with conjoined guards.

use selfserv::core::{Deployer, EchoService, ServiceBackend, SyntheticService};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn echo_backends(names: &[&str]) -> HashMap<String, Arc<dyn ServiceBackend>> {
    names
        .iter()
        .map(|n| {
            (
                n.to_string(),
                Arc::new(EchoService::new(*n)) as Arc<dyn ServiceBackend>,
            )
        })
        .collect()
}

/// concurrent(P) { region0: compound(C) { t1 → f }, region1: t2 → f } → t3
#[test]
fn compound_inside_concurrent_executes() {
    let sc = StatechartBuilder::new("MixedNest")
        .variable("payload", ParamType::Str)
        .initial("P")
        .concurrent("P", "Parallel", vec![("left", "C"), ("right", "t2")])
        .compound_in("P", 0, "C", "Left Compound", "t1")
        .task_in(
            "C",
            TaskDef::new("t1", "Inner")
                .service("S1", "run")
                .input("p", "payload"),
        )
        .final_in("C", 0, "cf")
        .final_in("P", 0, "lf")
        .task_in_region(
            "P",
            1,
            TaskDef::new("t2", "Right")
                .service("S2", "run")
                .input("p", "payload"),
        )
        .final_in("P", 1, "rf")
        .task(
            TaskDef::new("t3", "After")
                .service("S3", "run")
                .input("p", "payload")
                .output("echoed_by", "last"),
        )
        .final_state("F")
        .transition(TransitionDef::new("a", "t1", "cf"))
        .transition(TransitionDef::new("b", "C", "lf"))
        .transition(TransitionDef::new("c", "t2", "rf"))
        .transition(TransitionDef::new("d", "P", "t3"))
        .transition(TransitionDef::new("e", "t3", "F"))
        .build()
        .unwrap();
    assert!(sc.validate().is_ok(), "{:?}", sc.validate().issues);
    let plan = selfserv::routing::generate(&sc).unwrap();
    assert!(selfserv::routing::verify_plan(&plan).is_empty());

    let net = Network::new(NetworkConfig::instant());
    let dep = Deployer::new(&net)
        .deploy(&sc, &echo_backends(&["S1", "S2", "S3"]))
        .unwrap();
    let out = dep
        .execute(
            MessageDoc::request("execute").with("payload", Value::str("x")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_str("last"), Some("S3"));
}

/// A completion cascade crossing two final states with a guard chain:
/// task w inside compound Inner inside compound Outer; Inner→Outer-final is
/// guarded, so the wrapper's precondition carries the conjoined condition.
#[test]
fn double_final_cascade_with_guard_chain() {
    let build = |skip_tail: &str| {
        StatechartBuilder::new(format!("Cascade{skip_tail}"))
            .variable("mode", ParamType::Str)
            .initial("Outer")
            .compound("Outer", "Outer", "Inner")
            .compound_in("Outer", 0, "Inner", "Inner", "w")
            .task_in(
                "Inner",
                TaskDef::new("w", "Work")
                    .service("W", "run")
                    .input("m", "mode"),
            )
            .final_in("Inner", 0, "inf")
            .task_in(
                "Outer",
                TaskDef::new("extra", "Extra")
                    .service("X", "run")
                    .output("echoed_by", "extra_by"),
            )
            .final_in("Outer", 0, "outf")
            .task(
                TaskDef::new("tail", "Tail")
                    .service("T", "run")
                    .output("echoed_by", "tail_by"),
            )
            .final_state("F")
            .transition(TransitionDef::new("t1", "w", "inf"))
            // Inner completed: either jump straight to Outer's final
            // (cascade crosses two finals) or detour via `extra`.
            .transition(TransitionDef::new("t2", "Inner", "outf").guard("mode == \"fast\""))
            .transition(TransitionDef::new("t3", "Inner", "extra").guard("mode != \"fast\""))
            .transition(TransitionDef::new("t4", "extra", "outf"))
            // Outer completed: either run the tail or finish directly.
            .transition(TransitionDef::new("t5", "Outer", "tail").guard("mode != \"skip\""))
            .transition(TransitionDef::new("t6", "Outer", "F").guard("mode == \"skip\""))
            .transition(TransitionDef::new("t7", "tail", "F"))
            .build()
            .unwrap()
    };
    let sc = build("A");
    let plan = selfserv::routing::generate(&sc).unwrap();
    assert!(
        selfserv::routing::verify_plan(&plan).is_empty(),
        "{:?}",
        selfserv::routing::verify_plan(&plan)
    );
    // The tail's precondition via the fast path must carry the conjoined
    // guard chain (Inner-done fast AND Outer-exit non-skip).
    let tail_table = plan.table(&"tail".into()).unwrap();
    assert!(
        tail_table
            .preconditions
            .iter()
            .any(|p| p.condition.as_ref().is_some_and(|c| {
                let s = c.to_string();
                s.contains("fast") && s.contains("skip")
            })),
        "{tail_table:?}"
    );

    let net = Network::new(NetworkConfig::instant());
    let dep = Deployer::new(&net)
        .deploy(&sc, &echo_backends(&["W", "X", "T"]))
        .unwrap();
    // fast: w → (cascade) → tail, no extra.
    let out = dep
        .execute(
            MessageDoc::request("execute").with("mode", Value::str("fast")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_str("tail_by"), Some("T"));
    assert!(out.get("extra_by").is_none());
    // slow: w → extra → tail.
    let out = dep
        .execute(
            MessageDoc::request("execute").with("mode", Value::str("scenic")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_str("extra_by"), Some("X"));
    assert_eq!(out.get_str("tail_by"), Some("T"));
    // skip: w (fast=false → extra) → outer-final with skip → straight to F.
    let out = dep
        .execute(
            MessageDoc::request("execute").with("mode", Value::str("skip")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(out.get_str("extra_by"), Some("X"));
    assert!(out.get("tail_by").is_none());
}

/// Concurrent directly inside a concurrent region: the inner AND-join must
/// resolve before the outer one.
#[test]
fn concurrent_inside_concurrent() {
    let sc = StatechartBuilder::new("NestedAnd")
        .variable("payload", ParamType::Str)
        .initial("P")
        .concurrent("P", "Outer", vec![("a", "Q"), ("b", "tb")])
        .concurrent_in("P", 0, "Q", "Inner", vec![("qa", "t1"), ("qb", "t2")])
        .task_in_region("Q", 0, TaskDef::new("t1", "A1").service("S1", "run"))
        .final_in("Q", 0, "qf1")
        .task_in_region("Q", 1, TaskDef::new("t2", "A2").service("S2", "run"))
        .final_in("Q", 1, "qf2")
        .final_in("P", 0, "pfa")
        .task_in_region("P", 1, TaskDef::new("tb", "B").service("S3", "run"))
        .final_in("P", 1, "pfb")
        .final_state("F")
        .transition(TransitionDef::new("x1", "t1", "qf1"))
        .transition(TransitionDef::new("x2", "t2", "qf2"))
        .transition(TransitionDef::new("x3", "Q", "pfa"))
        .transition(TransitionDef::new("x4", "tb", "pfb"))
        .transition(TransitionDef::new("x5", "P", "F"))
        .build()
        .unwrap();
    let plan = selfserv::routing::generate(&sc).unwrap();
    assert!(selfserv::routing::verify_plan(&plan).is_empty());
    // The wrapper must wait for BOTH inner-region labels plus the outer
    // sibling region.
    let fin = &plan.wrapper.finish_alternatives;
    assert!(fin.iter().any(|p| p.labels.len() == 3), "{fin:?}");

    let net = Network::new(NetworkConfig::instant());
    let counters: Vec<Arc<SyntheticService>> = (1..=3)
        .map(|i| Arc::new(SyntheticService::new(format!("S{i}"))))
        .collect();
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for (i, c) in counters.iter().enumerate() {
        backends.insert(
            format!("S{}", i + 1),
            Arc::clone(c) as Arc<dyn ServiceBackend>,
        );
    }
    let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
    dep.execute(
        MessageDoc::request("execute").with("payload", Value::str("p")),
        Duration::from_secs(10),
    )
    .unwrap();
    for c in &counters {
        assert_eq!(c.invocation_count(), 1);
    }
}
