//! End-to-end integration of the full Section-4 demo: registry, community,
//! P2P deployment, both guard branches, metrics.

use selfserv::core::{AccommodationChoice, TravelDemo, TravelDemoConfig};
use selfserv::net::{Network, NetworkConfig};
use selfserv::registry::{FindQuery, RegistryClient};
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::time::Duration;

#[test]
fn domestic_near_accommodation_skips_car_rental() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(&net, TravelDemoConfig::default()).unwrap();
    let out = demo
        .book_trip("Eileen", "Sydney", "2002-08-20", "2002-08-27")
        .unwrap();
    assert!(out
        .get_str("flight_confirmation")
        .unwrap()
        .starts_with("QF-"));
    assert_eq!(out.get_str("accommodation"), Some("Sydney CBD Hotel"));
    assert!(out.get("car_confirmation").is_none());
    assert!(out.get("insurance_policy").is_none());
}

#[test]
fn international_far_accommodation_rents_car_and_insures() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(
        &net,
        TravelDemoConfig {
            accommodation: AccommodationChoice::FarFromAttraction,
            ..Default::default()
        },
    )
    .unwrap();
    let out = demo
        .book_trip("Quan", "Hong Kong", "2002-08-20", "2002-09-01")
        .unwrap();
    assert!(out
        .get_str("flight_confirmation")
        .unwrap()
        .starts_with("GW-"));
    assert!(out.get_str("insurance_policy").unwrap().starts_with("POL-"));
    assert!(out.get_str("car_confirmation").unwrap().starts_with("CAR-"));
    assert_eq!(out.get_str("accommodation"), Some("Bondi Hostel"));
}

#[test]
fn composite_discoverable_and_executable_via_remote_registry_lookup() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(&net, TravelDemoConfig::default()).unwrap();
    // A remote end user searches the registry over the fabric (Figure 3's
    // Search panel), then executes via the discovered binding.
    let client = RegistryClient::connect(&net, "end-user", "uddi").unwrap();
    let hits = client
        .find(&FindQuery::any().service_name("Travel Planning"))
        .unwrap();
    assert_eq!(hits.len(), 1);
    let endpoint = hits[0]
        .description
        .primary_binding()
        .unwrap()
        .endpoint
        .clone();
    assert_eq!(endpoint, demo.deployment.wrapper_node().as_str());

    let user = net.connect("end-user-exec").unwrap();
    let input = MessageDoc::request("execute")
        .with("customer", Value::str("Boualem"))
        .with("destination", Value::str("Melbourne"))
        .with("departure_date", Value::str("2002-09-01"))
        .with("return_date", Value::str("2002-09-08"));
    let reply = user
        .rpc(
            endpoint.as_str(),
            "wrapper.execute",
            input.to_xml(),
            Duration::from_secs(10),
        )
        .unwrap();
    let out = MessageDoc::from_xml(&reply.body).unwrap();
    assert!(!out.is_fault(), "{:?}", out.fault_reason());
    assert_eq!(
        out.get_str("major_attraction"),
        Some("Queen Victoria Market")
    );
}

#[test]
fn concurrent_bookings_do_not_interfere() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(
        &net,
        TravelDemoConfig {
            accommodation: AccommodationChoice::Mixed,
            ..Default::default()
        },
    )
    .unwrap();
    let demo = std::sync::Arc::new(demo);
    let mut handles = Vec::new();
    for i in 0..12 {
        let demo = std::sync::Arc::clone(&demo);
        handles.push(std::thread::spawn(move || {
            let destination = if i % 2 == 0 { "Sydney" } else { "Hong Kong" };
            let customer = format!("Customer{i}");
            let out = demo
                .book_trip(&customer, destination, "2002-08-20", "2002-08-27")
                .unwrap();
            // Data flow isolation: each instance's inputs survive intact.
            assert_eq!(out.get_str("customer"), Some(customer.as_str()));
            let expect_prefix = if i % 2 == 0 { "QF-" } else { "GW-" };
            assert!(out
                .get_str("flight_confirmation")
                .unwrap()
                .starts_with(expect_prefix));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn coordination_is_peer_to_peer_not_through_wrapper() {
    let net = Network::new(NetworkConfig::instant());
    let demo = TravelDemo::launch(&net, TravelDemoConfig::default()).unwrap();
    net.reset_metrics();
    demo.book_trip("Eileen", "Sydney", "2002-08-20", "2002-08-27")
        .unwrap();
    let m = net.metrics();
    // The wrapper receives exactly: the execute request + the two region
    // completion notifications that feed its AND-join finish alternative
    // (near() holds, so CR is skipped and the wrapper itself joins).
    let wrapper = m.node("travel-planning.wrapper").unwrap();
    assert_eq!(wrapper.received, 3, "{wrapper:?}");
    // Coordinators exchanged completion notifications directly.
    let coord_traffic: u64 = m
        .nodes
        .iter()
        .filter(|n| n.node.as_str().contains(".coord."))
        .map(|n| n.sent)
        .sum();
    assert!(
        coord_traffic >= 5,
        "expected P2P notifications, got {coord_traffic}"
    );
}

#[test]
fn travel_works_over_lossy_lan_with_latency() {
    // A LAN with latency (no loss — the protocol has no retransmission,
    // like the original's raw sockets).
    let net = Network::new(NetworkConfig::lan());
    let demo = TravelDemo::launch(
        &net,
        TravelDemoConfig {
            service_latency: Duration::from_millis(2),
            ..Default::default()
        },
    )
    .unwrap();
    let out = demo
        .book_trip("Eileen", "Sydney", "2002-08-20", "2002-08-27")
        .unwrap();
    assert!(out.get("_elapsed_ms").is_some());
}

#[test]
fn monitored_travel_run_produces_a_complete_trace() {
    use selfserv::core::{Deployer, ExecutionMonitor, FunctionLibrary, ServiceBackend, TraceKind};
    use selfserv::statechart::travel;
    use std::collections::HashMap;
    use std::sync::Arc;

    let net = Network::new(NetworkConfig::instant());
    let monitor = ExecutionMonitor::spawn(&net, "monitor").unwrap();
    // Deploy the travel chart manually (no community — use a direct
    // accommodation backend) so the monitor hook can be exercised without
    // the full demo.
    let sc = {
        // Rebind AB to a direct service for this test.
        let mut sc = travel::travel_statechart();
        let ab = sc.state_str("AB").unwrap().clone();
        let mut ab2 = ab;
        if let selfserv::statechart::StateKind::Task(spec) = &mut ab2.kind {
            spec.binding = selfserv::statechart::ServiceBinding::Service {
                service: "DirectAccommodation".into(),
                operation: "bookAccommodation".into(),
            };
        }
        sc.insert_state(ab2);
        sc
    };
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    use selfserv::core::travel_backends::*;
    backends.insert(
        travel::services::DOMESTIC_FLIGHT.into(),
        Arc::new(FlightBookingService::domestic(Duration::ZERO)),
    );
    backends.insert(
        travel::services::INTERNATIONAL_FLIGHT.into(),
        Arc::new(FlightBookingService::international(Duration::ZERO)),
    );
    backends.insert(
        travel::services::TRAVEL_INSURANCE.into(),
        Arc::new(InsuranceService::new(Duration::ZERO)),
    );
    backends.insert(
        travel::services::ATTRACTION_SEARCH.into(),
        Arc::new(AttractionSearchService::new(Duration::ZERO)),
    );
    backends.insert(
        travel::services::CAR_RENTAL.into(),
        Arc::new(CarRentalService::new(Duration::ZERO)),
    );
    backends.insert(
        "DirectAccommodation".into(),
        Arc::new(AccommodationService::new(
            "Direct",
            "Bondi Hostel",
            85.0,
            Duration::ZERO,
        )),
    );
    let dep = Deployer::new(&net)
        .with_functions(FunctionLibrary::travel())
        .with_monitor(monitor.node().clone())
        .deploy(&sc, &backends)
        .unwrap();
    let out = dep
        .execute(
            MessageDoc::request("execute")
                .with("customer", Value::str("Eileen"))
                .with("destination", Value::str("Sydney"))
                .with("departure_date", Value::str("2002-08-20"))
                .with("return_date", Value::str("2002-08-27")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(
        out.get_str("car_confirmation").is_some(),
        "Bondi is far → CR runs"
    );
    std::thread::sleep(Duration::from_millis(100));

    let instance = monitor.instances()[0];
    let trace = monitor.trace(instance);
    let activated: Vec<&str> = trace
        .iter()
        .filter(|e| e.kind == TraceKind::Activated)
        .map(|e| e.participant.as_str())
        .collect();
    // Domestic branch via Bondi: FC, DFB, AB, AS, CR all activate; the
    // international states never do.
    for expected in ["FC", "DFB", "AB", "AS", "CR"] {
        assert!(
            activated.contains(&expected),
            "{expected} missing from {activated:?}"
        );
    }
    assert!(!activated.contains(&"IFB"));
    assert!(!activated.contains(&"TI"));
    // Lifecycle events bracket the run.
    assert!(trace.iter().any(|e| e.kind == TraceKind::InstanceStarted));
    assert!(trace.iter().any(|e| e.kind == TraceKind::InstanceFinished));
    // Every activation has a matching completion.
    let completed = trace
        .iter()
        .filter(|e| e.kind == TraceKind::Completed)
        .count();
    assert_eq!(completed, activated.len());
}
