//! Scale acceptance for the shared worker-pool node runtime: a
//! 256-composite deployment (512 platform nodes) runs on a fixed-size
//! 4-worker executor with an OS thread count independent of node count,
//! and every invocation completes with byte-identical outputs to the
//! thread-per-node seed path.
//!
//! Under the old model this deployment alone would hold 512 parked
//! threads; here the whole process stays within pool + timer + transient
//! blocking compensation + harness threads.
//!
//! Kept as a single `#[test]` so the libtest harness doesn't run sibling
//! tests on extra threads while we count `/proc/self/status`.

use selfserv::core::{Deployer, Deployment, EchoService, ServiceBackend};
use selfserv::net::{Network, NetworkConfig};
use selfserv::runtime::Executor;
use selfserv::statechart::{Statechart, StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::normalized;

const COMPOSITES: usize = 256;
const WORKERS: usize = 4;

/// Current OS thread count of this process (0 when /proc is unavailable —
/// the count assertions are then skipped, the functional ones are not).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

/// One single-task composite, uniquely named per index.
fn chart(i: usize) -> Statechart {
    StatechartBuilder::new(format!("Scale {i}"))
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .service("Echo", "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .expect("well-formed chart")
}

/// The exact response document the thread-per-node seed path produced for
/// this workload (instance `i<n>` on each composite's own wrapper, inputs
/// echoed back, `echoed_by` captured into `served_by`).
fn expected_output(instance: u64, payload: &str) -> String {
    format!(
        "<message operation=\"execute\" kind=\"response\">\
         <param name=\"_instance\" type=\"string\">i{instance}</param>\
         <param name=\"payload\" type=\"string\">{payload}</param>\
         <param name=\"served_by\" type=\"string\">Echo</param>\
         </message>"
    )
}

#[test]
fn deploy_256_composites_on_4_workers_with_bounded_threads() {
    let baseline = thread_count();

    let exec = Executor::new(WORKERS);
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Echo".to_string(), Arc::new(EchoService::new("Echo")));

    let deployments: Vec<Deployment> = (0..COMPOSITES)
        .map(|i| {
            Deployer::new(&net)
                .with_executor(exec.handle())
                .deploy(&chart(i), &backends)
                .expect("deploys")
        })
        .collect();
    // 256 wrappers + 256 coordinators are live platform nodes...
    assert_eq!(
        net.node_names().len(),
        2 * COMPOSITES,
        "wrapper + coordinator per composite"
    );
    // ...yet the process gained only the pool (workers + timer thread);
    // nothing scales with node count. Generous slack for harness threads.
    if baseline > 0 {
        let after_deploy = thread_count();
        assert!(
            after_deploy <= baseline + WORKERS + 1 + 4,
            "idle nodes must not own threads: {baseline} -> {after_deploy}"
        );
    }

    // Execute every composite: sequentially for half, then a concurrent
    // burst for the other half (8 client threads), checking outputs are
    // byte-identical to the thread-per-node seed path throughout.
    let mut peak = 0usize;
    for (i, dep) in deployments.iter().enumerate().take(COMPOSITES / 2) {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))),
                Duration::from_secs(20),
            )
            .expect("executes");
        assert_eq!(normalized(&out), expected_output(1, &format!("p{i}")));
        peak = peak.max(thread_count());
    }
    let deployments = Arc::new(deployments);
    std::thread::scope(|s| {
        for t in 0..8 {
            let deployments = Arc::clone(&deployments);
            s.spawn(move || {
                let mut idx = COMPOSITES / 2 + t;
                while idx < COMPOSITES {
                    let out = deployments[idx]
                        .execute(
                            MessageDoc::request("execute")
                                .with("payload", Value::str(format!("p{idx}"))),
                            Duration::from_secs(20),
                        )
                        .expect("concurrent execute completes");
                    assert_eq!(normalized(&out), expected_output(1, &format!("p{idx}")));
                    idx += 8;
                }
            });
        }
    });
    peak = peak.max(thread_count());

    if baseline > 0 {
        // Peak budget: pool + timer + transient blocking compensation
        // (bounded by concurrent blocking sections: the in-flight
        // invocations plus our 8 client threads) — two orders of magnitude
        // under the 512 threads the seed model would hold here.
        assert!(
            peak <= baseline + WORKERS + 1 + 32,
            "thread peak {peak} exceeds pool + compensation budget (baseline {baseline})"
        );
        assert!(
            peak < 2 * COMPOSITES,
            "thread count must not scale with node count"
        );
        // After the load stops, compensation retires back toward the base
        // pool (lazy, one idle tick at a time).
        let t0 = Instant::now();
        let mut settled = thread_count();
        while settled > baseline + WORKERS + 1 + 4 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(50));
            settled = thread_count();
        }
        assert!(
            settled <= baseline + WORKERS + 1 + 4,
            "compensation must retire after the burst: {baseline} -> {settled}"
        );
    }

    // Tear everything down; the names free and the executor drains.
    for dep in Arc::try_unwrap(deployments).expect("sole owner") {
        dep.undeploy();
    }
    assert_eq!(net.node_names().len(), 0, "all nodes freed");
    exec.shutdown();
}
