//! Scale acceptance for the shared worker-pool node runtime:
//!
//! * `deploy_256_composites_on_4_workers_with_bounded_threads` — node
//!   *count* is thread-independent: a 256-composite deployment (512
//!   platform nodes) runs on a fixed-size 4-worker executor with an OS
//!   thread count independent of node count, outputs byte-identical to
//!   the thread-per-node seed path.
//! * `thousands_of_inflight_invocations_block_zero_workers` — in-flight
//!   invocation count is thread-independent too: 2048 instances all
//!   simultaneously awaiting a slow backend reply on the same 4-worker
//!   executor, with zero blocked workers and an OS thread count that does
//!   not scale with the number of awaiting instances (the
//!   continuation-passing coordinator; under the blocking model this
//!   would park ~2048 compensation threads). Outputs stay byte-identical
//!   to the blocking path's goldens.
//! * `real_community_server_parks_2048_delegations_without_threads` —
//!   same shape through the *real* community server: 2048 instances'
//!   delegations each held open across two chained rpcs (coordinator →
//!   community server → member) with zero blocked workers, and both
//!   `in_flight_rpcs` and the community's delegation gauge draining to
//!   zero after release (nothing leaks).
//!
//! The tests count `/proc/self/status` threads, so they serialize on a
//! shared lock (libtest would otherwise run them concurrently and each
//! would see the other's pool) and re-read their baseline after acquiring
//! it.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, RoundRobin,
};
use selfserv::core::{Deployer, Deployment, EchoService, ServiceBackend};
use selfserv::net::{Envelope, MessageId, Network, NetworkConfig, NodeId};
use selfserv::runtime::{Executor, Flow, NodeCtx, NodeLogic};
use selfserv::statechart::{Statechart, StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv::xml::Element;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod common;
use common::normalized;

const COMPOSITES: usize = 256;
const WORKERS: usize = 4;

/// Serializes the thread-counting tests (see module docs).
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Current OS thread count of this process (0 when /proc is unavailable —
/// the count assertions are then skipped, the functional ones are not).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

/// One single-task composite, uniquely named per index.
fn chart(i: usize) -> Statechart {
    StatechartBuilder::new(format!("Scale {i}"))
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .service("Echo", "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .expect("well-formed chart")
}

/// The exact response document the thread-per-node seed path produced for
/// this workload (instance `i<n>` on each composite's own wrapper, inputs
/// echoed back, `echoed_by` captured into `served_by`).
fn expected_output(instance: u64, payload: &str) -> String {
    format!(
        "<message operation=\"execute\" kind=\"response\">\
         <param name=\"_instance\" type=\"string\">i{instance}</param>\
         <param name=\"payload\" type=\"string\">{payload}</param>\
         <param name=\"served_by\" type=\"string\">Echo</param>\
         </message>"
    )
}

#[test]
fn deploy_256_composites_on_4_workers_with_bounded_threads() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();

    let exec = Executor::new(WORKERS);
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Echo".to_string(), Arc::new(EchoService::new("Echo")));

    let deployments: Vec<Deployment> = (0..COMPOSITES)
        .map(|i| {
            Deployer::new(&net)
                .with_executor(exec.handle())
                .deploy(&chart(i), &backends)
                .expect("deploys")
        })
        .collect();
    // 256 wrappers + 256 coordinators are live platform nodes...
    assert_eq!(
        net.node_names().len(),
        2 * COMPOSITES,
        "wrapper + coordinator per composite"
    );
    // ...yet the process gained only the pool (workers + timer thread);
    // nothing scales with node count. Generous slack for harness threads.
    if baseline > 0 {
        let after_deploy = thread_count();
        assert!(
            after_deploy <= baseline + WORKERS + 1 + 4,
            "idle nodes must not own threads: {baseline} -> {after_deploy}"
        );
    }

    // Execute every composite: sequentially for half, then a concurrent
    // burst for the other half (8 client threads), checking outputs are
    // byte-identical to the thread-per-node seed path throughout.
    let mut peak = 0usize;
    for (i, dep) in deployments.iter().enumerate().take(COMPOSITES / 2) {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))),
                Duration::from_secs(20),
            )
            .expect("executes");
        assert_eq!(normalized(&out), expected_output(1, &format!("p{i}")));
        peak = peak.max(thread_count());
    }
    let deployments = Arc::new(deployments);
    std::thread::scope(|s| {
        for t in 0..8 {
            let deployments = Arc::clone(&deployments);
            s.spawn(move || {
                let mut idx = COMPOSITES / 2 + t;
                while idx < COMPOSITES {
                    let out = deployments[idx]
                        .execute(
                            MessageDoc::request("execute")
                                .with("payload", Value::str(format!("p{idx}"))),
                            Duration::from_secs(20),
                        )
                        .expect("concurrent execute completes");
                    assert_eq!(normalized(&out), expected_output(1, &format!("p{idx}")));
                    idx += 8;
                }
            });
        }
    });
    peak = peak.max(thread_count());

    if baseline > 0 {
        // Peak budget: pool + timer + transient blocking compensation
        // (bounded by concurrent blocking sections: the in-flight
        // invocations plus our 8 client threads) — two orders of magnitude
        // under the 512 threads the seed model would hold here.
        assert!(
            peak <= baseline + WORKERS + 1 + 32,
            "thread peak {peak} exceeds pool + compensation budget (baseline {baseline})"
        );
        assert!(
            peak < 2 * COMPOSITES,
            "thread count must not scale with node count"
        );
        // After the load stops, compensation retires back toward the base
        // pool (lazy, one idle tick at a time).
        let t0 = Instant::now();
        let mut settled = thread_count();
        while settled > baseline + WORKERS + 1 + 4 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(50));
            settled = thread_count();
        }
        assert!(
            settled <= baseline + WORKERS + 1 + 4,
            "compensation must retire after the burst: {baseline} -> {settled}"
        );
    }

    // Tear everything down; the names free and the executor drains.
    for dep in Arc::try_unwrap(deployments).expect("sole owner") {
        dep.undeploy();
    }
    assert_eq!(net.node_names().len(), 0, "all nodes freed");
    exec.shutdown();
}

/// How many instances the in-flight test holds blocked at once (the
/// acceptance floor is 2048).
const INFLIGHT: usize = 2048;

/// A responder node that gates its replies: requests of `invoke_kind`
/// stash until the test sends `release`, so the test controls exactly
/// when all awaiting instances are simultaneously blocked. Pure
/// `NodeLogic` — the responder itself parks no thread either. Stands in
/// for a whole community (`community.invoke`/`community.result`) in one
/// test and for a community *member* (`invoke`/`invoke.result`, behind
/// the real community server) in the other.
struct GatedResponder {
    invoke_kind: &'static str,
    result_kind: &'static str,
    stashed: Vec<Envelope>,
    stash_count: Arc<AtomicUsize>,
    released: bool,
}

impl GatedResponder {
    fn new(
        invoke_kind: &'static str,
        result_kind: &'static str,
        stash_count: Arc<AtomicUsize>,
    ) -> GatedResponder {
        GatedResponder {
            invoke_kind,
            result_kind,
            stashed: Vec::new(),
            stash_count,
            released: false,
        }
    }

    fn reply(&self, ctx: &NodeCtx<'_>, request: &Envelope) {
        let op = MessageDoc::from_xml(&request.body)
            .map(|m| m.operation)
            .unwrap_or_else(|_| "op".to_string());
        // Same response shape as the blocking-path EchoService workload:
        // the coordinator captures `echoed_by` into `served_by`.
        let response = MessageDoc::response(op).with("echoed_by", Value::str("Echo"));
        let _ = ctx
            .endpoint()
            .reply(request, self.result_kind, response.to_xml());
    }
}

impl NodeLogic for GatedResponder {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) -> Flow {
        if env.kind == self.invoke_kind {
            if self.released {
                self.reply(ctx, &env);
            } else {
                self.stashed.push(env);
                self.stash_count.fetch_add(1, Ordering::SeqCst);
            }
        } else if env.kind == "release" {
            self.released = true;
            for request in std::mem::take(&mut self.stashed) {
                self.reply(ctx, &request);
            }
        }
        Flow::Continue
    }
}

/// One community-task composite: `s0` delegates `op` to `community`.
fn inflight_chart(name: &str, community: &str) -> Statechart {
    StatechartBuilder::new(name)
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .community(community, "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .expect("well-formed chart")
}

#[test]
fn thousands_of_inflight_invocations_block_zero_workers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();

    let exec = Executor::new(WORKERS);
    let net = Network::new(NetworkConfig::instant());

    // The gated community must be connected before deploy-time binding
    // resolution sees it.
    let stash_count = Arc::new(AtomicUsize::new(0));
    let community = exec.handle().spawn_node(
        net.connect("community.slow").expect("community connects"),
        GatedResponder::new(
            "community.invoke",
            "community.result",
            Arc::clone(&stash_count),
        ),
    );

    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_secs(120); // nobody times out mid-test
    let dep = deployer
        .deploy(&inflight_chart("Inflight", "slow"), &HashMap::new())
        .expect("deploys");

    // Fire every instance without blocking anything: one submitting
    // thread, zero threads waiting on replies.
    let mut expect: HashMap<MessageId, (u64, String)> = HashMap::new();
    for i in 0..INFLIGHT {
        let payload = format!("p{i}");
        let id = dep
            .submit(MessageDoc::request("execute").with("payload", Value::str(&payload)))
            .expect("submit accepted");
        // One client sender delivers FIFO, so the wrapper numbers
        // instances in submit order — the same ids the blocking path
        // produced for this workload.
        expect.insert(id, (i as u64 + 1, payload));
    }

    // Wait until every single instance is simultaneously parked inside
    // the community, i.e. 2048 invocations are in flight at once.
    let t0 = Instant::now();
    while stash_count.load(Ordering::SeqCst) < INFLIGHT && t0.elapsed() < Duration::from_secs(60) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        stash_count.load(Ordering::SeqCst),
        INFLIGHT,
        "all instances reached the backend"
    );

    // The acceptance claim: N≫workers instances awaiting replies cost no
    // threads. The pool is exactly its configured size, no worker is in a
    // blocking section, and the process thread count is independent of
    // INFLIGHT (under the blocking coordinator this point would hold
    // ~2048 parked compensation threads).
    assert_eq!(exec.handle().live_workers(), WORKERS, "no compensation");
    assert_eq!(exec.handle().blocked_workers(), 0, "no blocked workers");
    if baseline > 0 {
        let awaiting = thread_count();
        assert!(
            awaiting <= baseline + WORKERS + 1 + 8,
            "2048 in-flight invocations must not own threads: {baseline} -> {awaiting}"
        );
        assert!(
            awaiting < INFLIGHT / 4,
            "thread count must not scale with in-flight invocations"
        );
    }

    // Release the backend and collect every completion, checking each
    // output byte-identical to the blocking path's golden for this
    // workload.
    net.connect("release-client")
        .expect("release client connects")
        .send("community.slow", "release", Element::new("go"))
        .expect("release accepted");
    let mut collected = 0usize;
    while collected < INFLIGHT {
        let (id, outcome) = dep
            .collect_result(Duration::from_secs(60))
            .expect("completion arrives");
        let out = outcome.expect("instance completes cleanly");
        let (instance, payload) = expect.remove(&id).expect("known submission");
        assert_eq!(normalized(&out), expected_output(instance, &payload));
        collected += 1;
    }
    assert!(expect.is_empty(), "every submission completed exactly once");

    dep.undeploy();
    community.stop();
    exec.shutdown();
}

#[test]
fn real_community_server_parks_2048_delegations_without_threads() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = thread_count();

    let exec = Executor::new(WORKERS);
    let net = Network::new(NetworkConfig::instant());

    // The real community server — the continuation-passing delegation
    // path — fronting one gated member: every instance's invocation is
    // held open across *two* chained rpcs (coordinator → community,
    // community → member) with nobody blocking anywhere.
    let stash_count = Arc::new(AtomicUsize::new(0));
    let member = exec.handle().spawn_node(
        net.connect("svc.gated-member").expect("member connects"),
        GatedResponder::new("invoke", "invoke.result", Arc::clone(&stash_count)),
    );
    let community = CommunityServer::spawn_on(
        &net,
        &exec.handle(),
        "community.gated",
        Community::new("Gated", "").with_operation(OperationDef::new("op")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            member_timeout: Duration::from_secs(120), // nobody times out mid-test
            ..Default::default()
        },
    )
    .expect("community spawns");
    let admin =
        CommunityClient::connect(&net, "admin", community.node().clone()).expect("admin connects");
    admin
        .join(&Member {
            id: MemberId("gated".into()),
            provider: "gated".into(),
            endpoint: NodeId::new("svc.gated-member"),
            qos: QosProfile::default(),
        })
        .expect("member joins");

    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_secs(120);
    let dep = deployer
        .deploy(
            &inflight_chart("InflightCommunity", "gated"),
            &HashMap::new(),
        )
        .expect("deploys");

    let mut expect: HashMap<MessageId, (u64, String)> = HashMap::new();
    for i in 0..INFLIGHT {
        let payload = format!("p{i}");
        let id = dep
            .submit(MessageDoc::request("execute").with("payload", Value::str(&payload)))
            .expect("submit accepted");
        expect.insert(id, (i as u64 + 1, payload));
    }

    // Wait until every delegation has traversed the community server and
    // parked inside the member.
    let t0 = Instant::now();
    while stash_count.load(Ordering::SeqCst) < INFLIGHT && t0.elapsed() < Duration::from_secs(120) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        stash_count.load(Ordering::SeqCst),
        INFLIGHT,
        "every delegation reached the member"
    );
    assert_eq!(
        community.in_flight_delegations(),
        INFLIGHT,
        "the community server tracks every open delegation"
    );

    // The tentpole claim: 2048 coordinator→community rpcs plus 2048
    // community→member rpcs are simultaneously open, the pool is exactly
    // its configured size, and not one worker is blocked — the old
    // delegate() loop would have parked a compensation thread per
    // delegation here.
    assert_eq!(exec.handle().live_workers(), WORKERS, "no compensation");
    assert_eq!(exec.handle().blocked_workers(), 0, "no blocked workers");
    assert_eq!(
        exec.handle().in_flight_rpcs(),
        2 * INFLIGHT,
        "one open rpc per hop per instance"
    );
    if baseline > 0 {
        let awaiting = thread_count();
        assert!(
            awaiting <= baseline + WORKERS + 1 + 8,
            "2048 open delegations must not own threads: {baseline} -> {awaiting}"
        );
    }

    // Release the member; every instance completes byte-identical to the
    // blocking path's golden for this workload.
    net.connect("release-client")
        .expect("release client connects")
        .send("svc.gated-member", "release", Element::new("go"))
        .expect("release accepted");
    let mut collected = 0usize;
    while collected < INFLIGHT {
        let (id, outcome) = dep
            .collect_result(Duration::from_secs(60))
            .expect("completion arrives");
        let out = outcome.expect("instance completes cleanly");
        let (instance, payload) = expect.remove(&id).expect("known submission");
        assert_eq!(normalized(&out), expected_output(instance, &payload));
        collected += 1;
    }
    assert!(expect.is_empty(), "every submission completed exactly once");

    // Nothing leaked: both rpc hops unwound and the community's gauge is
    // back to zero.
    assert_eq!(exec.handle().in_flight_rpcs(), 0, "rpcs drained to zero");
    assert_eq!(community.in_flight_delegations(), 0, "delegations drained");

    dep.undeploy();
    community.stop();
    member.stop();
    exec.shutdown();
}
