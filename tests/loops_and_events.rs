//! Cyclic statecharts (retry loops) and external ECA events — the parts of
//! the statechart formalism beyond plain DAG workflows.

use selfserv::core::{Deployer, EchoService, ServiceBackend, SyntheticService};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// attempt-until-limit loop: Work → Check → (back to Work | Done).
fn retry_chart(limit: i64) -> selfserv::statechart::Statechart {
    StatechartBuilder::new(format!("Retry{limit}"))
        .variable("attempts", ParamType::Int)
        .variable_init("attempts", ParamType::Int, Value::Int(0))
        .initial("work")
        .task(
            TaskDef::new("work", "Work")
                .service("Worker", "run")
                .input("n", "attempts"),
        )
        .choice("check", "Check")
        .final_state("done")
        .transition(TransitionDef::new("t1", "work", "check").action("attempts", "attempts + 1"))
        .transition(
            TransitionDef::new("t_retry", "check", "work").guard(format!("attempts < {limit}")),
        )
        .transition(
            TransitionDef::new("t_done", "check", "done").guard(format!("attempts >= {limit}")),
        )
        .build()
        .unwrap()
}

#[test]
fn retry_loop_runs_the_task_repeatedly() {
    let net = Network::new(NetworkConfig::instant());
    let worker = Arc::new(SyntheticService::new("Worker"));
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert(
        "Worker".into(),
        Arc::clone(&worker) as Arc<dyn ServiceBackend>,
    );
    let dep = Deployer::new(&net)
        .deploy(&retry_chart(4), &backends)
        .unwrap();
    let out = dep
        .execute(MessageDoc::request("execute"), Duration::from_secs(10))
        .unwrap();
    assert_eq!(out.get("attempts"), Some(&Value::Int(4)));
    assert_eq!(worker.invocation_count(), 4);
}

#[test]
fn loop_labels_are_consumed_so_reentry_is_clean() {
    // Two instances through the same loop must not steal each other's
    // notifications.
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Worker".into(), Arc::new(EchoService::new("Worker")));
    let dep = Arc::new(
        Deployer::new(&net)
            .deploy(&retry_chart(3), &backends)
            .unwrap(),
    );
    let mut handles = Vec::new();
    for _ in 0..4 {
        let dep = Arc::clone(&dep);
        handles.push(std::thread::spawn(move || {
            let out = dep
                .execute(MessageDoc::request("execute"), Duration::from_secs(10))
                .unwrap();
            assert_eq!(out.get("attempts"), Some(&Value::Int(3)));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn loops_agree_between_p2p_and_central() {
    use selfserv::core::{
        naming, CentralConfig, CentralizedOrchestrator, FunctionLibrary, ServiceHost,
    };
    let sc = retry_chart(5);
    // P2P.
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Worker".into(), Arc::new(EchoService::new("Worker")));
    let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
    let p2p = dep
        .execute(MessageDoc::request("execute"), Duration::from_secs(10))
        .unwrap();
    // Central.
    let net = Network::new(NetworkConfig::instant());
    let node = naming::service_host("Worker");
    let _host =
        ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new("Worker"))).unwrap();
    let central = CentralizedOrchestrator::spawn(
        &net,
        CentralConfig {
            statechart: sc,
            functions: FunctionLibrary::new(),
            service_nodes: HashMap::from([("Worker".to_string(), node)]),
            community_nodes: HashMap::new(),
        },
    )
    .unwrap();
    let cen = central
        .execute(MessageDoc::request("execute"), Duration::from_secs(10))
        .unwrap();
    assert_eq!(p2p.get("attempts"), cen.get("attempts"));
}

#[test]
fn event_gated_transition_waits_for_external_event() {
    // prepare → (on 'approved') → ship: the ship state must not start
    // until the event is raised, even though prepare completed.
    let net = Network::new(NetworkConfig::instant());
    let sc = StatechartBuilder::new("Approval")
        .variable("order", ParamType::Str)
        .initial("prepare")
        .task(
            TaskDef::new("prepare", "Prepare")
                .service("Prep", "run")
                .input("o", "order"),
        )
        .task(
            TaskDef::new("ship", "Ship")
                .service("Ship", "run")
                .input("o", "order"),
        )
        .final_state("done")
        .transition(TransitionDef::new("t1", "prepare", "ship").event("approved"))
        .transition(TransitionDef::new("t2", "ship", "done"))
        .build()
        .unwrap();
    let ship_counter = Arc::new(SyntheticService::new("Ship"));
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Prep".into(), Arc::new(EchoService::new("Prep")));
    backends.insert(
        "Ship".into(),
        Arc::clone(&ship_counter) as Arc<dyn ServiceBackend>,
    );
    let dep = Arc::new(Deployer::new(&net).deploy(&sc, &backends).unwrap());

    let dep2 = Arc::clone(&dep);
    let exec = std::thread::spawn(move || {
        dep2.execute(
            MessageDoc::request("execute").with("order", Value::str("o-1")),
            Duration::from_secs(10),
        )
    });
    // Give prepare time to complete; ship must still be waiting.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        ship_counter.invocation_count(),
        0,
        "ship ran before approval"
    );
    // Raise the event: the instance completes.
    dep.raise_event("approved", None);
    let out = exec.join().unwrap().unwrap();
    assert_eq!(ship_counter.invocation_count(), 1);
    assert_eq!(out.get_str("order"), Some("o-1"));
}

#[test]
fn unraised_event_stalls_the_instance() {
    let net = Network::new(NetworkConfig::instant());
    let sc = StatechartBuilder::new("NeverApproved")
        .variable("order", ParamType::Str)
        .initial("prepare")
        .task(TaskDef::new("prepare", "Prepare").service("Prep", "run"))
        .task(TaskDef::new("ship", "Ship").service("Ship", "run"))
        .final_state("done")
        .transition(TransitionDef::new("t1", "prepare", "ship").event("approved"))
        .transition(TransitionDef::new("t2", "ship", "done"))
        .build()
        .unwrap();
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Prep".into(), Arc::new(EchoService::new("Prep")));
    backends.insert("Ship".into(), Arc::new(EchoService::new("Ship")));
    let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
    let err = dep
        .execute(MessageDoc::request("execute"), Duration::from_millis(400))
        .unwrap_err();
    assert!(matches!(err, selfserv::core::ExecError::Timeout));
}
