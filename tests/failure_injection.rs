//! Failure injection across the stack: dead coordinators, dead central
//! engines, community member failures, partitions.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, RoundRobin,
};
use selfserv::core::{
    naming, CentralConfig, CentralizedOrchestrator, Deployer, EchoService, FailingService,
    FunctionLibrary, ServiceBackend, ServiceHost,
};
use selfserv::net::{Network, NetworkConfig, NodeId};
use selfserv::statechart::synth;
use selfserv::wsdl::{MessageDoc, OperationDef};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn backends(n: usize) -> HashMap<String, Arc<dyn ServiceBackend>> {
    let mut map: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for i in 0..n {
        let name = synth::synth_service_name(i);
        map.insert(name.clone(), Arc::new(EchoService::new(name)));
    }
    map
}

fn input(i: usize) -> MessageDoc {
    MessageDoc::request("execute")
        .with("payload", Value::str(format!("p{i}")))
        .with("branch", Value::Int((i % 3) as i64))
}

#[test]
fn dead_coordinator_stalls_only_instances_that_need_it() {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::xor_choice(3);
    let dep = Deployer::new(&net).deploy(&sc, &backends(3)).unwrap();
    // Kill the branch-2 coordinator.
    net.kill(&naming::coordinator(&sc.name, &"s2".into()));
    let mut ok = 0;
    let mut timed_out = 0;
    for i in 0..9 {
        match dep.execute(input(i), Duration::from_millis(600)) {
            Ok(_) => ok += 1,
            Err(selfserv::core::ExecError::Timeout) => timed_out += 1,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    // branch = i % 3; branch 2 (i = 2, 5, 8) needs the dead coordinator.
    assert_eq!(ok, 6);
    assert_eq!(timed_out, 3);
}

#[test]
fn dead_central_engine_kills_everything() {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::sequence(3);
    let mut hosts = Vec::new();
    let mut service_nodes = HashMap::new();
    for i in 0..3 {
        let name = synth::synth_service_name(i);
        let node = naming::service_host(&name);
        hosts.push(
            ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new(name.clone())))
                .unwrap(),
        );
        service_nodes.insert(name, node);
    }
    let central = CentralizedOrchestrator::spawn(
        &net,
        CentralConfig {
            statechart: sc,
            functions: FunctionLibrary::new(),
            service_nodes,
            community_nodes: HashMap::new(),
        },
    )
    .unwrap();
    central.execute(input(0), Duration::from_secs(5)).unwrap();
    net.kill(central.node());
    for i in 0..4 {
        let err = central
            .execute(input(i), Duration::from_millis(300))
            .unwrap_err();
        assert!(
            matches!(err, selfserv::core::ExecError::Timeout),
            "central dead → everything times out, got {err}"
        );
    }
}

#[test]
fn revived_coordinator_serves_new_instances() {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::sequence(2);
    let dep = Deployer::new(&net).deploy(&sc, &backends(2)).unwrap();
    let victim = naming::coordinator(&sc.name, &"s1".into());
    net.kill(&victim);
    assert!(dep.execute(input(0), Duration::from_millis(300)).is_err());
    net.revive(&victim);
    dep.execute(input(1), Duration::from_secs(5)).unwrap();
}

#[test]
fn partition_between_coordinators_stalls_downstream() {
    let net = Network::new(NetworkConfig::instant());
    let sc = synth::sequence(3);
    let dep = Deployer::new(&net).deploy(&sc, &backends(3)).unwrap();
    let a = naming::coordinator(&sc.name, &"s0".into());
    let b = naming::coordinator(&sc.name, &"s1".into());
    net.partition(&a, &b);
    assert!(dep.execute(input(0), Duration::from_millis(400)).is_err());
    net.heal(&a, &b);
    dep.execute(input(1), Duration::from_secs(5)).unwrap();
}

#[test]
fn community_failover_inside_composite_execution() {
    let net = Network::new(NetworkConfig::instant());
    // Community with one failing and one healthy member.
    let community = CommunityServer::spawn(
        &net,
        naming::community("Workers").as_str(),
        Community::new("Workers", "").with_operation(OperationDef::new("run")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            member_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .unwrap();
    let _bad = ServiceHost::spawn(
        &net,
        "svc.bad-member",
        Arc::new(FailingService::new("bad", "always fails")),
    )
    .unwrap();
    let _good =
        ServiceHost::spawn(&net, "svc.good-member", Arc::new(EchoService::new("good"))).unwrap();
    let admin = CommunityClient::connect(&net, "admin", community.node().clone()).unwrap();
    for (id, ep) in [("a-bad", "svc.bad-member"), ("b-good", "svc.good-member")] {
        admin
            .join(&Member {
                id: MemberId(id.into()),
                provider: id.into(),
                endpoint: NodeId::new(ep),
                qos: QosProfile::default(),
            })
            .unwrap();
    }

    // A composite whose single task goes through the community.
    use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv::wsdl::ParamType;
    let sc = StatechartBuilder::new("CommunityComposite")
        .variable("payload", ParamType::Str)
        .initial("w")
        .task(
            TaskDef::new("w", "Work")
                .community("Workers", "run")
                .input("payload", "payload")
                .output("echoed_by", "worker"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "w", "f"))
        .build()
        .unwrap();
    let dep = Deployer::new(&net).deploy(&sc, &HashMap::new()).unwrap();
    // Round-robin hits the failing member on alternating calls; failover
    // must mask every one of them.
    for i in 0..6 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(out.get_str("worker"), Some("good"));
    }
}

#[test]
fn lossy_network_degrades_but_does_not_wedge_the_platform() {
    // With 30% loss and no retransmission some instances stall (and time
    // out), but completed ones are correct and the actors survive to serve
    // a lossless epoch afterwards.
    let net = Network::new(
        NetworkConfig::instant()
            .with_drop_probability(0.3)
            .with_seed(13),
    );
    let sc = synth::sequence(3);
    let dep = Deployer::new(&net).deploy(&sc, &backends(3)).unwrap();
    let mut completed = 0;
    for i in 0..10 {
        if let Ok(out) = dep.execute(input(i), Duration::from_millis(300)) {
            assert_eq!(out.get_str("payload"), Some(format!("p{i}").as_str()));
            completed += 1;
        }
    }
    net.set_drop_probability(0.0);
    dep.execute(input(99), Duration::from_secs(5)).unwrap();
    // With seed 13, at least one must have made it through; mostly this
    // documents that loss yields timeouts, not corruption.
    assert!(completed <= 10);
}
