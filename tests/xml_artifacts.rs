//! Everything the platform stores or ships is XML: prove that deploying
//! *from the XML document* (the editor's output) behaves identically to
//! deploying from the in-memory model, and that routing plans survive
//! their XML round trip intact.

use selfserv::core::{Deployer, EchoService, ServiceBackend};
use selfserv::net::{Network, NetworkConfig};
use selfserv::routing::RoutingPlan;
use selfserv::statechart::{synth, travel, Statechart};
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn deploy_from_xml_document() {
    // The service editor hands the deployer an XML document, not an AST.
    let xml = synth::sequence(3).to_xml().to_pretty_xml();
    let parsed = Statechart::from_xml_str(&xml).unwrap();
    let net = Network::new(NetworkConfig::instant());
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for name in parsed.referenced_services() {
        backends.insert(name.clone(), Arc::new(EchoService::new(name)));
    }
    let dep = Deployer::new(&net).deploy(&parsed, &backends).unwrap();
    let out = dep
        .execute(
            MessageDoc::request("execute").with("payload", Value::str("via-xml")),
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(out.get_str("payload"), Some("via-xml"));
}

#[test]
fn routing_plans_round_trip_for_all_families() {
    for sc in [
        synth::sequence(6),
        synth::xor_choice(4),
        synth::parallel(4),
        synth::nested(3),
        synth::ladder(3, 2),
        travel::travel_statechart(),
    ] {
        let plan = selfserv::routing::generate(&sc).unwrap();
        let xml = plan.to_xml().to_pretty_xml();
        let back = RoutingPlan::from_xml(&selfserv::xml::parse(&xml).unwrap()).unwrap();
        assert_eq!(back, plan, "plan for {} mutated through XML", sc.name);
    }
}

#[test]
fn travel_statechart_xml_matches_paper_vocabulary() {
    // The document the editor would show for Figure 2 contains the paper's
    // guard expressions and state names.
    let xml = travel::travel_statechart().to_xml().to_pretty_xml();
    for needle in [
        "domestic(destination)",
        "not domestic(destination)",
        "near(major_attraction, accommodation)",
        "Accommodation Booking",
        "International Travel Arrangements",
        "Car Rental",
        "kind=\"concurrent\"",
        "community=\"AccommodationBooking\"",
    ] {
        assert!(
            xml.contains(needle),
            "statechart XML lacks {needle:?}:\n{xml}"
        );
    }
}

#[test]
fn generated_tables_are_consistent_for_travel() {
    let plan = selfserv::routing::generate(&travel::travel_statechart()).unwrap();
    let problems = selfserv::routing::verify_plan(&plan);
    assert!(problems.is_empty(), "{problems:?}");
    // And after an XML round trip, still consistent.
    let back = RoutingPlan::from_xml(&plan.to_xml()).unwrap();
    assert!(selfserv::routing::verify_plan(&back).is_empty());
}

#[test]
fn message_documents_survive_fabric_transport() {
    use selfserv::net::tcp::{read_frame, write_frame};
    use selfserv::net::{Envelope, MessageId, NodeId};
    // A full invocation message through the TCP framing.
    let msg = MessageDoc::request("bookFlight")
        .with("customer", Value::str("Eileen & co <travel>"))
        .with("budget", Value::Float(1500.25))
        .with(
            "legs",
            Value::List(vec![Value::str("SYD"), Value::str("HKG")]),
        );
    let env = Envelope {
        id: MessageId(9),
        from: NodeId::new("a"),
        to: NodeId::new("b"),
        kind: "invoke".into(),
        correlation: None,
        body: msg.to_xml(),
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, &env).unwrap();
    let back = read_frame(&mut buf.as_slice()).unwrap();
    let decoded = MessageDoc::from_xml(&back.body).unwrap();
    assert_eq!(decoded, msg);
}
