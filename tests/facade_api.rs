//! Smoke tests of the facade crate's re-exported API surface: everything a
//! downstream user touches in the README should be reachable through
//! `selfserv::*` paths.

use selfserv::community::{Community, QosProfile};
use selfserv::core::{Deployer, EchoService, ServiceBackend};
use selfserv::expr::{parse, MapEnv, Value};
use selfserv::net::{Network, NetworkConfig};
use selfserv::registry::{FindQuery, UddiRegistry};
use selfserv::routing::generate;
use selfserv::statechart::{synth, StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv::xml::Element;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn readme_quickstart_compiles_and_runs() {
    let net = Network::new(NetworkConfig::instant());
    let statechart = StatechartBuilder::new("Hello")
        .variable("name", ParamType::Str)
        .initial("greet")
        .task(
            TaskDef::new("greet", "Greet")
                .service("Greeter", "greet")
                .input("who", "name"),
        )
        .final_state("done")
        .transition(TransitionDef::new("t", "greet", "done"))
        .build()
        .unwrap();
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    backends.insert("Greeter".into(), Arc::new(EchoService::new("Greeter")));
    let deployment = Deployer::new(&net).deploy(&statechart, &backends).unwrap();
    let out = deployment
        .execute(
            MessageDoc::request("execute").with("name", "world".into()),
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(out.get_str("name"), Some("world"));
}

#[test]
fn every_facade_module_is_usable() {
    // xml
    let doc = Element::new("x").with_attr("a", "1");
    assert_eq!(selfserv::xml::parse(&doc.to_xml()).unwrap(), doc);
    // expr
    let mut env = MapEnv::with_builtins();
    env.set("n", Value::Int(3));
    assert_eq!(parse("n * 2").unwrap().eval(&env).unwrap(), Value::Int(6));
    // wsdl
    let msg = MessageDoc::request("op").with("k", Value::str("v"));
    assert_eq!(MessageDoc::from_xml(&msg.to_xml()).unwrap(), msg);
    // statechart + routing
    let sc = synth::sequence(2);
    let plan = generate(&sc).unwrap();
    assert_eq!(plan.tables.len(), 2);
    // registry
    let reg = UddiRegistry::new();
    let biz = reg.save_business("B", "c").key;
    let desc = selfserv::wsdl::ServiceDescription::new("S", "B")
        .with_operation(selfserv::wsdl::OperationDef::new("op"))
        .with_binding(selfserv::wsdl::Binding::fabric("n"));
    reg.save_service(&biz, "cat", desc, None).unwrap();
    assert_eq!(reg.find(&FindQuery::any()).len(), 1);
    // community
    let c = Community::new("C", "").with_operation(selfserv::wsdl::OperationDef::new("op"));
    assert!(c.is_empty());
    let _ = QosProfile::default();
    // version constant
    assert!(!selfserv::PLATFORM_VERSION.is_empty());
}
