//! Helpers shared by the integration suites.

use selfserv::wsdl::MessageDoc;

/// Serializes a response with the wall-clock `_elapsed_ms` field removed;
/// everything else must be byte-identical across transports, schedulers,
/// and PRs (the golden comparisons depend on this exact rule).
pub fn normalized(doc: &MessageDoc) -> String {
    let mut clean = MessageDoc::response(doc.operation.clone());
    for (k, v) in doc.iter() {
        if k != "_elapsed_ms" {
            clean.set(k, v.clone());
        }
    }
    clean.to_xml().to_xml()
}
