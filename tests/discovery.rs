//! Peer discovery & membership end-to-end: seed-address bootstrap across
//! `TcpTransport` hubs, gossip convergence at network scale, and failure
//! detection feeding community selection and the execution monitor.
//!
//! These are the acceptance scenarios of the discovery subsystem:
//! * two hubs linked by **one seed address** — no `register_peer`
//!   anywhere — complete a full composite deployment whose task delegates
//!   through a community hosted in the *other* hub, with rpc round trips
//!   crossing the hub boundary in both directions;
//! * sixteen hubs seeded in a line converge to byte-identical directories
//!   on every hub;
//! * a hub killed mid-deployment is suspected, then evicted, within the
//!   configured budget; community selection stops picking its members and
//!   executions keep succeeding on the survivors.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, RoundRobin,
};
use selfserv::core::{naming, Deployer, EchoService, ExecutionMonitor, ServiceHost};
use selfserv::expr::Value;
use selfserv::net::{LivenessProbe, NodeId, PeerStatus, TcpTransport, Transport};
use selfserv::statechart::{Statechart, StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv_discovery::{DiscoveryConfig, DiscoveryHandle, PeerDiscovery};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast(unit_ms: u64) -> DiscoveryConfig {
    DiscoveryConfig::default().with_cadence(Duration::from_millis(unit_ms))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A one-task composite delegating through the `Booking` community.
fn booking_composite(name: &str) -> Statechart {
    StatechartBuilder::new(name)
        .variable("payload", ParamType::Str)
        .initial("b")
        .task(
            TaskDef::new("b", "Book")
                .community("Booking", "book")
                .input("payload", "payload")
                .output("echoed_by", "worker"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "b", "f"))
        .build()
        .unwrap()
}

fn member(id: &str, endpoint: &str) -> Member {
    Member {
        id: MemberId(id.into()),
        provider: id.into(),
        endpoint: NodeId::new(endpoint),
        qos: QosProfile::default(),
    }
}

/// Two processes' worth of hubs, one seed address, zero `register_peer`
/// calls: hub B hosts the community and its member service, hub A deploys
/// and executes the composite. Every community invocation is a
/// coordinator-on-A → community-on-B → member-on-B → back chain of rpc
/// round trips across the hub boundary.
#[test]
fn one_seed_address_deploys_a_composite_across_two_hubs() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let disc_a = PeerDiscovery::spawn(&hub_a, fast(25)).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, fast(25).with_seed(disc_a.seed_addr())).unwrap();

    // Hub B: the provider process — community + one member service.
    let community = CommunityServer::spawn(
        &hub_b,
        naming::community("Booking").as_str(),
        Community::new("Booking", "cross-hub booking").with_operation(OperationDef::new("book")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig::default(),
    )
    .unwrap();
    let _host = ServiceHost::spawn(
        &hub_b,
        "svc.bookings",
        Arc::new(EchoService::new("bookings-on-b")),
    )
    .unwrap();
    let admin = CommunityClient::connect(&hub_b, "admin", community.node().clone()).unwrap();
    admin.join(&member("m1", "svc.bookings")).unwrap();

    // Hub A: the consumer process. It has only the seed address; wait for
    // gossip to surface the community, then deploy against it.
    assert!(
        disc_a.wait_until_bound(
            naming::community("Booking").as_str(),
            Duration::from_secs(10)
        ),
        "gossip delivers the community's name to the deploying hub"
    );
    let dep = Deployer::new(&hub_a)
        .deploy(&booking_composite("CrossHub"), &HashMap::new())
        .unwrap();
    for i in 0..3 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("p{i}"))),
                Duration::from_secs(10),
            )
            .unwrap();
        assert_eq!(out.get_str("payload"), Some(format!("p{i}").as_str()));
        assert_eq!(
            out.get_str("worker"),
            Some("bookings-on-b"),
            "the task was served by the member in the other process"
        );
    }
    drop(dep);
    drop(admin);
    drop(community);
    drop(disc_b);
}

/// Sixteen hubs, each seeded only with its predecessor's address (a line —
/// the worst diameter a connected seed graph can have). Anti-entropy must
/// converge every directory to the same entry set: same names, same
/// addresses, same owners, same versions.
#[test]
fn sixteen_hub_line_topology_converges_to_identical_directories() {
    const N: usize = 16;
    let mut hubs = Vec::with_capacity(N);
    let mut discs: Vec<DiscoveryHandle> = Vec::with_capacity(N);
    let mut endpoints = Vec::with_capacity(N);
    for i in 0..N {
        let hub = TcpTransport::new();
        // One application node per hub, so convergence is about real
        // registrations, not just the discovery endpoints themselves.
        endpoints.push(Transport::connect(&hub, NodeId::new(format!("node.{i}"))).unwrap());
        let mut config = fast(50);
        if let Some(prev) = discs.last() {
            config = config.with_seed(prev.seed_addr());
        }
        discs.push(PeerDiscovery::spawn(&hub, config).unwrap());
        hubs.push(hub);
    }
    let converged = wait_until(Duration::from_secs(60), || {
        let expect_names = 2 * N; // N app nodes + N discovery nodes
        discs
            .iter()
            .all(|d| d.directory().names().len() == expect_names)
            && discs
                .iter()
                .all(|d| d.directory().fingerprint() == discs[0].directory().fingerprint())
    });
    assert!(converged, "line topology gossip converged within budget");
    let reference = discs[0].directory().snapshot();
    assert_eq!(reference.len(), 2 * N);
    for (i, disc) in discs.iter().enumerate() {
        assert_eq!(
            disc.directory().snapshot(),
            reference,
            "hub {i} holds the same directory as hub 0"
        );
    }
    // The directory is not just convergent but *routable*: the two line
    // ends, 15 hops apart in the seed graph, rpc each other directly.
    let last = endpoints.pop().unwrap();
    let first = &endpoints[0];
    let server = std::thread::spawn(move || {
        let req = last.recv().unwrap();
        last.reply(&req, "pong", selfserv::xml::Element::new("pong"))
            .unwrap();
    });
    let reply = first
        .rpc(
            format!("node.{}", N - 1),
            "ping",
            selfserv::xml::Element::new("ping"),
            Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(reply.kind, "pong");
    server.join().unwrap();
}

/// Failure detection under a mid-deployment hub kill: the dead hub's
/// member is suspected, then evicted within the suspicion budget; the
/// community's liveness gate stops selecting it; executions keep
/// succeeding on the surviving member; the monitor records the whole
/// transition.
#[test]
fn killed_hub_is_evicted_and_community_selection_drops_its_members() {
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    // 25 ms cadence → suspected after 150 ms of silence, evicted after
    // 300 ms. The assertion budget below is the eviction timeout plus
    // generous scheduler slack.
    let monitor = ExecutionMonitor::spawn(&hub_a, "monitor").unwrap();
    let disc_a =
        PeerDiscovery::spawn(&hub_a, fast(25).with_monitor(monitor.node().clone())).unwrap();
    let disc_b = PeerDiscovery::spawn(&hub_b, fast(25).with_seed(disc_a.seed_addr())).unwrap();

    // Community lives on the surviving hub A, with the failure detector's
    // directory as its liveness view. One member local, one on doomed B.
    let community = CommunityServer::spawn(
        &hub_a,
        naming::community("Booking").as_str(),
        Community::new("Booking", "").with_operation(OperationDef::new("book")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            member_timeout: Duration::from_millis(500),
            liveness: Some(disc_a.liveness()),
            ..Default::default()
        },
    )
    .unwrap();
    let _local = ServiceHost::spawn(
        &hub_a,
        "svc.local",
        Arc::new(EchoService::new("local-member")),
    )
    .unwrap();
    let remote = ServiceHost::spawn(
        &hub_b,
        "svc.remote",
        Arc::new(EchoService::new("remote-member")),
    )
    .unwrap();
    assert!(disc_a.wait_until_bound("svc.remote", Duration::from_secs(10)));
    let admin = CommunityClient::connect(&hub_a, "admin", community.node().clone()).unwrap();
    admin.join(&member("a-local", "svc.local")).unwrap();
    admin.join(&member("b-remote", "svc.remote")).unwrap();

    // Deploy and prove the composite works while both hubs are alive.
    let dep = Deployer::new(&hub_a)
        .deploy(&booking_composite("Survivable"), &HashMap::new())
        .unwrap();
    let out = dep
        .execute(
            MessageDoc::request("execute").with("payload", Value::str("warm")),
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(out.get_str("worker").is_some());

    // Kill hub B mid-deployment: its discovery node, its member host.
    let b_hub_id = hub_b.hub_id();
    disc_b.stop();
    remote.stop();

    // Within the suspicion/eviction budget, A's detector walks the
    // ladder and the directory reflects it.
    let dir_a = disc_a.directory().clone();
    assert!(
        wait_until(Duration::from_secs(10), || {
            dir_a.status_of("svc.remote") == PeerStatus::Evicted
        }),
        "the killed hub's member was evicted (status: {:?})",
        dir_a.status_of("svc.remote")
    );

    // Community selection now never picks the evicted member: round-robin
    // over {local, remote} would alternate, so ten straight local serves
    // prove the gate.
    let client = CommunityClient::connect(&hub_a, "probe", community.node().clone()).unwrap();
    for _ in 0..10 {
        let resp = client
            .invoke(&MessageDoc::request("book").with("payload", Value::str("x")))
            .unwrap();
        assert_eq!(resp.get_str("echoed_by"), Some("local-member"));
    }

    // The deployment keeps executing after the kill.
    for i in 0..3 {
        let out = dep
            .execute(
                MessageDoc::request("execute").with("payload", Value::str(format!("k{i}"))),
                Duration::from_secs(10),
            )
            .unwrap();
        assert_eq!(out.get_str("worker"), Some("local-member"));
    }

    // The monitor ingested the liveness trail: suspicion, then eviction,
    // attributed to B's hub and naming its member.
    assert!(
        wait_until(Duration::from_secs(5), || {
            monitor.peer_status("svc.remote") == Some(PeerStatus::Evicted)
        }),
        "monitor learned the eviction"
    );
    let events = monitor.liveness_events();
    assert!(events
        .iter()
        .any(|e| e.hub == b_hub_id && e.status == PeerStatus::Suspected));
    assert!(events.iter().any(|e| e.hub == b_hub_id
        && e.status == PeerStatus::Evicted
        && e.names.contains(&NodeId::new("svc.remote"))));
}
