//! Randomly nested statecharts executed end-to-end: the P2P deployment and
//! the centralized interpreter must complete and agree on the data flow.

use selfserv::core::{
    naming, CentralConfig, CentralizedOrchestrator, Deployer, EchoService, FunctionLibrary,
    ServiceBackend, ServiceHost,
};
use selfserv::net::{Network, NetworkConfig};
use selfserv::statechart::synth;
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn input() -> MessageDoc {
    MessageDoc::request("execute")
        .with("payload", Value::str("rnd"))
        .with("branch", Value::Int(1))
}

#[test]
fn random_charts_execute_p2p() {
    for seed in 0..12u64 {
        let sc = synth::recursive(seed, 10, 3);
        let net = Network::new(NetworkConfig::instant());
        let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        for name in sc.referenced_services() {
            backends.insert(name.clone(), Arc::new(EchoService::new(name)));
        }
        let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
        let out = dep
            .execute(input(), Duration::from_secs(20))
            .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", sc.name));
        assert_eq!(out.get_str("payload"), Some("rnd"), "seed {seed}");
    }
}

#[test]
fn random_charts_agree_with_central() {
    for seed in 12..20u64 {
        let sc = synth::recursive(seed, 8, 3);
        // P2P.
        let net = Network::new(NetworkConfig::instant());
        let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
        for name in sc.referenced_services() {
            backends.insert(name.clone(), Arc::new(EchoService::new(name)));
        }
        let dep = Deployer::new(&net).deploy(&sc, &backends).unwrap();
        let p2p = dep.execute(input(), Duration::from_secs(20)).unwrap();
        // Central.
        let net = Network::new(NetworkConfig::instant());
        let mut hosts = Vec::new();
        let mut service_nodes = HashMap::new();
        for name in sc.referenced_services() {
            let node = naming::service_host(&name);
            hosts.push(
                ServiceHost::spawn(&net, node.clone(), Arc::new(EchoService::new(name.clone())))
                    .unwrap(),
            );
            service_nodes.insert(name, node);
        }
        let central = CentralizedOrchestrator::spawn(
            &net,
            CentralConfig {
                statechart: sc.clone(),
                functions: FunctionLibrary::new(),
                service_nodes,
                community_nodes: HashMap::new(),
            },
        )
        .unwrap();
        let cen = central.execute(input(), Duration::from_secs(20)).unwrap();
        assert_eq!(
            p2p.get_str("payload"),
            cen.get_str("payload"),
            "seed {seed} ({})",
            sc.name
        );
    }
}
