//! Deterministic chaos harness: seeded fault schedules driven through the
//! whole stack.
//!
//! Every trial deploys a synthesized composite family on a fresh fabric
//! and a fresh executor, installs a seeded [`FaultSchedule`] (message
//! drops / delays / duplicates / reorders plus timed whole-node crash and
//! restart events applied by a [`ChaosController`]), executes the
//! composite, and asserts the safety invariant:
//!
//! > an execution either completes **byte-identically** to its fault-free
//! > golden, or **faults cleanly** — a `Timeout` / `Fault` / `Unreachable`
//! > error with no leaked in-flight state: zero `rpc_async`
//! > continuations, zero live timer entries, zero blocked workers once
//! > the deployment is torn down.
//!
//! On a violation the failing schedule is delta-debugged
//! ([`minimize_schedule`]) down to a 1-minimal event list, printed with
//! its seed, and written to `target/chaos-artifacts/` for CI to upload.
//!
//! Custom entry point (`harness = false`) so a specific seed can be
//! replayed directly:
//!
//! ```text
//! cargo test --release --test chaos -- --seed 7
//! ```

use selfserv::core::{kinds, naming, Deployer, EchoService, ExecError, ServiceBackend};
use selfserv::net::{
    minimize_schedule, ChaosConfig, ChaosController, FaultAction, FaultEvent, FaultSchedule,
    KindRule, Network, NetworkConfig, NodeId,
};
use selfserv::runtime::{Executor, ExecutorHandle};
use selfserv::statechart::synth;
use selfserv::statechart::Statechart;
use selfserv::wsdl::MessageDoc;
use selfserv_expr::Value;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seeds per family. 12 seeds × 3 families = 36 schedules per run.
const SEEDS_PER_FAMILY: u64 = 12;
const ARTIFACT_DIR: &str = "target/chaos-artifacts";

type TestResult = Result<(), String>;
type NamedTest = (&'static str, fn() -> TestResult);

fn backends(n: usize) -> HashMap<String, Arc<dyn ServiceBackend>> {
    let mut map: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for i in 0..n {
        let name = synth::synth_service_name(i);
        map.insert(name.clone(), Arc::new(EchoService::new(name)));
    }
    map
}

/// One fixed input per family: the golden and every chaos trial must see
/// the same request or byte-equivalence means nothing.
fn input() -> MessageDoc {
    MessageDoc::request("execute")
        .with("payload", Value::str("chaos-probe"))
        .with("branch", Value::Int(0))
}

/// Response normalization for golden comparison: volatile fields the
/// wrapper stamps per execution (`_elapsed_ms` wall-clock, `_instance`
/// id) are stripped; everything else must be byte-identical.
fn normalized(doc: &MessageDoc) -> String {
    let mut clean = MessageDoc::response(doc.operation.clone());
    for (k, v) in doc.iter() {
        if k != "_elapsed_ms" && k != "_instance" {
            clean.set(k, v.clone());
        }
    }
    clean.to_xml().to_xml()
}

/// The fault-free reference output of one family.
fn golden_for(chart: &Statechart, services: usize) -> Result<String, String> {
    let exec = Executor::new(4);
    let net = Network::new(NetworkConfig::instant());
    let dep = Deployer::new(&net)
        .with_executor(exec.handle())
        .deploy(chart, &backends(services))
        .map_err(|e| format!("golden deploy failed: {e}"))?;
    let result = dep
        .execute(input(), Duration::from_secs(5))
        .map_err(|e| format!("golden execution failed: {e}"))?;
    dep.undeploy();
    exec.shutdown();
    Ok(normalized(&result))
}

/// The coordinator a crash-carrying schedule targets: a mid-pipeline
/// state for the flat families, the single task for the nested one.
fn crash_target(family: &str, chart: &Statechart) -> NodeId {
    let state = if family == "nested" { "s0" } else { "s1" };
    naming::coordinator(&chart.name, &state.into())
}

/// Message-fault mix for one seed. Duplicates are confined to
/// rpc-correlated kinds (`invoke`, `wrapper.`) where the reply demux
/// swallows the copy; `coord.` notifications are label-counted by
/// AND-joins, so duplicating them would test a different invariant than
/// the one this harness asserts. Membership gossip (`community.msync` /
/// `.mdelta` / `.mtick`) gets the harshest mix — the rows are an
/// idempotent LWW merge, so drops must be repaired by anti-entropy and
/// duplicates must change nothing.
fn chaos_config(crash_node: Option<&NodeId>) -> ChaosConfig {
    let mut config = ChaosConfig::default()
        .rule(
            KindRule::for_kind("coord.")
                .drop(0.05)
                .delay(0.20, Duration::from_millis(1), Duration::from_millis(4))
                .reorder(0.10, Duration::from_millis(3)),
        )
        .rule(
            KindRule::for_kind("invoke")
                .drop(0.05)
                .delay(0.20, Duration::from_millis(1), Duration::from_millis(4))
                .duplicate(0.08)
                .reorder(0.10, Duration::from_millis(3)),
        )
        .rule(
            KindRule::for_kind("community.m")
                .drop(0.15)
                .delay(0.25, Duration::from_millis(1), Duration::from_millis(6))
                .duplicate(0.15)
                .reorder(0.10, Duration::from_millis(4)),
        )
        .rule(
            KindRule::all()
                .delay(0.15, Duration::from_millis(1), Duration::from_millis(3))
                .duplicate(0.05),
        );
    if let Some(node) = crash_node {
        config = config
            .crash(Duration::from_millis(8), node.clone())
            .restart(Duration::from_millis(45), node.clone());
    }
    config
}

/// Polls the executor's leak gauges to zero after teardown. Everything
/// should already be settled when `undeploy` returns (stops are
/// synchronous and cancel in-flight rpcs); the grace window only covers
/// transport delivery threads racing their last callbacks.
fn audit_quiesced(handle: &ExecutorHandle) -> TestResult {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let rpcs = handle.in_flight_rpcs();
        let timers = handle.live_timers();
        let blocked = handle.blocked_workers();
        let live = handle.live_workers();
        if rpcs == 0 && timers == 0 && blocked == 0 && live == handle.workers() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "leaked state after teardown: {rpcs} in-flight rpcs, {timers} live timers, \
                 {blocked} blocked workers, {live}/{} workers",
                handle.workers()
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One execution under one schedule. `Ok(())` means the safety invariant
/// held: byte-identical completion or a clean fault, and zero leaks.
fn run_schedule(
    chart: &Statechart,
    services: usize,
    schedule: &Arc<FaultSchedule>,
    golden: &str,
) -> TestResult {
    let exec = Executor::new(4);
    let net = Network::new(NetworkConfig::instant());
    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_millis(700);
    deployer.instance_ttl = Duration::from_millis(400);
    let dep = deployer
        .deploy(chart, &backends(services))
        .map_err(|e| format!("deploy failed: {e}"))?;
    net.install_chaos(Arc::clone(schedule));
    let controller = ChaosController::start(schedule, Arc::new(net.clone()));
    let result = dep.execute(input(), Duration::from_millis(900));
    controller.stop();
    net.clear_chaos();
    let verdict = match result {
        Ok(doc) => {
            let got = normalized(&doc);
            if got == golden {
                Ok(())
            } else {
                Err(format!(
                    "completed but diverged from golden\n  golden: {golden}\n  got:    {got}"
                ))
            }
        }
        // Clean faults: the caller got a typed error, not a hang or a
        // corrupted answer. The leak audit below checks "clean".
        Err(ExecError::Timeout | ExecError::Fault(_) | ExecError::Unreachable(_)) => Ok(()),
    };
    dep.undeploy();
    let audit = audit_quiesced(&exec.handle());
    exec.shutdown();
    verdict.and(audit)
}

/// Replays a recorded event list against a fresh deployment and reports
/// whether the invariant still fails — the ddmin probe.
fn replay_still_fails(
    chart: &Statechart,
    services: usize,
    seed: u64,
    events: &[FaultEvent],
    golden: &str,
) -> bool {
    let schedule = FaultSchedule::replay(seed, events);
    run_schedule(chart, services, &schedule, golden).is_err()
}

/// Minimizes a failing schedule and writes the replayable artifact.
fn minimize_and_record(
    family: &str,
    chart: &Statechart,
    services: usize,
    seed: u64,
    events: Vec<FaultEvent>,
    golden: &str,
    failure: &str,
) -> String {
    let minimized = minimize_schedule(&events, |subset| {
        replay_still_fails(chart, services, seed, subset, golden)
    });
    let mut report = format!(
        "chaos invariant violated\nfamily: {family}\nseed: {seed}\nfailure: {failure}\n\
         minimized schedule ({} events):\n",
        minimized.len()
    );
    for event in &minimized {
        report.push_str(&format!("  {event}\n"));
    }
    report.push_str(&format!(
        "replay with: cargo test --release --test chaos -- --seed {seed}\n"
    ));
    let _ = std::fs::create_dir_all(ARTIFACT_DIR);
    let path = format!("{ARTIFACT_DIR}/violation-{family}-seed-{seed}.txt");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(report.as_bytes());
    }
    report
}

/// Tentpole test: ≥32 seeded schedules across ≥3 composite families, each
/// either byte-identical to golden or a clean fault with zero leaks.
fn schedules_preserve_safety_invariant() -> TestResult {
    let corpus = synth::chaos_corpus();
    assert!(corpus.len() >= 3, "corpus shrank below three families");
    let mut violations = Vec::new();
    let mut ran = 0u64;
    for (family, chart, services) in &corpus {
        let golden = golden_for(chart, *services)?;
        for seed in 0..SEEDS_PER_FAMILY {
            ran += 1;
            let crash = (seed % 4 == 0).then(|| crash_target(family, chart));
            let schedule = FaultSchedule::sample(seed, chaos_config(crash.as_ref()));
            if let Err(failure) = run_schedule(chart, *services, &schedule, &golden) {
                let report = minimize_and_record(
                    family,
                    chart,
                    *services,
                    seed,
                    schedule.events(),
                    &golden,
                    &failure,
                );
                eprintln!("{report}");
                violations.push(format!("{family}/seed {seed}: {failure}"));
            }
        }
    }
    assert!(ran >= 32, "ran only {ran} schedules, need at least 32");
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {ran} schedules violated the invariant:\n{}",
            violations.len(),
            violations.join("\n")
        ))
    }
}

/// Replaying a seed reproduces the identical fault sequence — asserted
/// three ways: pure-function decisions on a fresh same-seed schedule match
/// a live run's log; two fresh same-seed schedules produce identical
/// decision traces under *different* call interleavings; a replay
/// schedule built from the log reproduces the logged actions verbatim.
fn replaying_a_seed_reproduces_the_fault_sequence() -> TestResult {
    let seed = 7;
    let (family, chart, services) = synth::chaos_corpus().remove(0);
    let golden = golden_for(&chart, services)?;
    let crash = crash_target(family, &chart);
    let live = FaultSchedule::sample(seed, chaos_config(Some(&crash)));
    // A live end-to-end run fills the log with whatever streams the real
    // system produced.
    run_schedule(&chart, services, &live, &golden)?;
    let log = live.events();
    let message_events: Vec<_> = log
        .iter()
        .filter_map(|e| match e {
            FaultEvent::Message {
                from,
                to,
                kind,
                seq,
                action,
            } => Some((from.clone(), to.clone(), kind.clone(), *seq, *action)),
            FaultEvent::Node(_) => None,
        })
        .collect();
    if message_events.is_empty() {
        return Err("live run logged no message faults — schedule too tame to test replay".into());
    }
    // 1. Pure-function reproducibility: a fresh schedule from the same
    //    seed decides every logged (stream, seq) identically.
    let fresh = FaultSchedule::sample(seed, chaos_config(Some(&crash)));
    for (from, to, kind, seq, action) in &message_events {
        let redecided = fresh.decision_at(from, to, kind, *seq);
        if redecided != *action {
            return Err(format!(
                "seed {seed} did not reproduce: {from}->{to} {kind} #{seq} was {action}, \
                 replayed as {redecided}"
            ));
        }
    }
    // 2. Interleaving independence: stream-major vs round-robin decide()
    //    orders over the same per-stream sequences agree exactly.
    let streams: Vec<(NodeId, NodeId, String)> = (0..4)
        .map(|i| {
            (
                NodeId::new(format!("chaos.a{i}")),
                NodeId::new(format!("chaos.b{i}")),
                format!("kind.{}", i % 2),
            )
        })
        .collect();
    const PER_STREAM: u64 = 500;
    let a = FaultSchedule::sample(seed, chaos_config(None));
    let b = FaultSchedule::sample(seed, chaos_config(None));
    let mut trace_a = HashMap::new();
    for (from, to, kind) in &streams {
        for seq in 0..PER_STREAM {
            trace_a.insert(
                (from.clone(), to.clone(), kind.clone(), seq),
                a.decide(from, to, kind),
            );
        }
    }
    let mut trace_b = HashMap::new();
    for seq in 0..PER_STREAM {
        for (from, to, kind) in &streams {
            trace_b.insert(
                (from.clone(), to.clone(), kind.clone(), seq),
                b.decide(from, to, kind),
            );
        }
    }
    if trace_a != trace_b {
        return Err("decision traces diverged across call interleavings".into());
    }
    // ... and a different seed actually decides differently somewhere.
    let c = FaultSchedule::sample(seed + 1, chaos_config(None));
    let differs = streams.iter().any(|(from, to, kind)| {
        (0..PER_STREAM)
            .any(|seq| c.decision_at(from, to, kind, seq) != a.decision_at(from, to, kind, seq))
    });
    if !differs {
        return Err("two different seeds produced identical 2000-decision traces".into());
    }
    // 3. Replay mode reproduces the log verbatim (and delivers everything
    //    it does not list). Replay decisions are counter-driven, so walk
    //    each logged stream in sequence order — gaps must deliver, listed
    //    positions must replay their recorded action.
    let replayed = FaultSchedule::replay(seed, &log);
    let mut by_stream: HashMap<(NodeId, NodeId, String), Vec<(u64, FaultAction)>> = HashMap::new();
    for (from, to, kind, seq, action) in &message_events {
        by_stream
            .entry((from.clone(), to.clone(), kind.clone()))
            .or_default()
            .push((*seq, *action));
    }
    for ((from, to, kind), entries) in &by_stream {
        let max_seq = entries.iter().map(|(s, _)| *s).max().unwrap_or(0);
        for seq in 0..=max_seq {
            let expected = entries
                .iter()
                .find(|(s, _)| *s == seq)
                .map(|(_, a)| *a)
                .unwrap_or(FaultAction::Deliver);
            let got = replayed.decide(from, to, kind);
            if got != expected {
                return Err(format!(
                    "replay lost an event: {from}->{to} {kind} #{seq} was {expected}, got {got}"
                ));
            }
        }
    }
    let unlisted = replayed.decide(
        &NodeId::new("chaos.never"),
        &NodeId::new("chaos.seen"),
        "nope",
    );
    if unlisted != FaultAction::Deliver {
        return Err(format!(
            "replay invented a fault for an unlisted message: {unlisted}"
        ));
    }
    Ok(())
}

/// Probe for the injected-regression test: does this event list stop the
/// composite from completing byte-identically? (Weaker than the safety
/// invariant — a clean timeout counts as "broken" here, because the
/// regression being minimized is "execution no longer completes", not
/// "state leaks".)
fn replay_breaks_execution(
    chart: &Statechart,
    services: usize,
    seed: u64,
    events: &[FaultEvent],
    golden: &str,
) -> bool {
    let schedule = FaultSchedule::replay(seed, events);
    let exec = Executor::new(4);
    let net = Network::new(NetworkConfig::instant());
    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_millis(250);
    let Ok(dep) = deployer.deploy(chart, &backends(services)) else {
        exec.shutdown();
        return true;
    };
    net.install_chaos(Arc::clone(&schedule));
    let result = dep.execute(input(), Duration::from_millis(300));
    net.clear_chaos();
    let broke = match result {
        Ok(doc) => normalized(&doc) != golden,
        Err(_) => true,
    };
    dep.undeploy();
    exec.shutdown();
    broke
}

/// A deliberately injected regression — one fatal drop buried in a pile
/// of harmless delays — must minimize to a small replayable schedule.
fn injected_regression_minimizes_to_a_small_schedule() -> TestResult {
    let chart = synth::sequence(2);
    let services = 2;
    let golden = golden_for(&chart, services)?;
    let s0 = naming::coordinator(&chart.name, &"s0".into());
    let s1 = naming::coordinator(&chart.name, &"s1".into());
    let fatal = FaultEvent::Message {
        from: s0.clone(),
        to: s1.clone(),
        kind: kinds::NOTIFY.to_string(),
        seq: 0,
        action: FaultAction::Drop,
    };
    // Chaff: delays on stream positions a single execution never reaches
    // (the s0→s1 notify fires exactly once per instance), plus delays on
    // unrelated phantom streams — all removable without changing the
    // outcome.
    let mut events = vec![fatal.clone()];
    for i in 0..12u64 {
        events.push(FaultEvent::Message {
            from: s0.clone(),
            to: s1.clone(),
            kind: kinds::NOTIFY.to_string(),
            seq: i + 1,
            action: FaultAction::Delay(Duration::from_millis(1 + i % 3)),
        });
    }
    for i in 0..12u64 {
        events.push(FaultEvent::Message {
            from: NodeId::new(format!("chaos.phantom{i}")),
            to: s0.clone(),
            kind: "invoke".to_string(),
            seq: 0,
            action: FaultAction::Delay(Duration::from_millis(2)),
        });
    }
    let seed = 99;
    // Sanity both ways: the full schedule must break execution, the empty
    // one must not — otherwise minimization is meaningless.
    if !replay_breaks_execution(&chart, services, seed, &events, &golden) {
        return Err("injected regression did not break the full schedule".into());
    }
    if replay_breaks_execution(&chart, services, seed, &[], &golden) {
        return Err("fault-free replay failed — environment is broken".into());
    }
    let minimized = minimize_schedule(&events, |subset| {
        replay_breaks_execution(&chart, services, seed, subset, &golden)
    });
    if minimized.len() > 8 {
        return Err(format!(
            "minimization stopped at {} events, expected ≤ 8",
            minimized.len()
        ));
    }
    if !minimized.contains(&fatal) {
        return Err("minimized schedule lost the fatal drop".into());
    }
    Ok(())
}

/// Chaos over a real socket: a [`ChaosController`] kills the pooled TCP
/// connection mid-burst. The writer's queued frames drop, the *next* send
/// surfaces the deferred `BrokenPipe`, and after the scheduled restart
/// (which retires the dead connection) sends dial a fresh writer and
/// arrive again.
fn tcp_writer_surfaces_deferred_errors_under_scheduled_chaos() -> TestResult {
    use selfserv::net::{NodeEvent, NodeFault, TcpTransport, Transport};
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let src = Transport::connect(&hub_a, NodeId::new("chaos.src"))
        .map_err(|e| format!("connect src: {e}"))?;
    let dst = Transport::connect(&hub_b, NodeId::new("chaos.dst"))
        .map_err(|e| format!("connect dst: {e}"))?;
    let dst_addr = hub_b
        .addr_of("chaos.dst")
        .ok_or("dst has no listener address")?;
    hub_a.register_peer("chaos.dst", dst_addr);
    // Open the pooled connection and prove the path works fault-free.
    src.send("chaos.dst", "probe", selfserv::xml::Element::new("probe"))
        .map_err(|e| format!("warm-up send: {e}"))?;
    dst.recv_timeout(Duration::from_secs(5))
        .map_err(|e| format!("warm-up recv: {e}"))?;

    // The schedule *is* the chaos: crash the connection 10ms in, retire
    // it 120ms in. Replay mode keeps the event list explicit.
    let schedule = FaultSchedule::replay(
        42,
        &[
            FaultEvent::Node(NodeEvent {
                at: Duration::from_millis(10),
                node: NodeId::new("chaos.dst"),
                fault: NodeFault::Crash,
            }),
            FaultEvent::Node(NodeEvent {
                at: Duration::from_millis(120),
                node: NodeId::new("chaos.dst"),
                fault: NodeFault::Restart,
            }),
        ],
    );
    let before = hub_a.io_stats();
    let controller = ChaosController::start(&schedule, Arc::new(hub_a.clone()));
    // Burst flat-out through the crash window — fat frames keep the
    // writer's queue occupied so the kill has something to drop. The kill
    // discards the queue and parks a deferred error; the send that picks
    // it up fails.
    let payload = "x".repeat(8 * 1024);
    let mut saw_deferred_error = false;
    let deadline = Instant::now() + Duration::from_millis(100);
    while Instant::now() < deadline {
        if src
            .send(
                "chaos.dst",
                "burst",
                selfserv::xml::Element::new("frame").with_text(payload.clone()),
            )
            .is_err()
        {
            saw_deferred_error = true;
            break;
        }
    }
    controller.stop();
    if !saw_deferred_error {
        return Err("no send surfaced the deferred write error after the scheduled kill".into());
    }
    // Queue-drop accounting is asserted deterministically in the writer's
    // unit tests; over a real loopback socket the writer often drains
    // faster than one producer fills, so here it is informational.
    let dropped = hub_a.io_stats().frames_dropped - before.frames_dropped;
    eprintln!("  (scheduled kill dropped {dropped} queued frames)");
    // Past the scheduled restart the pool has forgotten the dead
    // connection; sends respawn a writer and frames arrive again.
    std::thread::sleep(Duration::from_millis(40));
    // Drain pre-crash burst stragglers so recovery is judged on frames
    // sent *after* the restart only.
    while dst.try_recv().is_some() {}
    let recovered = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let sent = src
                .send("chaos.dst", "after", selfserv::xml::Element::new("after"))
                .is_ok();
            if sent
                && matches!(dst.recv_timeout(Duration::from_millis(100)),
                            Ok(env) if env.kind == "after")
            {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
        }
    };
    if !recovered {
        return Err("sends never recovered after the scheduled restart".into());
    }
    Ok(())
}

/// Replicated community serving under a scheduled crash: two community
/// replicas front one echo member; a seeded schedule kills one replica
/// mid-burst. The invariant mirrors the harness's safety claim, plus a
/// liveness clause the unreplicated topology cannot offer:
///
/// * every burst execution either completes **byte-identically** to the
///   fault-free golden or faults cleanly (typed error, no hang);
/// * after the crash the **survivor keeps serving** — a post-crash
///   execution must complete byte-identically (the coordinator's replica
///   failover routes around the corpse, never a fault);
/// * teardown leaks nothing: zero in-flight rpcs, zero live timers, zero
///   blocked workers.
fn community_replica_crash_mid_burst_keeps_survivor_serving() -> TestResult {
    use selfserv::community::{
        Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
        QosProfile, RoundRobin,
    };
    use selfserv::core::ServiceHost;
    use selfserv::net::{NodeEvent, NodeFault};
    use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv::wsdl::{OperationDef, ParamType};

    const BURST: usize = 48;
    let exec = Executor::new(4);
    let net = Network::new(NetworkConfig::instant());

    let replicas = CommunityServer::spawn_replicas_on(
        &net,
        &exec.handle(),
        "community.workers",
        2,
        Community::new("Workers", "").with_operation(OperationDef::new("op")),
        Arc::new(RoundRobin::new()),
        CommunityServerConfig {
            member_timeout: Duration::from_millis(400),
            ..Default::default()
        },
    )
    .map_err(|e| format!("replica spawn failed: {e}"))?;
    let member = ServiceHost::spawn_on(
        &net,
        &exec.handle(),
        "svc.echo-member",
        Arc::new(EchoService::new("Echo")),
    )
    .map_err(|e| format!("member spawn failed: {e}"))?;
    let admin = CommunityClient::connect(&net, "chaos-admin", replicas[0].node().clone())
        .map_err(|e| format!("admin connect failed: {e}"))?;
    admin
        .join(&Member {
            id: MemberId("echo".into()),
            provider: "echo".into(),
            endpoint: NodeId::new("svc.echo-member"),
            qos: QosProfile::default(),
        })
        .map_err(|e| format!("member join failed: {e}"))?;

    let chart = StatechartBuilder::new("ReplicaChaos")
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .community("Workers", "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .map_err(|e| format!("chart build failed: {e:?}"))?;
    let mut deployer = Deployer::new(&net).with_executor(exec.handle());
    deployer.invoke_timeout = Duration::from_millis(400);
    let dep = deployer
        .deploy(&chart, &HashMap::new())
        .map_err(|e| format!("deploy failed: {e}"))?;

    let probe = || MessageDoc::request("execute").with("payload", Value::str("chaos-probe"));
    // The fault-free golden, from the very topology under test.
    let golden = normalized(
        &dep.execute(probe(), Duration::from_secs(5))
            .map_err(|e| format!("golden execution failed: {e}"))?,
    );

    // The schedule is the chaos: kill replica 0 (the canonical community
    // node) 5ms into the burst. No restart — recovery must come from the
    // survivor, not resurrection.
    let schedule = FaultSchedule::replay(
        1302,
        &[FaultEvent::Node(NodeEvent {
            at: Duration::from_millis(5),
            node: NodeId::new("community.workers"),
            fault: NodeFault::Crash,
        })],
    );
    net.install_chaos(Arc::clone(&schedule));
    let controller = ChaosController::start(&schedule, Arc::new(net.clone()));
    // First half of the burst races the crash; then hold the burst open
    // until the kill has landed so the second half genuinely runs against
    // a dead replica (the instant fabric can finish 48 executions inside
    // the 5ms fuse otherwise).
    let mut pending = std::collections::HashSet::new();
    for _ in 0..BURST / 2 {
        pending.insert(
            dep.submit(probe())
                .map_err(|e| format!("submit failed: {e}"))?,
        );
    }
    let t0 = Instant::now();
    while !net.is_dead(&NodeId::new("community.workers")) {
        if t0.elapsed() > Duration::from_secs(5) {
            return Err("schedule never crashed the replica".into());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for _ in 0..BURST / 2 {
        pending.insert(
            dep.submit(probe())
                .map_err(|e| format!("submit failed: {e}"))?,
        );
    }
    let mut completed = 0usize;
    let mut clean_faults = 0usize;
    while !pending.is_empty() {
        let (id, outcome) = dep
            .collect_result(Duration::from_secs(30))
            .map_err(|e| format!("burst result lost: {e}"))?;
        if !pending.remove(&id) {
            return Err("collected an unknown submission id".into());
        }
        match outcome {
            Ok(doc) => {
                let got = normalized(&doc);
                if got != golden {
                    return Err(format!(
                        "burst completion diverged from golden\n  golden: {golden}\n  got:    {got}"
                    ));
                }
                completed += 1;
            }
            // Clean typed fault — the allowed alternative to completion.
            Err(ExecError::Timeout | ExecError::Fault(_) | ExecError::Unreachable(_)) => {
                clean_faults += 1;
            }
        }
    }
    controller.stop();
    net.clear_chaos();
    eprintln!("  (burst of {BURST}: {completed} completed, {clean_faults} clean faults)");
    if completed == 0 {
        return Err("no burst execution completed — the survivor never served".into());
    }

    // Survivor liveness: with replica 0 dead and the burst settled, a
    // fresh execution must still complete identically — the coordinator
    // fails over to the `.r1` replica instead of faulting.
    let after = dep
        .execute(probe(), Duration::from_secs(10))
        .map_err(|e| format!("post-crash execution faulted: {e}"))?;
    if normalized(&after) != golden {
        return Err("post-crash completion diverged from golden".into());
    }

    dep.undeploy();
    drop(admin);
    member.stop();
    for replica in replicas {
        replica.stop();
    }
    let audit = audit_quiesced(&exec.handle());
    exec.shutdown();
    audit
}

/// Cross-hub replication under a scheduled crash: replica 0 lives on hub
/// A (its own [`TcpTransport`], its own executor — a separate failure
/// domain), replica 1 and the whole calling side live on hub B. The two
/// replicas share **no** membership state; a member registered through
/// the survivor must reach replica 0 as gossiped membership rows before
/// the burst starts. The seeded schedule then severs hub B's connection
/// to replica 0 mid-burst while hub A's replica is stopped — the
/// hub-hosting-replica-0 crash — and the invariant is the harness's
/// safety claim plus cross-hub liveness:
///
/// * every burst execution completes byte-identically to the golden or
///   faults cleanly;
/// * after the crash the survivor hub keeps serving — a post-crash
///   execution completes byte-identically through `.r1`;
/// * the survivor's membership table still holds the member (the crash
///   must not un-gossip anything);
/// * teardown leaks nothing on the survivor hub: zero in-flight rpcs,
///   zero live timers, zero blocked workers.
fn cross_hub_replica_crash_fails_over_to_survivor_hub() -> TestResult {
    use selfserv::community::{
        Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
        QosProfile, ReplicationConfig, RoundRobin,
    };
    use selfserv::core::ServiceHost;
    use selfserv::net::{NodeEvent, NodeFault, TcpTransport};
    use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
    use selfserv::wsdl::{OperationDef, ParamType};

    const BURST: usize = 32;
    let hub_a = TcpTransport::new();
    let hub_b = TcpTransport::new();
    let exec_a = Executor::new(2);
    let exec_b = Executor::new(4);

    let base = naming::community("CrossHub");
    let r1 = format!("{}.r1", base.as_str());
    let config = || CommunityServerConfig {
        member_timeout: Duration::from_millis(400),
        replication: ReplicationConfig {
            gossip_interval: Some(Duration::from_millis(25)),
            ..Default::default()
        },
        ..Default::default()
    };
    let descriptor = || Community::new("CrossHub", "").with_operation(OperationDef::new("op"));
    let replica0 = CommunityServer::spawn_replica_on(
        &hub_a,
        &exec_a.handle(),
        base.as_str(),
        0,
        2,
        descriptor(),
        Arc::new(RoundRobin::new()),
        config(),
    )
    .map_err(|e| format!("replica 0 spawn failed: {e}"))?;
    let replica1 = CommunityServer::spawn_replica_on(
        &hub_b,
        &exec_b.handle(),
        base.as_str(),
        1,
        2,
        descriptor(),
        Arc::new(RoundRobin::new()),
        config(),
    )
    .map_err(|e| format!("replica 1 spawn failed: {e}"))?;
    let member = ServiceHost::spawn_on(
        &hub_b,
        &exec_b.handle(),
        "svc.xhub-member",
        Arc::new(EchoService::new("Echo")),
    )
    .map_err(|e| format!("member spawn failed: {e}"))?;

    // Pairwise address introductions (the cross-process analogue of a
    // discovery seed): each hub learns where the other's nodes listen.
    let addr = |hub: &TcpTransport, name: &str| {
        hub.addr_of(name)
            .ok_or_else(|| format!("{name} has no listener address"))
    };
    hub_b.register_peer(base.as_str(), addr(&hub_a, base.as_str())?);
    hub_a.register_peer(r1.as_str(), addr(&hub_b, r1.as_str())?);
    hub_a.register_peer("svc.xhub-member", addr(&hub_b, "svc.xhub-member")?);

    // Register through the SURVIVOR replica; the row must cross to hub A
    // via membership gossip before the burst means anything.
    let admin = CommunityClient::connect(&hub_b, "xhub-admin", replica1.node().clone())
        .map_err(|e| format!("admin connect failed: {e}"))?;
    admin
        .join(&Member {
            id: MemberId("echo".into()),
            provider: "echo".into(),
            endpoint: NodeId::new("svc.xhub-member"),
            qos: QosProfile::default(),
        })
        .map_err(|e| format!("member join failed: {e}"))?;
    let gossip_deadline = Instant::now() + Duration::from_secs(5);
    while replica0.member_count() == 0 {
        if Instant::now() >= gossip_deadline {
            return Err("join through hub B never reached replica 0 on hub A via gossip".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let chart = StatechartBuilder::new("CrossHubChaos")
        .variable("payload", ParamType::Str)
        .variable("served_by", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "Svc")
                .community("CrossHub", "op")
                .input("payload", "payload")
                .output("echoed_by", "served_by"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t", "s0", "f"))
        .build()
        .map_err(|e| format!("chart build failed: {e:?}"))?;
    let mut deployer = Deployer::new(&hub_b).with_executor(exec_b.handle());
    deployer.invoke_timeout = Duration::from_millis(400);
    let dep = deployer
        .deploy(&chart, &HashMap::new())
        .map_err(|e| format!("deploy failed: {e}"))?;
    // Replica 0 answers proxy delegations straight to the coordinator, so
    // hub A needs its address too.
    let coord = naming::coordinator(&chart.name, &"s0".into());
    hub_a.register_peer(coord.as_str(), addr(&hub_b, coord.as_str())?);

    let probe = || MessageDoc::request("execute").with("payload", Value::str("chaos-probe"));
    let golden = normalized(
        &dep.execute(probe(), Duration::from_secs(5))
            .map_err(|e| format!("golden execution failed: {e}"))?,
    );

    // The schedule severs hub B's pooled connection to replica 0 at 5ms
    // (queued frames drop, no restart event follows); a paired "power
    // cut" thread stops replica 0 itself at the same mark, so hub A
    // genuinely goes dark instead of accepting a re-dial.
    let schedule = FaultSchedule::replay(
        2107,
        &[FaultEvent::Node(NodeEvent {
            at: Duration::from_millis(5),
            node: base.clone(),
            fault: NodeFault::Crash,
        })],
    );
    let controller = ChaosController::start(&schedule, Arc::new(hub_b.clone()));
    let power_cut = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        replica0.stop();
    });
    let mut pending = std::collections::HashSet::new();
    for _ in 0..BURST / 2 {
        pending.insert(
            dep.submit(probe())
                .map_err(|e| format!("submit failed: {e}"))?,
        );
    }
    power_cut
        .join()
        .map_err(|_| "power-cut thread panicked".to_string())?;
    for _ in 0..BURST / 2 {
        pending.insert(
            dep.submit(probe())
                .map_err(|e| format!("submit failed: {e}"))?,
        );
    }
    let mut completed = 0usize;
    let mut clean_faults = 0usize;
    while !pending.is_empty() {
        let (id, outcome) = dep
            .collect_result(Duration::from_secs(30))
            .map_err(|e| format!("burst result lost: {e}"))?;
        if !pending.remove(&id) {
            return Err("collected an unknown submission id".into());
        }
        match outcome {
            Ok(doc) => {
                let got = normalized(&doc);
                if got != golden {
                    return Err(format!(
                        "burst completion diverged from golden\n  golden: {golden}\n  got:    {got}"
                    ));
                }
                completed += 1;
            }
            Err(ExecError::Timeout | ExecError::Fault(_) | ExecError::Unreachable(_)) => {
                clean_faults += 1;
            }
        }
    }
    controller.stop();
    eprintln!("  (cross-hub burst of {BURST}: {completed} completed, {clean_faults} clean faults)");
    if completed == 0 {
        return Err("no burst execution completed — the survivor hub never served".into());
    }

    // Survivor-hub liveness and state: `.r1` must serve a fresh execution
    // byte-identically, from a membership table the crash did not damage.
    let after = dep
        .execute(probe(), Duration::from_secs(10))
        .map_err(|e| format!("post-crash execution faulted: {e}"))?;
    if normalized(&after) != golden {
        return Err("post-crash completion diverged from golden".into());
    }
    if replica1.member_count() != 1 {
        return Err(format!(
            "survivor's membership table lost the member: {} entries",
            replica1.member_count()
        ));
    }

    dep.undeploy();
    drop(admin);
    member.stop();
    replica1.stop();
    let audit = audit_quiesced(&exec_b.handle());
    exec_b.shutdown();
    exec_a.shutdown();
    audit
}

fn parse_seed(args: &[String]) -> Option<u64> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--seed" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--seed=") {
            return v.parse().ok();
        }
    }
    None
}

/// `--seed N`: replay one seed across every family, printing the full
/// fault event log and each outcome.
fn replay_seed(seed: u64) -> bool {
    let mut all_clean = true;
    for (family, chart, services) in synth::chaos_corpus() {
        let golden = match golden_for(&chart, services) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{family}: golden failed: {e}");
                all_clean = false;
                continue;
            }
        };
        let crash = (seed % 4 == 0).then(|| crash_target(family, &chart));
        let schedule = FaultSchedule::sample(seed, chaos_config(crash.as_ref()));
        let outcome = run_schedule(&chart, services, &schedule, &golden);
        println!("family {family}, seed {seed}:");
        for event in schedule.events() {
            println!("  {event}");
        }
        match outcome {
            Ok(()) => println!("  => invariant held"),
            Err(e) => {
                println!("  => VIOLATION: {e}");
                all_clean = false;
            }
        }
    }
    all_clean
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(seed) = parse_seed(&args) {
        std::process::exit(if replay_seed(seed) { 0 } else { 1 });
    }
    let filter: Option<&String> = args.iter().find(|a| !a.starts_with('-'));
    let tests: Vec<NamedTest> = vec![
        (
            "chaos_schedules_preserve_the_safety_invariant",
            schedules_preserve_safety_invariant,
        ),
        (
            "replaying_a_seed_reproduces_the_fault_sequence",
            replaying_a_seed_reproduces_the_fault_sequence,
        ),
        (
            "injected_regression_minimizes_to_a_small_schedule",
            injected_regression_minimizes_to_a_small_schedule,
        ),
        (
            "tcp_writer_surfaces_deferred_errors_under_scheduled_chaos",
            tcp_writer_surfaces_deferred_errors_under_scheduled_chaos,
        ),
        (
            "community_replica_crash_mid_burst_keeps_survivor_serving",
            community_replica_crash_mid_burst_keeps_survivor_serving,
        ),
        (
            "cross_hub_replica_crash_fails_over_to_survivor_hub",
            cross_hub_replica_crash_fails_over_to_survivor_hub,
        ),
    ];
    let mut failed = 0;
    let mut ran = 0;
    for (name, test) in tests {
        if let Some(f) = filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        let t0 = Instant::now();
        match test() {
            Ok(()) => println!("test {name} ... ok ({:.1}s)", t0.elapsed().as_secs_f64()),
            Err(e) => {
                println!("test {name} ... FAILED\n{e}");
                failed += 1;
            }
        }
    }
    println!(
        "\ntest result: {}. {} passed; {failed} failed",
        if failed == 0 { "ok" } else { "FAILED" },
        ran - failed
    );
    std::process::exit(if failed == 0 { 0 } else { 1 });
}
