//! Membership churn under load: a cross-hub replicated community serves a
//! composite burst while members join, leave, and crash underneath it.
//!
//! Topology: two `TcpTransport` hubs joined by one discovery seed.
//! Replica 0 of the community runs on hub A, replica 1 on hub B — no
//! shared membership state; rows cross hubs as gossiped membership
//! deltas. The composite (two community tasks in sequence) deploys on
//! hub B, so every delegation through replica 0 crosses TCP twice.
//!
//! Invariants, in the chaos harness's terms:
//! * every burst execution either completes **byte-identically** to the
//!   fault-free golden or faults cleanly (typed error, never a corrupted
//!   answer) — member identity is deliberately kept out of the chart's
//!   output so "byte-identical" is meaningful under rotation;
//! * after quiescence the replicas' membership tables **converge** to the
//!   same fingerprint, tombstones included;
//! * teardown leaks nothing: `in_flight_rpcs` and `live_timers` drain to
//!   zero on both hubs' executors.

use selfserv::community::{
    Community, CommunityClient, CommunityServer, CommunityServerConfig, Member, MemberId,
    QosProfile, ReplicationConfig, RoundRobin,
};
use selfserv::core::{naming, Deployer, EchoService, ExecError, ServiceHost};
use selfserv::expr::Value;
use selfserv::net::TcpTransport;
use selfserv::runtime::{Executor, ExecutorHandle};
use selfserv::statechart::{StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, OperationDef, ParamType};
use selfserv_discovery::{DiscoveryConfig, DiscoveryHandle, PeerDiscovery};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BURST: usize = 48;
const STABLE_MEMBERS: usize = 3;

/// Every member wraps an `EchoService` under the SAME service name, so a
/// response does not betray which member served it — the precondition for
/// byte-identical goldens under round-robin rotation and churn.
fn echo() -> Arc<EchoService> {
    Arc::new(EchoService::new("Echo"))
}

fn member(id: &str, endpoint: &str) -> Member {
    Member {
        id: MemberId(id.to_string()),
        provider: id.to_string(),
        endpoint: selfserv::net::NodeId::new(endpoint),
        qos: QosProfile::default(),
    }
}

/// Volatile per-execution fields stripped before golden comparison.
fn normalized(doc: &MessageDoc) -> String {
    let mut clean = MessageDoc::response(doc.operation.clone());
    for (k, v) in doc.iter() {
        if k != "_elapsed_ms" && k != "_instance" {
            clean.set(k, v.clone());
        }
    }
    clean.to_xml().to_xml()
}

/// Polls both executors' leak gauges to zero after teardown.
fn assert_drained(label: &str, handle: &ExecutorHandle) {
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let rpcs = handle.in_flight_rpcs();
        let timers = handle.live_timers();
        if rpcs == 0 && timers == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{label} leaked after teardown: {rpcs} in-flight rpcs, {timers} live timers"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

struct HubSide {
    hub: TcpTransport,
    exec: Executor,
    disc: DiscoveryHandle,
}

fn spawn_side(seed: Option<std::net::SocketAddr>) -> HubSide {
    let hub = TcpTransport::new();
    let exec = Executor::new(4);
    let mut cfg = DiscoveryConfig::default().with_cadence(Duration::from_millis(25));
    if let Some(seed) = seed {
        cfg = cfg.with_seed(seed);
    }
    let disc = PeerDiscovery::spawn_on(&hub, &exec.handle(), cfg).expect("discovery spawns");
    HubSide { hub, exec, disc }
}

#[test]
fn churn_during_composite_burst_converges_and_leaks_nothing() {
    let a = spawn_side(None);
    let b = spawn_side(Some(a.disc.seed_addr()));

    // --- Cross-hub replica pair -----------------------------------------
    let base = naming::community("Churn");
    let descriptor = || Community::new("Churn", "").with_operation(OperationDef::new("op"));
    let config = |side: &HubSide| CommunityServerConfig {
        member_timeout: Duration::from_millis(300),
        liveness: Some(side.disc.liveness()),
        replication: ReplicationConfig {
            directory: Some(side.disc.directory().clone()),
            gossip_interval: Some(Duration::from_millis(50)),
            ..Default::default()
        },
        ..Default::default()
    };
    let replica0 = CommunityServer::spawn_replica_on(
        &a.hub,
        &a.exec.handle(),
        base.as_str(),
        0,
        2,
        descriptor(),
        Arc::new(RoundRobin::new()),
        config(&a),
    )
    .expect("replica 0 spawns on hub A");
    let replica1 = CommunityServer::spawn_replica_on(
        &b.hub,
        &b.exec.handle(),
        base.as_str(),
        1,
        2,
        descriptor(),
        Arc::new(RoundRobin::new()),
        config(&b),
    )
    .expect("replica 1 spawns on hub B");

    // --- Members ---------------------------------------------------------
    // Two stable members on hub B, one on hub A (so steady-state proxying
    // crosses the hub boundary), one crash victim on hub B, and one churn
    // member on hub A that the churn thread cycles.
    let mut stable = Vec::new();
    for i in 0..STABLE_MEMBERS {
        let (side, exec) = if i == 0 {
            (&a.hub, &a.exec)
        } else {
            (&b.hub, &b.exec)
        };
        stable.push(
            ServiceHost::spawn_on(side, &exec.handle(), format!("svc.stable{i}"), echo())
                .expect("stable member spawns"),
        );
    }
    let crash_victim = ServiceHost::spawn_on(&b.hub, &b.exec.handle(), "svc.crashy", echo())
        .expect("crash member spawns");
    let churn_host = ServiceHost::spawn_on(&a.hub, &a.exec.handle(), "svc.churny", echo())
        .expect("churn member spawns");

    // Hub B must learn replica 0's name (and hub A the members') before
    // anything routes — one seed address is the only bootstrap.
    assert!(
        b.disc
            .wait_until_bound(base.as_str(), Duration::from_secs(10)),
        "hub B never learned replica 0 via gossip"
    );
    let admin = CommunityClient::connect(&b.hub, "churn-admin", replica1.node().clone())
        .expect("admin client connects");
    for i in 0..STABLE_MEMBERS {
        admin
            .join(&member(&format!("stable{i}"), &format!("svc.stable{i}")))
            .expect("stable member joins");
    }
    admin
        .join(&member("crashy", "svc.crashy"))
        .expect("crash member joins");
    // Registration went through replica 1; replica 0 on the OTHER hub
    // must see every row via membership gossip before the burst starts.
    assert!(
        wait_until(Duration::from_secs(10), || replica0.member_count()
            == STABLE_MEMBERS + 1),
        "replica 0 only learned {}/{} members via gossip",
        replica0.member_count(),
        STABLE_MEMBERS + 1
    );

    // --- Composite -------------------------------------------------------
    let chart = StatechartBuilder::new("ChurnBurst")
        .variable("payload", ParamType::Str)
        .initial("s0")
        .task(
            TaskDef::new("s0", "First")
                .community("Churn", "op")
                .input("payload", "payload")
                .output("payload", "payload"),
        )
        .task(
            TaskDef::new("s1", "Second")
                .community("Churn", "op")
                .input("payload", "payload")
                .output("payload", "payload"),
        )
        .final_state("f")
        .transition(TransitionDef::new("t0", "s0", "s1"))
        .transition(TransitionDef::new("t1", "s1", "f"))
        .build()
        .expect("chart builds");
    let mut deployer = Deployer::new(&b.hub)
        .with_executor(b.exec.handle())
        .with_liveness(b.disc.liveness());
    deployer.invoke_timeout = Duration::from_millis(800);
    let dep = deployer
        .deploy(&chart, &std::collections::HashMap::new())
        .expect("composite deploys");

    let probe = || MessageDoc::request("execute").with("payload", Value::str("churn-probe"));
    let golden = normalized(
        &dep.execute(probe(), Duration::from_secs(5))
            .expect("golden runs"),
    );

    // --- Burst with churn underneath -------------------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let churn_thread = {
        let stop = Arc::clone(&stop);
        let hub = b.hub.clone();
        std::thread::spawn(move || {
            let client = CommunityClient::connect(&hub, "churn-cycler", naming::community("Churn"))
                .expect("churn client connects");
            let m = member("churny", "svc.churny");
            while !stop.load(Ordering::Relaxed) {
                let _ = client.join(&m);
                std::thread::sleep(Duration::from_millis(20));
                let _ = client.leave(&m.id);
                std::thread::sleep(Duration::from_millis(20));
            }
            // End on a leave: quiescence must converge on "churny is a
            // tombstone" everywhere, not on whichever half-cycle raced.
            let _ = client.leave(&m.id);
        })
    };

    let mut pending = HashSet::new();
    for _ in 0..BURST / 2 {
        pending.insert(dep.submit(probe()).expect("submit"));
    }
    // Mid-burst crash: the victim stops abruptly while still REGISTERED —
    // delegations that pick it must fail over, not corrupt.
    crash_victim.stop();
    for _ in 0..BURST / 2 {
        pending.insert(dep.submit(probe()).expect("submit"));
    }

    let mut completed = 0usize;
    let mut clean_faults = 0usize;
    while !pending.is_empty() {
        let (id, outcome) = dep
            .collect_result(Duration::from_secs(30))
            .expect("burst result lost");
        assert!(pending.remove(&id), "collected an unknown submission id");
        match outcome {
            Ok(doc) => {
                assert_eq!(
                    normalized(&doc),
                    golden,
                    "burst completion diverged from golden"
                );
                completed += 1;
            }
            Err(ExecError::Timeout | ExecError::Fault(_) | ExecError::Unreachable(_)) => {
                clean_faults += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    churn_thread.join().expect("churn thread joins");
    eprintln!("  (burst of {BURST}: {completed} completed, {clean_faults} clean faults)");
    assert!(completed > 0, "no burst execution completed under churn");

    // --- Convergence after quiescence ------------------------------------
    // Both replicas must agree on the whole table — live rows AND the
    // churn member's tombstone — within a few gossip rounds.
    assert!(
        wait_until(Duration::from_secs(10), || {
            replica0.membership().read().fingerprint() == replica1.membership().read().fingerprint()
        }),
        "membership fingerprints never converged: hub A {:?} vs hub B {:?}",
        replica0.membership().read().snapshot(),
        replica1.membership().read().snapshot(),
    );
    assert!(
        replica0
            .membership()
            .read()
            .member(&MemberId("churny".into()))
            .is_none(),
        "churn member resurrected after its final leave"
    );

    // --- Teardown leaks nothing -------------------------------------------
    dep.undeploy();
    drop(admin);
    for host in stable {
        host.stop();
    }
    churn_host.stop();
    replica0.stop();
    replica1.stop();
    a.disc.stop();
    b.disc.stop();
    assert_drained("hub A", &a.exec.handle());
    assert_drained("hub B", &b.exec.handle());
    a.exec.shutdown();
    b.exec.shutdown();
}
