//! Transport equivalence: the same composite services execute
//! byte-identically over the in-process simulation fabric and over real
//! TCP sockets.
//!
//! This is the acceptance test for the transport seam: every platform
//! component (coordinators, wrapper, community, registry, service hosts)
//! is spawned against `&dyn Transport`, so swapping [`Network`] for
//! [`TcpTransport`] must change *nothing* about the computation — only the
//! wire. Output documents are compared after stripping `_elapsed_ms`, the
//! single wall-clock-dependent field.

use selfserv::core::{
    AccommodationChoice, Deployer, EchoService, ServiceBackend, TravelDemo, TravelDemoConfig,
};
use selfserv::net::{Network, NetworkConfig, TcpTransport, Transport};
use selfserv::statechart::{Statechart, StatechartBuilder, TaskDef, TransitionDef};
use selfserv::wsdl::{MessageDoc, ParamType};
use selfserv_expr::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::normalized;

/// The quickstart composite: quote a price, then confirm or escalate.
fn quickstart_chart() -> Statechart {
    StatechartBuilder::new("Quote And Confirm")
        .variable("item", ParamType::Str)
        .variable("amount", ParamType::Int)
        .initial("Quote")
        .task(
            TaskDef::new("Quote", "Quote Price")
                .service("Pricing", "quote")
                .input("item", "item")
                .input("amount", "amount")
                .output("echoed_by", "quoted_by"),
        )
        .task(
            TaskDef::new("Confirm", "Confirm Order")
                .service("Orders", "confirm")
                .input("item", "item")
                .output("echoed_by", "confirmed_by"),
        )
        .task(
            TaskDef::new("Escalate", "Escalate To Human")
                .service("Helpdesk", "escalate")
                .input("item", "item"),
        )
        .final_state("Done")
        .transition(TransitionDef::new("t1", "Quote", "Confirm").guard("amount <= 100"))
        .transition(TransitionDef::new("t2", "Quote", "Escalate").guard("amount > 100"))
        .transition(TransitionDef::new("t3", "Confirm", "Done"))
        .transition(TransitionDef::new("t4", "Escalate", "Done"))
        .build()
        .expect("well-formed statechart")
}

/// The exact normalized outputs the thread-per-node seed path produced
/// for the quickstart workload (captured before the worker-pool runtime
/// replaced per-node threads). The runtime refactor must keep every
/// transport byte-identical to these.
const QUICKSTART_GOLDEN: [&str; 2] = [
    "<message operation=\"execute\" kind=\"response\">\
     <param name=\"_instance\" type=\"string\">i1</param>\
     <param name=\"amount\" type=\"int\">12</param>\
     <param name=\"confirmed_by\" type=\"string\">Orders</param>\
     <param name=\"item\" type=\"string\">coffee beans</param>\
     <param name=\"quoted_by\" type=\"string\">Pricing</param>\
     </message>",
    "<message operation=\"execute\" kind=\"response\">\
     <param name=\"_instance\" type=\"string\">i2</param>\
     <param name=\"amount\" type=\"int\">5000</param>\
     <param name=\"item\" type=\"string\">espresso machines</param>\
     <param name=\"quoted_by\" type=\"string\">Pricing</param>\
     </message>",
];

/// Runs the quickstart composite (both guard branches) over `net` and
/// returns the normalized outputs plus a per-named-node traffic census.
fn run_quickstart(net: &dyn Transport) -> (Vec<String>, Vec<(String, u64, u64)>) {
    run_quickstart_with(net, Deployer::new(net))
}

/// Same, with a caller-configured deployer (e.g. pinned to an explicit
/// executor).
fn run_quickstart_with(
    net: &dyn Transport,
    deployer: Deployer,
) -> (Vec<String>, Vec<(String, u64, u64)>) {
    let mut backends: HashMap<String, Arc<dyn ServiceBackend>> = HashMap::new();
    for name in ["Pricing", "Orders", "Helpdesk"] {
        backends.insert(name.to_string(), Arc::new(EchoService::new(name)));
    }
    let deployment = deployer
        .deploy(&quickstart_chart(), &backends)
        .expect("deploys");
    net.reset_metrics();
    let mut outputs = Vec::new();
    for (item, amount) in [("coffee beans", 12), ("espresso machines", 5000)] {
        let out = deployment
            .execute(
                MessageDoc::request("execute")
                    .with("item", Value::str(item))
                    .with("amount", Value::Int(amount)),
                Duration::from_secs(10),
            )
            .expect("executes");
        outputs.push(normalized(&out));
    }
    // Census before undeploy so stop messages don't show up. Anonymous
    // (`~`) client/reply nodes are transport bookkeeping, not protocol.
    // TCP delivery counters are updated by reader threads after the reply
    // reaches the caller, so poll until the census stops moving.
    let census = settled_census(net);
    deployment.undeploy();
    (outputs, census)
}

fn census(net: &dyn Transport) -> Vec<(String, u64, u64)> {
    net.metrics()
        .nodes
        .iter()
        .filter(|n| !n.node.as_str().contains('~'))
        .map(|n| (n.node.as_str().to_string(), n.sent, n.received))
        .collect()
}

fn settled_census(net: &dyn Transport) -> Vec<(String, u64, u64)> {
    let mut last = census(net);
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(25));
        let next = census(net);
        if next == last {
            return next;
        }
        last = next;
    }
    last
}

/// Runs the travel scenario (domestic and international bookings, far
/// accommodation so car rental and the community both engage) over `net`.
fn run_travel(net: &dyn Transport) -> Vec<String> {
    let demo = TravelDemo::launch(
        net,
        TravelDemoConfig {
            accommodation: AccommodationChoice::FarFromAttraction,
            ..Default::default()
        },
    )
    .expect("demo launches");
    let mut outputs = Vec::new();
    for (customer, destination) in [("Eileen", "Sydney"), ("Quan", "Hong Kong")] {
        let out = demo
            .book_trip(customer, destination, "2002-08-20", "2002-08-27")
            .expect("booking succeeds");
        outputs.push(normalized(&out));
    }
    outputs
}

#[test]
fn quickstart_outputs_identical_over_fabric_and_tcp() {
    let fabric = Network::new(NetworkConfig::instant());
    let tcp = TcpTransport::new();
    let (fabric_out, fabric_census) = run_quickstart(&fabric);
    let (tcp_out, tcp_census) = run_quickstart(&tcp);
    assert_eq!(
        fabric_out, tcp_out,
        "output documents must be byte-identical"
    );
    // The small order confirmed, the large one escalated — on both wires.
    assert!(fabric_out[0].contains("confirmed_by"));
    assert!(!fabric_out[1].contains("confirmed_by"));
    // The coordination protocol itself is also identical: every named node
    // sent and received exactly the same number of messages.
    assert_eq!(
        fabric_census, tcp_census,
        "per-node traffic must match across transports"
    );
    // And both match the thread-per-node seed path, byte for byte.
    assert_eq!(fabric_out, QUICKSTART_GOLDEN, "seed-path golden");
}

#[test]
fn quickstart_on_a_pinned_4_worker_executor_matches_the_seed_golden() {
    // Pinning the whole deployment onto an explicit fixed-size executor
    // (instead of the process-wide shared one) changes scheduling only —
    // outputs and per-node protocol traffic stay byte-identical to the
    // thread-per-node seed path, on both transports.
    use selfserv::runtime::Executor;
    let exec = Executor::new(4);

    let fabric = Network::new(NetworkConfig::instant());
    let (fabric_out, fabric_census) =
        run_quickstart_with(&fabric, Deployer::new(&fabric).with_executor(exec.handle()));
    let tcp = TcpTransport::new();
    let (tcp_out, tcp_census) =
        run_quickstart_with(&tcp, Deployer::new(&tcp).with_executor(exec.handle()));

    assert_eq!(fabric_out, QUICKSTART_GOLDEN, "fabric on pinned executor");
    assert_eq!(tcp_out, QUICKSTART_GOLDEN, "tcp on pinned executor");
    assert_eq!(
        fabric_census, tcp_census,
        "per-node traffic must match across transports on a pinned executor"
    );
    exec.shutdown();
}

#[test]
fn travel_scenario_outputs_identical_over_fabric_and_tcp() {
    let fabric = Network::new(NetworkConfig::instant());
    let tcp = TcpTransport::new();
    let fabric_out = run_travel(&fabric);
    let tcp_out = run_travel(&tcp);
    assert_eq!(fabric_out, tcp_out, "travel outputs must be byte-identical");
    // Sanity: the runs actually exercised the interesting paths.
    assert!(fabric_out[0].contains("QF-"), "domestic flight booked");
    assert!(
        fabric_out[0].contains("CAR-"),
        "far accommodation rents a car"
    );
    assert!(fabric_out[1].contains("GW-"), "international flight booked");
    assert!(fabric_out[1].contains("POL-"), "international trip insured");
}

#[test]
fn rpc_round_trips_between_hubs_linked_only_by_register_peer() {
    // Two TcpTransport hubs model two OS processes. They share nothing but
    // name → address registrations exchanged "out of band" in both
    // directions. A full request/response must round-trip by name: the
    // request frame carries the caller's node name as the reply address,
    // and the responder's reply is an ordinary named send routed back
    // across the hub boundary. (Before the persistent reply demultiplexer
    // this was impossible: replies targeted caller-local ephemeral names
    // that the remote hub had never heard of.)
    use selfserv::net::TcpTransport as Hub;
    use selfserv::registry::{FindQuery, RegistryClient, RegistryServer, UddiRegistry};
    use selfserv::wsdl::ServiceDescription;

    let hub_a = Hub::new();
    let hub_b = Hub::new();
    let store = Arc::new(UddiRegistry::new());
    let server = RegistryServer::spawn(&hub_b, "uddi", Arc::clone(&store)).unwrap();
    let client = RegistryClient::connect(&hub_a, "manager", "uddi").unwrap();
    // Exchange addresses both ways: requests flow a→b, replies b→a.
    hub_a.register_peer("uddi", hub_b.addr_of("uddi").unwrap());
    hub_b.register_peer("manager", hub_a.addr_of("manager").unwrap());

    // The full registry protocol — four rpc round trips — runs across the
    // process-shaped boundary.
    let business = client.save_business("Acme Travel", "ops@acme").unwrap();
    let desc = ServiceDescription::new("Flight Booking", "Acme Travel");
    let key = client
        .save_service(&business, "travel", &desc, None)
        .unwrap();
    let hits = client
        .find(&FindQuery::any().service_name("Flight Booking"))
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].key, key);
    let fetched = client.get_service(&key).unwrap();
    assert_eq!(fetched.description.name, "Flight Booking");
    server.stop();
}

#[test]
fn tcp_deployment_survives_repeated_cycles() {
    // Deploy/undeploy repeatedly on one TcpTransport: names must free up
    // and accept threads must be joined (no listener leaks blocking
    // rebinds, no stale connections delivering to dead nodes).
    let tcp = TcpTransport::new();
    for round in 0..3 {
        let (outputs, _) = run_quickstart(&tcp);
        assert_eq!(outputs.len(), 2, "round {round} produced both outputs");
    }
}
