//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: a seedable deterministic RNG
//! (`rngs::StdRng`), `Rng::gen` for `f64`/`u64`/`bool`, and
//! `Rng::gen_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded via splitmix64 — high-quality enough for simulation
//! jitter, loss sampling, and property-test data, and fully reproducible
//! from a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random source plus the ergonomic sampling API.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a supported type (`f64` in `[0, 1)`, full-range
    /// integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as $wide;
                self.start + (wide_uniform(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as $wide;
                if span == <$wide>::MAX {
                    // Full-width inclusive range: every bit pattern is valid.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (wide_uniform(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128);

// u128 ranges (used for Duration::as_nanos spans): sample 128 bits from two
// draws, reduce by modulo. Modulo bias is negligible for the span sizes in
// play and irrelevant for simulation jitter.
impl SampleRange for Range<u128> {
    type Output = u128;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        self.start + next_u128(rng) % span
    }
}

impl SampleRange for RangeInclusive<u128> {
    type Output = u128;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let span = end - start;
        if span == u128::MAX {
            return next_u128(rng);
        }
        start + next_u128(rng) % (span + 1)
    }
}

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(wide_uniform(rng, span as u128) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $u).wrapping_sub(start as $u) as u128;
                if span == <$u>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(wide_uniform(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let f: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let f: f64 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start() + f * (self.end() - self.start())
    }
}

fn next_u128<R: Rng + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// Uniform draw in `[0, span)` for spans that fit in u128 (span > 0).
fn wide_uniform<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        rng.next_u64() as u128 % span
    } else {
        next_u128(rng) % span
    }
}

/// Deterministic RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u128..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_range_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4u64..=4), 4);
        assert_eq!(rng.gen_range(0u128..=0), 0);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
