//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (guards come straight out of `lock()`/`read()`/`write()` with no
//! `Result`). Poisoned std locks are recovered transparently: a panic
//! while holding a lock does not poison it for everyone else, matching
//! parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // (std's wait API consumes and returns it).
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn poison_is_recovered() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
