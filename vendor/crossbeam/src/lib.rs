//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of crossbeam it actually uses: `channel::unbounded` MPMC
//! channels with blocking, timed, and non-blocking receives. Semantics
//! match crossbeam-channel for that subset: `send` fails once every
//! receiver is gone, receives fail once every sender is gone and the queue
//! has drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// The sending side of an unbounded channel. Cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving side of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            for _ in 0..100 {
                rx.recv_timeout(Duration::from_secs(2)).unwrap();
                got += 1;
            }
            assert_eq!(got, 100);
            handle.join().unwrap();
        }
    }
}
