//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of crossbeam it actually uses: `channel::unbounded` MPMC
//! channels with blocking, timed, and non-blocking receives, and the
//! `deque` work-stealing primitives (`Injector` / `Worker` / `Stealer`)
//! behind the executor's run queue. Semantics match the upstream crates
//! for those subsets — channels: `send` fails once every receiver is gone,
//! receives fail once every sender is gone and the queue has drained;
//! deques: the API contract of `crossbeam-deque` (owner-only `push`/`pop`,
//! `Stealer` usable from any thread, `Steal::Retry` possible on
//! contention) so the real crate could be dropped in unchanged.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// The sending side of an unbounded channel. Cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving side of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.queue.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            for _ in 0..100 {
                rx.recv_timeout(Duration::from_secs(2)).unwrap();
                got += 1;
            }
            assert_eq!(got, 100);
            handle.join().unwrap();
        }
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API surface the
    //! executor uses: a global [`Injector`], per-worker [`Worker`] queues
    //! (FIFO), and [`Stealer`] handles that move work between them. The
    //! implementation is a mutexed `VecDeque` per queue — correct and
    //! contention-adequate at this workspace's worker counts — while the
    //! types keep upstream's ownership contract (`Worker` is `!Sync`:
    //! only the owning thread pushes and pops) so the lock-free crate can
    //! replace this shim without touching callers.

    use std::collections::VecDeque;
    use std::marker::PhantomData;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, as in `crossbeam-deque`. The shim's
    /// locking never loses a race mid-operation, so it only ever returns
    /// `Empty` or `Success`, but callers must handle `Retry` — upstream
    /// returns it under contention.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty at the time of the attempt.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the attempt observed an empty queue.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// A global FIFO queue every thread may push to and steal from: the
    /// entry point for work originating off the worker threads.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest` (about half the queue, as
        /// upstream does) and pops one of them for immediate execution.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            let Some(first) = queue.pop_front() else {
                return Steal::Empty;
            };
            let extra = queue.len().div_ceil(2);
            if extra > 0 {
                let mut dest_queue = dest.queue.lock().unwrap_or_else(|e| e.into_inner());
                for _ in 0..extra {
                    let Some(task) = queue.pop_front() else { break };
                    dest_queue.push_back(task);
                }
            }
            Steal::Success(first)
        }

        /// True when no task is queued.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    /// A worker-owned queue. Only the owning thread pushes and pops (the
    /// type is deliberately `!Sync`, matching upstream); other threads
    /// reach it through its [`Stealer`].
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        /// Upstream's `Worker` is `Send + !Sync`; mirror that so code
        /// written against this shim stays valid against the real crate.
        _not_sync: PhantomData<std::cell::Cell<()>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue (`pop` takes the front — the order
        /// the executor wants for fairness).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                _not_sync: PhantomData,
            }
        }

        /// A handle other threads use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Pushes a task onto the back of the queue (owner only).
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Pops a task from the front of the queue (owner only).
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// True when no task is queued.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    /// A handle for stealing tasks from one [`Worker`]'s queue. Cheap to
    /// clone; usable from any thread.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// True when no task is queued.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_fifo() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn stealer_takes_from_front() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_batch_steal_moves_half() {
            let inj = Injector::new();
            for i in 0..9 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            // Pops the front task and moves about half the remainder.
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 4);
            assert_eq!(w.pop(), Some(1));
            // Batch-stealing from an empty injector reports Empty.
            let empty = Injector::<u32>::new();
            assert!(empty.steal_batch_and_pop(&w).is_empty());
        }

        #[test]
        fn cross_thread_stealing_delivers_everything() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            for i in 0..1000 {
                w.push(i);
            }
            let thieves: Vec<_> = (0..4)
                .map(|_| {
                    let s = s.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while let Steal::Success(_) = s.steal() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            let total: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(total + w.len(), 1000);
        }
    }
}
