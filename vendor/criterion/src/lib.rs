//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface this workspace's benches use. Under
//! `cargo bench` (cargo passes `--bench` to harness-less bench targets)
//! each benchmark warms up and measures for the configured durations and
//! prints mean ns/iter with min/max. Under `cargo test` (no `--bench`
//! flag) each benchmark runs a single iteration as a smoke test, so bench
//! code stays compile- and run-checked by the test suite without costing
//! bench-scale time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// True when invoked by `cargo bench` (full measurement mode).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Optional substring filter: `cargo bench -- <filter>`.
fn filter() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.into_iter().find(|a| !a.starts_with('-'))
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    full: bool,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` repeatedly and records per-iteration timing.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if !self.full {
            // Test mode: one smoke iteration.
            black_box(f());
            return;
        }
        let started = Instant::now();
        while started.elapsed() < self.measurement {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_secs(3),
            warm_up: Duration::from_millis(500),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Builder: measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Builder: warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Builder: target sample count (accepted for API compatibility; the
    /// shim measures for `measurement_time` and reports whatever samples
    /// fit).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(None, id.into(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    fn run(&mut self, group: Option<&str>, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full_id = match group {
            Some(g) => format!("{g}/{}", id.0),
            None => id.0,
        };
        if let Some(pat) = filter() {
            if !full_id.contains(&pat) {
                return;
            }
        }
        let full = bench_mode();
        if full {
            // Warm-up pass: iterate without recording.
            let mut warm = Bencher {
                full: true,
                measurement: self.warm_up,
                samples: Vec::new(),
            };
            f(&mut warm);
        }
        let mut b = Bencher {
            full,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        if !full {
            println!("bench {full_id}: ok (test mode, 1 iteration)");
            return;
        }
        if b.samples.is_empty() {
            println!("bench {full_id}: no samples (closure never called iter?)");
            return;
        }
        b.samples.sort();
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let p50 = b.samples[b.samples.len() / 2];
        let min = b.samples[0];
        let max = b.samples[b.samples.len() - 1];
        println!(
            "bench {full_id}: {} iters  mean {:?}  p50 {:?}  min {:?}  max {:?}",
            b.samples.len(),
            mean,
            p50,
            min,
            max
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = self.name.clone();
        self.c.run(Some(&name), id.into(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = self.name.clone();
        self.c.run(Some(&name), id.into(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_test_mode() {
        let mut c = Criterion::default();
        let mut calls = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 1);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
