//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: composable
//! generation strategies (`prop_map`, `prop_filter`, `prop_recursive`,
//! `prop_oneof!`, tuples, ranges, regex-subset string patterns,
//! collections) and the `proptest!` test macro running a configurable
//! number of deterministic cases. Unlike real proptest there is **no
//! shrinking**: a failing case reports its assertion directly, and cases
//! are reproducible because each (test, case-index) pair derives a fixed
//! RNG seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Test-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x5e1f_5e12 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// Run configuration for [`proptest!`] blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerating, bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// next-smaller depth and wraps it one level. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, generation picks the leaf half the time so
            // depth stays bounded and small values stay common.
            strat = Union {
                arms: vec![leaf.clone(), recurse(strat).boxed()],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S> DynStrategy<S::Value> for S
where
    S: Strategy,
{
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice between boxed arms — the engine behind [`prop_oneof!`].
pub struct Union<V> {
    /// The candidate strategies.
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.index(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies over a regex subset: sequences
/// of literal characters and character classes (`[a-z0-9_.-]`, ranges and
/// literals) with optional `{m,n}` / `{n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.index(atom.max - atom.min + 1) + atom.min
            };
            for _ in 0..n {
                out.push(atom.chars[rng.index(atom.chars.len())]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut items: Vec<char> = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    items.push(d);
                }
                let mut i = 0;
                while i < items.len() {
                    // `a-z` is a range unless the `-` is first or last.
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        let (lo, hi) = (items[i], items[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                        for ch in lo..=hi {
                            set.push(ch);
                        }
                        i += 3;
                    } else {
                        let ch = if items[i] == '\\' && i + 1 < items.len() {
                            i += 1;
                            match items[i] {
                                't' => '\t',
                                'n' => '\n',
                                other => other,
                            }
                        } else {
                            items[i]
                        };
                        set.push(ch);
                        i += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => {
                let d = chars.next().expect("dangling escape in pattern");
                vec![match d {
                    't' => '\t',
                    'n' => '\n',
                    other => other,
                }]
            }
            other => vec![other],
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

/// Collection size specifications accepted by [`collection`] strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.index(self.max_exclusive - self.min)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with element strategy `element` and a size drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` of values from `element`; duplicates are retried a bounded
    /// number of times, so tight domains may produce smaller sets.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = HashSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `BTreeMap`s.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` with keys/values from the given strategies; duplicate
    /// keys collapse, so tight key domains may produce smaller maps.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < n && attempts < n * 20 + 100 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `Some` of `inner` three quarters of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` generated cases with
/// deterministic per-case seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_respects_classes() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9.]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = crate::TestRng::for_case(2);
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = crate::Strategy::generate(&"[a.-]{4}", &mut rng);
            assert!(s.chars().all(|c| c == 'a' || c == '.' || c == '-'), "{s:?}");
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        let mut rng = crate::TestRng::for_case(3);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v == 1 || (20..40).contains(&v), "{v}");
        }
    }

    #[test]
    fn filter_retries() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::TestRng::for_case(4);
        for _ in 0..100 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::for_case(5);
        for _ in 0..100 {
            let t = crate::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(n in 1usize..10, s in "[a-z]{1,4}", flag in any::<bool>()) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            let _ = flag;
        }

        #[test]
        fn tuples_and_collections(v in crate::collection::vec((0u64..5, any::<bool>()), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }
    }
}
